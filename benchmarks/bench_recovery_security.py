"""C3 — DBMS features "now available for word processing" (§2).

Recovery: crash mid-edit, replay the WAL, verify the document (and its
character chain) come back exactly — committed keystrokes survive, the
in-flight uncommitted one does not.  Measured against log size, plus the
checkpoint ablation.

Security: the enforcement overhead a keystroke pays when document ACLs
and character-range protections are switched on.
"""

from __future__ import annotations

import pytest

from repro.collab import CollaborationServer
from repro.db import Database, recover
from repro.text import DocumentStore

from .conftest import make_text

EDIT_COUNTS = [100, 500, 2000]


def _edited_db(n_edits: int):
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text="seed ")
    for i in range(n_edits):
        handle.insert_text(handle.length(), "x", "ana")
        if i % 10 == 9:
            handle.delete_range(0, 1, "ana")
    return db, store, handle


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_edits", EDIT_COUNTS)
def test_recovery_replay(benchmark, n_edits):
    """Rebuild the database from the WAL after a crash."""
    db, store, handle = _edited_db(n_edits)
    expected_text = handle.text()
    records = list(db.wal.records())

    def replay():
        return recover(records)

    benchmark.group = f"C3 recovery edits={n_edits}"
    benchmark.extra_info["wal_records"] = len(records)
    recovered = benchmark.pedantic(replay, rounds=3, iterations=1)
    new_store = DocumentStore(recovered, log_reads=False, log_writes=False)
    new_handle = new_store.handle(handle.doc)
    assert new_handle.text() == expected_text
    assert new_handle.check_integrity() == []


def test_recovery_from_checkpoint(benchmark):
    """Checkpoint ablation: replay only the post-checkpoint tail."""
    db, store, handle = _edited_db(2000)
    lsn = db.checkpoint()
    for __ in range(50):
        handle.insert_text(handle.length(), "y", "ana")
    db.wal.truncate_before(lsn)
    expected_text = handle.text()
    records = list(db.wal.records())

    def replay():
        return recover(records)

    benchmark.group = "C3 recovery ablation"
    benchmark.extra_info["mode"] = "checkpoint+tail"
    recovered = benchmark.pedantic(replay, rounds=3, iterations=1)
    new_handle = DocumentStore(recovered).handle(handle.doc)
    assert new_handle.text() == expected_text


def test_crash_loses_only_uncommitted(tmp_path):
    """The durability contract, end to end through a file."""
    from repro.db import recover_file
    path = str(tmp_path / "wal.jsonl")
    db = Database("bench", wal_path=path)
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text="committed text")
    # An in-flight transaction that never commits ("the crash").
    txn = db.begin()
    txn.insert("tx_chars", {
        "char": db.new_oid("char"), "doc": handle.doc, "ch": "X",
        "prev": None, "next": None, "author": "ana",
        "created_at": db.now(),
    })
    db.close()

    recovered = recover_file(path)
    new_handle = DocumentStore(recovered).handle(handle.doc)
    assert new_handle.text() == "committed text"
    assert new_handle.check_integrity() == []


def test_wal_write_overhead(benchmark):
    """Keystroke cost with the WAL mirrored to a real file."""
    import tempfile
    with tempfile.NamedTemporaryFile(suffix=".jsonl") as tmp:
        db = Database("bench", wal_path=tmp.name)
        store = DocumentStore(db, log_reads=False, log_writes=False)
        handle = store.create("doc", "ana", text=make_text(1000))
        anchor = handle.char_oid_at(500)

        def keystroke():
            handle.insert_after(anchor, "x", "ana")

        benchmark.group = "C3 durability overhead"
        benchmark.extra_info["wal"] = "file-backed"
        benchmark(keystroke)


# ---------------------------------------------------------------------------
# Recovery under torn-tail logs (fault-injection tie-in)
# ---------------------------------------------------------------------------

@pytest.mark.filterwarnings("ignore:skipping torn trailing WAL record")
@pytest.mark.parametrize("n_edits", EDIT_COUNTS)
def test_recovery_with_torn_tail(benchmark, tmp_path, n_edits):
    """Replay a file whose last record is a torn (crash-severed) write.

    The cost must track log size exactly like the clean-log replay above:
    detecting and skipping the torn tail is O(1), not a rescan.
    """
    from repro.db import recover_file
    path = str(tmp_path / "wal.jsonl")
    db = Database("bench", wal_path=path)
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text="seed ")
    for i in range(n_edits):
        handle.insert_text(handle.length(), "x", "ana")
        if i % 10 == 9:
            handle.delete_range(0, 1, "ana")
    expected_text = handle.text()
    db.close()
    # The crash signature: a prefix of a record, mid-JSON.
    with open(path, "a", encoding="utf-8") as f:
        f.write('{"lsn": 999999, "type": "COMMIT", "tx')

    def replay():
        return recover_file(path)

    benchmark.group = f"C3 recovery torn-tail edits={n_edits}"
    recovered = benchmark.pedantic(replay, rounds=3, iterations=1)
    new_handle = DocumentStore(recovered).handle(handle.doc)
    assert new_handle.text() == expected_text
    assert new_handle.check_integrity() == []


@pytest.mark.filterwarnings("ignore:skipping torn trailing WAL record")
def test_recovery_after_seeded_crash_schedule(benchmark, tmp_path):
    """Recover the wreckage of a real injected crash (torture harness)."""
    from repro.faults import (
        FaultPlan,
        check_recovery_equivalence,
        run_engine_schedule,
    )

    seed = 20_06  # fixed: benchmarks must compare like with like
    outcome = run_engine_schedule(
        seed, str(tmp_path / "wal.jsonl"),
        plan=FaultPlan.crash_once("wal.mid_record", hit=40, tear=0.4),
    )
    assert outcome.crashed

    from repro.db import recover_file

    def replay():
        return recover_file(outcome.wal_path)

    benchmark.group = "C3 recovery after injected crash"
    benchmark.extra_info["crash_point"] = outcome.crash_point
    benchmark.pedantic(replay, rounds=3, iterations=1)
    check_recovery_equivalence(outcome)


# ---------------------------------------------------------------------------
# Security enforcement overhead
# ---------------------------------------------------------------------------

def _party(protections: int):
    server = CollaborationServer()
    server.register_user("ana")
    server.register_user("ben")
    ana = server.connect("ana")
    handle = ana.create_document("doc", text=make_text(2000))
    if protections:
        server.acl.grant(handle.doc, "ben", "write", "ana")
        for i in range(protections):
            server.acl.protect_range(handle, i * 50, 10, "ana",
                                     exempt=("ben",))
    ben = server.connect("ben")
    ben.open(handle.doc)
    return server, ben, handle


def test_keystroke_no_security(benchmark):
    server, ben, handle = _party(protections=0)

    def keystroke():
        ben.insert(handle.doc, 100, "x")

    benchmark.group = "C3 security overhead"
    benchmark.extra_info["config"] = "open document"
    benchmark(keystroke)


def test_keystroke_with_acl_and_protections(benchmark):
    server, ben, handle = _party(protections=10)

    def delete_one():
        ben.delete(handle.doc, 200, 1)  # range-checked against 10 guards

    benchmark.group = "C3 security overhead"
    benchmark.extra_info["config"] = "ACL + 10 range protections"
    benchmark(delete_one)


def test_security_overhead_is_bounded():
    """Enforcement must not dominate the keystroke transaction."""
    import time

    def measure(protections: int) -> float:
        server, ben, handle = _party(protections)
        start = time.perf_counter()
        for __ in range(50):
            ben.delete(handle.doc, 200, 1)
        return (time.perf_counter() - start) / 50

    open_cost = measure(0)
    guarded_cost = measure(10)
    assert guarded_cost < open_cost * 6  # same order of magnitude
