"""D3 — Dynamic folders (§3, bullet 3).

"Its content is fluent and may change within seconds (e.g. as soon as a
document changes)."  We measure:

* the *freshness path*: the incremental cost an edit pays so folder
  membership is correct in the same commit (event-driven re-evaluation of
  one document), vs
* the *re-query baseline*: a full rescan of the corpus on every read —
  what a folder defined as a stored query against a conventional DBMS
  would do.

Expected shape: event-driven update cost is independent of corpus size;
re-query grows linearly — so the gap widens with the corpus.
"""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.folders import (
    AccessedBy,
    CreatorIs,
    DynamicFolderManager,
    SizeAtLeast,
    StateIs,
)
from repro.text import DocumentStore
from repro.workload import CorpusSpec, load_corpus

CORPUS_SIZES = [25, 100, 300]
DAY = 86400.0


def _corpus(n_docs: int):
    db = Database("bench")
    store = DocumentStore(db)
    handles = load_corpus(store, CorpusSpec(n_docs=n_docs, seed=3))
    manager = DynamicFolderManager(db)
    folders = [
        manager.create_folder("ana", CreatorIs("ana")),
        manager.create_folder("finals", StateIs("final")),
        manager.create_folder("big", SizeAtLeast(300)),
        manager.create_folder("ben-read",
                              AccessedBy("ben", "read", within=7 * DAY)),
    ]
    return db, store, handles, manager, folders


@pytest.mark.parametrize("n_docs", CORPUS_SIZES)
def test_event_driven_update(benchmark, n_docs):
    """Edit one document; membership refresh rides the commit."""
    db, store, handles, manager, folders = _corpus(n_docs)
    target = handles[0]

    def edit():
        target.insert_text(0, "x", "ana")

    benchmark.group = f"D3 folder freshness n={n_docs}"
    benchmark.extra_info["mode"] = "event-driven"
    benchmark.extra_info["corpus"] = n_docs
    benchmark(edit)


@pytest.mark.parametrize("n_docs", CORPUS_SIZES)
def test_requery_baseline(benchmark, n_docs):
    """The same freshness achieved by full re-query on read."""
    db, store, handles, manager, folders = _corpus(n_docs)
    target = handles[0]
    manager.close()  # disable the event path; baseline re-queries instead

    def edit_and_requery():
        target.insert_text(0, "x", "ana")
        for folder in folders:
            folder.revalidate()

    benchmark.group = f"D3 folder freshness n={n_docs}"
    benchmark.extra_info["mode"] = "re-query"
    benchmark.extra_info["corpus"] = n_docs
    benchmark.pedantic(edit_and_requery, rounds=5, iterations=1)


def test_shape_event_driven_scales_flat():
    """Event-driven cost ~flat in corpus size; re-query grows."""
    import time

    def measure(n_docs: int, requery: bool) -> float:
        db, store, handles, manager, folders = _corpus(n_docs)
        if requery:
            manager.close()
        target = handles[0]
        start = time.perf_counter()
        for __ in range(5):
            target.insert_text(0, "x", "ana")
            if requery:
                for folder in folders:
                    folder.revalidate()
        return (time.perf_counter() - start) / 5

    event_small = measure(25, requery=False)
    event_big = measure(300, requery=False)
    requery_small = measure(25, requery=True)
    requery_big = measure(300, requery=True)
    # Re-query cost must grow much faster than event-driven cost.
    assert requery_big / requery_small > 4
    assert (event_big / event_small) < (requery_big / requery_small)
    # And at 300 docs the event path must win clearly.
    assert requery_big / event_big > 5


def test_freshness_same_commit():
    """The paper's fluency claim, as a correctness property."""
    db, store, handles, manager, folders = _corpus(25)
    big = manager.folder("big")
    handle = store.create("grows", "ana", text="x" * 299)
    assert handle.doc not in big
    handle.insert_text(0, "x", "ana")          # crosses the threshold
    assert handle.doc in big                   # visible with zero polling


def test_membership_read(benchmark):
    """Reading a folder's contents (the cheap path users hit)."""
    db, store, handles, manager, folders = _corpus(200)

    def read():
        return [len(folder.contents()) for folder in folders]

    benchmark.group = "D3 folder reads"
    benchmark(read)
