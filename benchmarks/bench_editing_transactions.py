"""C1 — "very fast transactions for all editing tasks" (§2).

The paper's core performance claim: because characters are neighbour-
linked rows, a keystroke is a constant number of row operations however
large the document is.  We measure the per-keystroke transaction against
the two baselines:

* **offset storage** (one row per character keyed by position): a
  mid-document insert updates O(n) rows, so keystroke cost grows linearly
  with document size;
* **file word processor** (the §1 status quo): durability means rewriting
  the whole file on every save.

Expected shape: TeNDaX flat across document sizes; both baselines grow
linearly; TeNDaX wins by orders of magnitude on large documents.
"""

from __future__ import annotations

import os
import sys
import threading
import time

import pytest

from repro.baselines import FileWordProcessor, OffsetDocumentStore
from repro.db import Database
from repro.errors import DeadlockError, LockTimeoutError
from repro.text import DocumentStore
from repro.text import dbschema as S

from .conftest import make_text

SIZES = [500, 2000, 8000]


# ---------------------------------------------------------------------------
# Mid-document keystroke vs document size (the headline comparison)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("size", SIZES)
def test_keystroke_tendax(benchmark, size):
    """TeNDaX: one insert + two pointer updates, any document size."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(size))
    anchor = handle.char_oid_at(size // 2)

    def keystroke():
        handle.insert_after(anchor, "x", "ana")

    benchmark.group = f"C1 keystroke mid-doc n={size}"
    benchmark.extra_info["system"] = "tendax"
    benchmark.extra_info["doc_size"] = size
    benchmark(keystroke)


@pytest.mark.parametrize("size", SIZES)
def test_keystroke_offset_baseline(benchmark, size):
    """Offset baseline: the same keystroke shifts O(n) rows."""
    db = Database("bench")
    store = OffsetDocumentStore(db)
    doc = store.create("doc", "ana", make_text(size))

    def keystroke():
        store.insert(doc, size // 2, "x", "ana")

    benchmark.group = f"C1 keystroke mid-doc n={size}"
    benchmark.extra_info["system"] = "offset-baseline"
    benchmark.extra_info["doc_size"] = size
    benchmark.pedantic(keystroke, rounds=5, iterations=1,
                       warmup_rounds=1)


@pytest.mark.parametrize("size", SIZES)
def test_keystroke_file_baseline(benchmark, size):
    """File baseline: durability = rewrite the whole document."""
    wp = FileWordProcessor()
    wp.create("doc.txt", make_text(size))
    wp.open_for_edit("doc.txt", "ana")

    def keystroke():
        wp.insert("doc.txt", "ana", size // 2, "x")

    benchmark.group = f"C1 keystroke mid-doc n={size}"
    benchmark.extra_info["system"] = "file-baseline"
    benchmark.extra_info["doc_size"] = size
    benchmark(keystroke)


def test_shape_tendax_flat_offset_linear():
    """Assert the paper's shape: TeNDaX ~flat, offset baseline ~linear.

    Each point is the best of three measurements with a GC sweep before
    every timed section: a collection pause inherited from an earlier
    benchmark's garbage would otherwise dominate the short small-document
    loops and flip the ratios.
    """
    import gc
    import time

    def time_tendax(size: int) -> float:
        db = Database("bench")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        handle = store.create("doc", "ana", text=make_text(size))
        anchor = handle.char_oid_at(size // 2)
        gc.collect()
        start = time.perf_counter()
        for __ in range(20):
            handle.insert_after(anchor, "x", "ana")
        return (time.perf_counter() - start) / 20

    def time_offset(size: int) -> float:
        db = Database("bench")
        store = OffsetDocumentStore(db)
        doc = store.create("doc", "ana", make_text(size))
        gc.collect()
        start = time.perf_counter()
        for __ in range(3):
            store.insert(doc, size // 2, "x", "ana")
        return (time.perf_counter() - start) / 3

    def best(measure, size: int) -> float:
        return min(measure(size) for __ in range(3))

    tendax_small, tendax_big = best(time_tendax, 500), best(time_tendax, 8000)
    offset_small, offset_big = best(time_offset, 500), best(time_offset, 8000)
    # Offset cost must grow steeply with size (16x size -> >4x time).
    assert offset_big / offset_small > 4.0
    # TeNDaX must grow far slower than the baseline does.
    assert (tendax_big / tendax_small) < (offset_big / offset_small)
    # And on large documents TeNDaX must win outright, by a lot.
    assert offset_big / tendax_big > 10.0


# ---------------------------------------------------------------------------
# Order-cache scalability: mid-document keystroke + remote splice
# ---------------------------------------------------------------------------

#: Document sizes for the order-cache arms.  256k is the headline: the
#: flat-list cache pays an O(n) memmove + O(n) identity scan per remote
#: splice there, the chunked cache ~O(sqrt n).
CACHE_SIZES = [4_000, 64_000, 256_000]

#: size -> (db, store, editor handle).  Building a 256k-char document
#: through the full transactional path costs ~20 s, so the document is
#: built once per session and shared by every cache arm (each keystroke
#: grows it by a handful of characters — noise at these sizes).
_cache_docs: dict = {}


def _large_doc(size: int):
    if size not in _cache_docs:
        db = Database("bench")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        handle = store.create("doc", "ana", text=make_text(size))
        _cache_docs[size] = (db, store, handle)
    return _cache_docs[size]


def _mid_anchors(handle, size: int, count: int):
    """Deterministic mid-document anchor positions (hint-hostile)."""
    import random

    rng = random.Random(size * 31 + 7)
    spread = min(1000, size // 4)
    return [
        handle.char_oid_at(size // 2 + rng.randint(-spread, spread))
        for __ in range(count)
    ]


def _remote_splice_round(handle, remote, anchors, state) -> None:
    """One mid-document keystroke, observed by an attached remote handle."""
    anchor = anchors[state["i"] % len(anchors)]
    state["i"] += 1
    handle.insert_after(anchor, "x", "ana")


@pytest.mark.parametrize("size", CACHE_SIZES)
def test_cache_remote_splice_chunked(benchmark, size):
    """Chunked order cache: a remote replica splices in ~O(sqrt n)."""
    __, store, handle = _large_doc(size)
    remote = store.handle(handle.doc)           # chunked (default)
    anchors = _mid_anchors(handle, size, 64)
    state = {"i": 0}

    benchmark.group = f"C1 order-cache remote splice n={size}"
    benchmark.extra_info["system"] = "tendax-chunked"
    benchmark.extra_info["doc_size"] = size
    try:
        benchmark.pedantic(_remote_splice_round,
                           args=(handle, remote, anchors, state),
                           rounds=30, iterations=1, warmup_rounds=2)
    finally:
        remote.close()


@pytest.mark.parametrize("size", CACHE_SIZES)
def test_cache_remote_splice_flat(benchmark, size):
    """Flat-list baseline: the same splice pays an O(n) insert + scan."""
    __, store, handle = _large_doc(size)
    remote = store.handle(handle.doc, cache="flat")
    anchors = _mid_anchors(handle, size, 64)
    state = {"i": 0}

    benchmark.group = f"C1 order-cache remote splice n={size}"
    benchmark.extra_info["system"] = "flat-cache-baseline"
    benchmark.extra_info["doc_size"] = size
    try:
        benchmark.pedantic(_remote_splice_round,
                           args=(handle, remote, anchors, state),
                           rounds=5, iterations=1, warmup_rounds=1)
    finally:
        remote.close()


def test_shape_cache_chunked_beats_flat_256k():
    """Acceptance shape: at 256k chars, a mid-document keystroke with a
    chunked remote replica attached is >= 10x faster than with the
    flat-list replica, and text() afterwards costs no table scan."""
    import gc
    import time as _time

    size = 256_000
    db, store, handle = _large_doc(size)
    anchors = _mid_anchors(handle, size, 32)

    def typed_seconds(remote, n: int) -> float:
        gc.collect()
        start = _time.perf_counter()
        for i in range(n):
            handle.insert_after(anchors[i % len(anchors)], "x", "ana")
        return (_time.perf_counter() - start) / n

    remote = store.handle(handle.doc)
    try:
        chunked = min(typed_seconds(remote, 20) for __ in range(3))
    finally:
        remote.close()
    remote = store.handle(handle.doc, cache="flat")
    try:
        flat = min(typed_seconds(remote, 4) for __ in range(3))
    finally:
        remote.close()
    assert flat / chunked >= 10.0, (flat, chunked)

    # And rendering stays off the table-scan path: a keystroke plus a
    # text() must not bump the full-scan counter.
    scans_before = db.metrics_snapshot()["doc.full_scans"]["value"]
    handle.insert_after(anchors[0], "x", "ana")
    assert len(handle.text()) >= size
    scans_after = db.metrics_snapshot()["doc.full_scans"]["value"]
    assert scans_after == scans_before


# ---------------------------------------------------------------------------
# Group commit + batched typing bursts under concurrent writers
# ---------------------------------------------------------------------------

#: Simulated storage flush latency for the multiwriter comparison.  The
#: CI container's virtio fsync returns in ~0.2 ms without reaching
#: stable media, which under-represents every real durable device
#: (entry-level SSDs take 1-10 ms per FLUSH).  Modelling a 2 ms device
#: makes the comparison measure what the tentpole changes — fsync
#: *scheduling* (per-commit vs. grouped) — deterministically on any
#: runner, instead of measuring the host's write-cache behaviour.
SIM_FSYNC_SECONDS = 0.002


def _durable_multiwriter(tmp_path, tag: str, *, batched: bool,
                         writers: int = 8, bursts: int = 6,
                         burst_len: int = 16) -> dict:
    """K concurrent writers typing bursts into one file-backed database.

    ``batched=False`` is the seed behaviour: every keystroke is its own
    transaction and every commit performs its own fsync.  ``batched=True``
    is the tentpole path: each burst runs inside ``Database.batch()`` (one
    commit record) and the WAL groups concurrent commits behind one fsync.

    Returns wall-clock and durability-cost stats from the engine's own
    metrics, so the numbers cover exactly the measured window.
    """
    db = Database("bench", wal_path=str(tmp_path / f"wal-{tag}.jsonl"),
                  wal_group_commit=batched, wal_group_max=writers)
    store = DocumentStore(db, log_reads=False, log_writes=False)
    anchors = []
    for w in range(writers):
        handle = store.create(f"doc{w}", "ana", text="seed ")
        anchors.append([handle, handle.anchor_for(handle.length())])
    before = db.metrics_snapshot()
    barrier = threading.Barrier(writers + 1)

    def run(w: int) -> None:
        handle, anchor = anchors[w]
        barrier.wait()
        for __ in range(bursts):
            if batched:
                with db.batch():
                    for __ in range(burst_len):
                        (anchor,) = handle.insert_after(anchor, "x", "ana")
            else:
                for __ in range(burst_len):
                    (anchor,) = handle.insert_after(anchor, "x", "ana")
        anchors[w][1] = anchor

    threads = [threading.Thread(target=run, args=(w,))
               for w in range(writers)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    after = db.metrics_snapshot()
    # Everything typed must already be durable: the run measures the
    # full durable path, not deferred flushing.
    assert db.wal.durable_lsn == db.wal.last_lsn()
    keystrokes = writers * bursts * burst_len
    commit_cost = (after["txn.commit_seconds"]["sum"]
                   - before["txn.commit_seconds"]["sum"])
    stats = {
        "keystrokes": keystrokes,
        "wall_per_keystroke": elapsed / keystrokes,
        "commit_cost_per_keystroke": commit_cost / keystrokes,
        "commits": (after["txn.committed"]["value"]
                    - before["txn.committed"]["value"]),
        "fsyncs": (after["wal.fsyncs"]["value"]
                   - before["wal.fsyncs"]["value"]),
    }
    db.close()
    return stats


def test_group_commit_multiwriter(benchmark, tmp_path, monkeypatch):
    """§3.1 durability under concurrency: group commit + typing bursts.

    8 writers type bursts of 16 into their own documents of one shared
    file-backed database, on a simulated 2 ms-per-flush durable device
    (see :data:`SIM_FSYNC_SECONDS`).  The seed path pays one transaction
    and one fsync per keystroke; the tentpole path batches each burst
    into one transaction and groups concurrent commits behind shared
    fsyncs.

    Shape asserted: the file-backed durable keystroke cost (wall clock
    per keystroke, everything durable at the end) improves >= 3x, the
    durable-commit leg (the engine's own ``txn.commit_seconds``) by at
    least as much, and the fsync count is strictly sub-linear in the
    commit count.
    """
    real_fsync = os.fsync

    def flush_of_a_durable_device(fd: int) -> None:
        real_fsync(fd)
        time.sleep(SIM_FSYNC_SECONDS)

    monkeypatch.setattr(os, "fsync", flush_of_a_durable_device)
    rounds: list[dict] = []
    state = {"i": 0}

    def grouped_round():
        state["i"] += 1
        rounds.append(_durable_multiwriter(
            tmp_path, f"grouped{state['i']}", batched=True))

    benchmark.group = "C1 group-commit multiwriter"
    benchmark.extra_info["system"] = "tendax-grouped"
    benchmark.pedantic(grouped_round, rounds=3, iterations=1,
                       warmup_rounds=1)
    baseline = _durable_multiwriter(tmp_path, "percommit", batched=False)
    grouped = min(rounds, key=lambda s: s["wall_per_keystroke"])
    benchmark.extra_info["grouped"] = grouped
    benchmark.extra_info["baseline"] = baseline

    # The baseline fsyncs once per keystroke-commit; the grouped run must
    # stay strictly sub-linear in its own commit count (the barrier
    # actually merged concurrent commits) and far below the baseline.
    assert baseline["fsyncs"] >= baseline["commits"]
    assert grouped["fsyncs"] < grouped["commits"], grouped
    assert grouped["fsyncs"] * 4 < baseline["fsyncs"]

    # The headline: a durable keystroke costs >= 3x less end to end.
    # The burst's single commit record and the group's shared fsync
    # amortise the device flush across burst_len keystrokes and across
    # the concurrent writers of each group.
    wall_ratio = (baseline["wall_per_keystroke"]
                  / grouped["wall_per_keystroke"])
    benchmark.extra_info["durable_cost_ratio"] = round(wall_ratio, 2)
    assert wall_ratio >= 3.0, (baseline, grouped)

    # And the durable-commit leg itself (commit record + barrier wait +
    # flush, straight from txn.commit_seconds) shrinks at least as much.
    commit_ratio = (baseline["commit_cost_per_keystroke"]
                    / grouped["commit_cost_per_keystroke"])
    benchmark.extra_info["commit_leg_ratio"] = round(commit_ratio, 2)
    assert commit_ratio >= 3.0, (baseline, grouped)


# ---------------------------------------------------------------------------
# Reader/writer interference: snapshot scans vs 2PL shared-lock scans
# ---------------------------------------------------------------------------

def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _interference_round(tag: str, *, scanner_mode: str,
                        typists: int = 4, scanners: int = 2,
                        keystrokes: int = 120,
                        doc_size: int = 2000) -> dict:
    """N typists typing while M analytics scanners sweep the CHARS table.

    ``scanner_mode`` selects the reader implementation under test:

    * ``"none"`` — no scanners, the uncontended floor;
    * ``"2pl"`` — the pre-MVCC baseline: each sweep is a read-only
      transaction with ``locking_reads=True``, taking SHARED row locks
      held to the end of the sweep, so typists queue behind it (and it
      behind them);
    * ``"mvcc"`` — each sweep is a snapshot transaction resolving from
      version chains with zero LockManager calls.

    Returns the typists' keystroke latency percentiles plus the
    ``lock.acquired`` delta over the measured window — in the MVCC arm
    that delta must equal the scanner-free floor exactly.

    Scanners pause briefly between sweeps and the interpreter's thread
    switch interval is tightened for the round: both keep CPython's GIL
    scheduling from dominating the typists' tail, so the measured
    difference between the arms is lock blocking — the thing under
    test — not bytecode-slice starvation by busy-looping readers.
    """
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handles = [store.create(f"doc{w}", "ana", text=make_text(doc_size))
               for w in range(typists)]
    anchors = [h.anchor_for(h.length()) for h in handles]
    latencies: list[list[float]] = [[] for __ in range(typists)]
    stop = threading.Event()
    sweeps = [0] * scanners
    aborted = [0] * scanners
    typist_retries = [0] * typists
    barrier = threading.Barrier(typists + 1)

    def scan(idx: int) -> None:
        while not stop.is_set():
            try:
                if scanner_mode == "mvcc":
                    with db.snapshot() as txn:
                        sum(1 for r in txn.query(S.CHARS).run() if r["ch"])
                else:
                    with db.begin(read_only=True,
                                  locking_reads=True) as txn:
                        sum(1 for r in txn.query(S.CHARS).run() if r["ch"])
            except (DeadlockError, LockTimeoutError):
                # The 2PL baseline can be picked as a deadlock victim or
                # time out behind a typing burst; a real reporting job
                # would retry, so the scanner does too.
                aborted[idx] += 1
            else:
                sweeps[idx] += 1
            time.sleep(0.001)

    def typist(w: int) -> None:
        anchor = anchors[w]
        barrier.wait()
        for __ in range(keystrokes):
            started = time.perf_counter()
            while True:
                try:
                    (anchor,) = handles[w].insert_after(anchor, "x", "ana")
                except (DeadlockError, LockTimeoutError):
                    # Under the 2PL baseline a typist can be picked as
                    # the deadlock victim against a scanner's shared
                    # locks.  The editor retries the keystroke, and the
                    # recorded latency honestly includes the retry.
                    typist_retries[w] += 1
                else:
                    break
            latencies[w].append(time.perf_counter() - started)

    scan_threads = []
    if scanner_mode != "none":
        scan_threads = [threading.Thread(target=scan, args=(i,), daemon=True)
                        for i in range(scanners)]
        for t in scan_threads:
            t.start()
    before = db.metrics_snapshot()
    typing_threads = [threading.Thread(target=typist, args=(w,))
                      for w in range(typists)]
    for t in typing_threads:
        t.start()
    barrier.wait()
    for t in typing_threads:
        t.join()
    after = db.metrics_snapshot()
    stop.set()
    for t in scan_threads:
        t.join()
    flat = [lat for per_typist in latencies for lat in per_typist]
    db.close()
    sys.setswitchinterval(switch_interval)
    return {
        "tag": tag,
        "p50": _percentile(flat, 0.50),
        "p99": _percentile(flat, 0.99),
        "lock_acquired": (after["lock.acquired"]["value"]
                          - before["lock.acquired"]["value"]),
        "snapshot_reads": (after["txn.snapshot_reads"]["value"]
                          - before["txn.snapshot_reads"]["value"]),
        "sweeps": sum(sweeps),
        "aborted_sweeps": sum(aborted),
        "typist_retries": sum(typist_retries),
    }


def test_snapshot_scan_interference(benchmark):
    """C1 interference: typist p99 under concurrent analytics scans.

    Four typists type into their own documents while two scanners sweep
    the whole CHARS table in a loop.  With the 2PL-reader baseline every
    sweep holds SHARED locks on every row until it ends, so keystrokes
    queue behind sweeps and the typists' tail latency inflates by the
    sweep duration.  MVCC snapshot sweeps take no locks at all: the
    typist tail must stay within 2x of the 2PL arm's — in practice far
    better — and the ``lock.acquired`` delta of the MVCC arm must equal
    the scanner-free floor exactly (the scanners added zero lock
    traffic).
    """
    rounds: list[dict] = []
    state = {"i": 0}

    def mvcc_round():
        state["i"] += 1
        rounds.append(_interference_round(
            f"mvcc{state['i']}", scanner_mode="mvcc"))

    benchmark.group = "C1 reader interference"
    benchmark.extra_info["system"] = "tendax-mvcc-scan"
    benchmark.pedantic(mvcc_round, rounds=3, iterations=1, warmup_rounds=1)
    floor = _interference_round("floor", scanner_mode="none")
    locking = _interference_round("2pl", scanner_mode="2pl")
    mvcc = min(rounds, key=lambda r: r["p99"])
    benchmark.extra_info["floor"] = floor
    benchmark.extra_info["locking_baseline"] = locking
    benchmark.extra_info["mvcc"] = mvcc

    # Both scanner arms actually swept (the comparison is real).
    assert mvcc["sweeps"] > 0
    assert locking["sweeps"] + locking["aborted_sweeps"] > 0
    # Snapshot sweeps resolved through version chains, not locks: the
    # lock traffic with MVCC scanners running equals the scanner-free
    # floor exactly, and the snapshot read counter moved instead.
    assert mvcc["lock_acquired"] == floor["lock_acquired"], (mvcc, floor)
    assert mvcc["snapshot_reads"] > 0
    assert floor["snapshot_reads"] == 0
    # The headline: the typists' tail latency under concurrent scans is
    # >= 2x better with MVCC readers than with the 2PL-reader baseline.
    ratio = locking["p99"] / mvcc["p99"]
    benchmark.extra_info["p99_ratio"] = round(ratio, 2)
    assert ratio >= 2.0, (locking, mvcc)


# ---------------------------------------------------------------------------
# The other editing tasks of §2
# ---------------------------------------------------------------------------

def test_append_typing_burst(benchmark):
    """Sequential typing at the end of a document (the common case)."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(2000))

    def burst():
        anchor = handle.anchor_for(handle.length())
        for ch in "hello world ":
            (anchor,) = handle.insert_after(anchor, ch, "ana")

    benchmark.group = "C1 editing tasks"
    benchmark(burst)


def test_delete_range_transaction(benchmark):
    """Logical deletion of a 20-char range (one transaction)."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(20_000))
    state = {"pos": 0}

    def delete_range():
        handle.delete_range(state["pos"], 20, "ana")
        state["pos"] += 5

    benchmark.group = "C1 editing tasks"
    benchmark(delete_range)


def test_styling_range_transaction(benchmark):
    """Collaborative layout: styling a 50-char range."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(5000))
    style = db.new_oid("style")

    def style_range():
        handle.apply_style(100, 50, style, "ana")

    benchmark.group = "C1 editing tasks"
    benchmark(style_range)


def test_copy_paste_with_lineage(benchmark, server):
    """Paste of 100 chars including per-character lineage capture."""
    server.register_user("ana")
    session = server.connect("ana")
    src = session.create_document("src", text=make_text(2000))
    dst = session.create_document("dst", text="start ")
    session.copy(src.doc, 0, 100)

    def paste():
        session.paste(dst.doc, 0)

    benchmark.group = "C1 editing tasks"
    benchmark(paste)


def test_document_load(benchmark):
    """Opening a 10k-char document (chain traversal + cache build)."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(10_000))
    doc = handle.doc

    def open_doc():
        h = store.handle(doc)
        h.close()
        return h.length()

    benchmark.group = "C1 editing tasks"
    result = benchmark(open_doc)
    assert result == 10_000


def test_storage_amplification_report():
    """Ablation: what character-level metadata costs in writes.

    Types 1000 characters into each system and compares the write
    amplification: TeNDaX writes O(1) rows per keystroke (but each row
    carries full metadata); the offset baseline writes O(n) row updates;
    the file baseline rewrites the whole document per save.
    """
    n = 1000
    # TeNDaX: count WAL data records for n keystrokes.
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana")
    before = len(db.wal)
    anchor = handle.begin_char
    for __ in range(n):
        (anchor,) = handle.insert_after(anchor, "x", "ana")
    tendax_records = len(db.wal) - before

    # Offset baseline: mid-document typing (the unfavourable position).
    odb = Database("bench2")
    offsets = OffsetDocumentStore(odb)
    doc = offsets.create("doc", "ana", "x" * 500)
    before = len(odb.wal)
    for i in range(50):  # 50 keystrokes are plenty to see the shape
        offsets.insert(doc, 250, "x", "ana")
    offset_records = (len(odb.wal) - before) * (n // 50)

    # File baseline: whole-file rewrite per keystroke.
    wp = FileWordProcessor()
    wp.create("doc.txt", "x" * 500)
    wp.open_for_edit("doc.txt", "ana")
    for __ in range(n):
        wp.insert("doc.txt", "ana", 250, "x")
    file_bytes = wp.stats["bytes_written"]

    # Appending at the end, TeNDaX pays ~6 WAL records per keystroke
    # (begin, insert, 2 neighbour updates, doc-row update, commit).
    assert tendax_records <= 7 * n
    # The offset layout pays hundreds of row updates per keystroke.
    assert offset_records > 50 * n
    # The file editor rewrote ~n/2 * n bytes = O(n^2) I/O.
    assert file_bytes > 500 * n
