"""C1 — "very fast transactions for all editing tasks" (§2).

The paper's core performance claim: because characters are neighbour-
linked rows, a keystroke is a constant number of row operations however
large the document is.  We measure the per-keystroke transaction against
the two baselines:

* **offset storage** (one row per character keyed by position): a
  mid-document insert updates O(n) rows, so keystroke cost grows linearly
  with document size;
* **file word processor** (the §1 status quo): durability means rewriting
  the whole file on every save.

Expected shape: TeNDaX flat across document sizes; both baselines grow
linearly; TeNDaX wins by orders of magnitude on large documents.
"""

from __future__ import annotations

import pytest

from repro.baselines import FileWordProcessor, OffsetDocumentStore
from repro.db import Database
from repro.text import DocumentStore

from .conftest import make_text

SIZES = [500, 2000, 8000]


# ---------------------------------------------------------------------------
# Mid-document keystroke vs document size (the headline comparison)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("size", SIZES)
def test_keystroke_tendax(benchmark, size):
    """TeNDaX: one insert + two pointer updates, any document size."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(size))
    anchor = handle.char_oid_at(size // 2)

    def keystroke():
        handle.insert_after(anchor, "x", "ana")

    benchmark.group = f"C1 keystroke mid-doc n={size}"
    benchmark.extra_info["system"] = "tendax"
    benchmark.extra_info["doc_size"] = size
    benchmark(keystroke)


@pytest.mark.parametrize("size", SIZES)
def test_keystroke_offset_baseline(benchmark, size):
    """Offset baseline: the same keystroke shifts O(n) rows."""
    db = Database("bench")
    store = OffsetDocumentStore(db)
    doc = store.create("doc", "ana", make_text(size))

    def keystroke():
        store.insert(doc, size // 2, "x", "ana")

    benchmark.group = f"C1 keystroke mid-doc n={size}"
    benchmark.extra_info["system"] = "offset-baseline"
    benchmark.extra_info["doc_size"] = size
    benchmark.pedantic(keystroke, rounds=5, iterations=1,
                       warmup_rounds=1)


@pytest.mark.parametrize("size", SIZES)
def test_keystroke_file_baseline(benchmark, size):
    """File baseline: durability = rewrite the whole document."""
    wp = FileWordProcessor()
    wp.create("doc.txt", make_text(size))
    wp.open_for_edit("doc.txt", "ana")

    def keystroke():
        wp.insert("doc.txt", "ana", size // 2, "x")

    benchmark.group = f"C1 keystroke mid-doc n={size}"
    benchmark.extra_info["system"] = "file-baseline"
    benchmark.extra_info["doc_size"] = size
    benchmark(keystroke)


def test_shape_tendax_flat_offset_linear():
    """Assert the paper's shape: TeNDaX ~flat, offset baseline ~linear."""
    import time

    def time_tendax(size: int) -> float:
        db = Database("bench")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        handle = store.create("doc", "ana", text=make_text(size))
        anchor = handle.char_oid_at(size // 2)
        start = time.perf_counter()
        for __ in range(20):
            handle.insert_after(anchor, "x", "ana")
        return (time.perf_counter() - start) / 20

    def time_offset(size: int) -> float:
        db = Database("bench")
        store = OffsetDocumentStore(db)
        doc = store.create("doc", "ana", make_text(size))
        start = time.perf_counter()
        for __ in range(3):
            store.insert(doc, size // 2, "x", "ana")
        return (time.perf_counter() - start) / 3

    tendax_small, tendax_big = time_tendax(500), time_tendax(8000)
    offset_small, offset_big = time_offset(500), time_offset(8000)
    # Offset cost must grow steeply with size (16x size -> >4x time).
    assert offset_big / offset_small > 4.0
    # TeNDaX must grow far slower than the baseline does.
    assert (tendax_big / tendax_small) < (offset_big / offset_small)
    # And on large documents TeNDaX must win outright, by a lot.
    assert offset_big / tendax_big > 10.0


# ---------------------------------------------------------------------------
# The other editing tasks of §2
# ---------------------------------------------------------------------------

def test_append_typing_burst(benchmark):
    """Sequential typing at the end of a document (the common case)."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(2000))

    def burst():
        anchor = handle.anchor_for(handle.length())
        for ch in "hello world ":
            (anchor,) = handle.insert_after(anchor, ch, "ana")

    benchmark.group = "C1 editing tasks"
    benchmark(burst)


def test_delete_range_transaction(benchmark):
    """Logical deletion of a 20-char range (one transaction)."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(20_000))
    state = {"pos": 0}

    def delete_range():
        handle.delete_range(state["pos"], 20, "ana")
        state["pos"] += 5

    benchmark.group = "C1 editing tasks"
    benchmark(delete_range)


def test_styling_range_transaction(benchmark):
    """Collaborative layout: styling a 50-char range."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(5000))
    style = db.new_oid("style")

    def style_range():
        handle.apply_style(100, 50, style, "ana")

    benchmark.group = "C1 editing tasks"
    benchmark(style_range)


def test_copy_paste_with_lineage(benchmark, server):
    """Paste of 100 chars including per-character lineage capture."""
    server.register_user("ana")
    session = server.connect("ana")
    src = session.create_document("src", text=make_text(2000))
    dst = session.create_document("dst", text="start ")
    session.copy(src.doc, 0, 100)

    def paste():
        session.paste(dst.doc, 0)

    benchmark.group = "C1 editing tasks"
    benchmark(paste)


def test_document_load(benchmark):
    """Opening a 10k-char document (chain traversal + cache build)."""
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(10_000))
    doc = handle.doc

    def open_doc():
        h = store.handle(doc)
        h.close()
        return h.length()

    benchmark.group = "C1 editing tasks"
    result = benchmark(open_doc)
    assert result == 10_000


def test_storage_amplification_report():
    """Ablation: what character-level metadata costs in writes.

    Types 1000 characters into each system and compares the write
    amplification: TeNDaX writes O(1) rows per keystroke (but each row
    carries full metadata); the offset baseline writes O(n) row updates;
    the file baseline rewrites the whole document per save.
    """
    n = 1000
    # TeNDaX: count WAL data records for n keystrokes.
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana")
    before = len(db.wal)
    anchor = handle.begin_char
    for __ in range(n):
        (anchor,) = handle.insert_after(anchor, "x", "ana")
    tendax_records = len(db.wal) - before

    # Offset baseline: mid-document typing (the unfavourable position).
    odb = Database("bench2")
    offsets = OffsetDocumentStore(odb)
    doc = offsets.create("doc", "ana", "x" * 500)
    before = len(odb.wal)
    for i in range(50):  # 50 keystrokes are plenty to see the shape
        offsets.insert(doc, 250, "x", "ana")
    offset_records = (len(odb.wal) - before) * (n // 50)

    # File baseline: whole-file rewrite per keystroke.
    wp = FileWordProcessor()
    wp.create("doc.txt", "x" * 500)
    wp.open_for_edit("doc.txt", "ana")
    for __ in range(n):
        wp.insert("doc.txt", "ana", 250, "x")
    file_bytes = wp.stats["bytes_written"]

    # Appending at the end, TeNDaX pays ~6 WAL records per keystroke
    # (begin, insert, 2 neighbour updates, doc-row update, commit).
    assert tendax_records <= 7 * n
    # The offset layout pays hundreds of row updates per keystroke.
    assert offset_records > 50 * n
    # The file editor rewrote ~n/2 * n bytes = O(n^2) I/O.
    assert file_bytes > 500 * n
