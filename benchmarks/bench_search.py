"""D6 — Search (§3, bullet 6).

Content / metadata / structure search with the paper's ranking options,
against the file-server baseline (a grep-style full scan).  Expected
shape: the inverted index answers term queries in time governed by the
posting lists, while the scan baseline grows linearly with corpus size;
ranking options reorder identical result sets.
"""

from __future__ import annotations

import pytest

from repro.baselines import FileWordProcessor
from repro.db import Database
from repro.search import SearchEngine
from repro.text import DocumentStore, StructureManager
from repro.workload import CorpusSpec, generate_corpus, load_corpus

CORPUS_SIZES = [50, 200, 800]

#: Corpora are expensive to build character-by-character; the search
#: benches only read them, so one instance per size is shared.
_CORPUS_CACHE: dict = {}


def _tendax_corpus(n_docs: int):
    if n_docs not in _CORPUS_CACHE:
        db = Database("bench")
        store = DocumentStore(db)
        load_corpus(store, CorpusSpec(n_docs=n_docs, seed=4))
        engine = SearchEngine(db)
        engine.search("warmup")  # build the index outside timed regions
        _CORPUS_CACHE[n_docs] = (db, engine)
    return _CORPUS_CACHE[n_docs]


def _file_corpus(n_docs: int) -> FileWordProcessor:
    wp = FileWordProcessor()
    for doc in generate_corpus(CorpusSpec(n_docs=n_docs, seed=4)):
        wp.create(doc.name, doc.text)
    return wp


@pytest.mark.parametrize("n_docs", CORPUS_SIZES)
def test_indexed_content_search(benchmark, n_docs):
    """TeNDaX: inverted-index term query."""
    db, engine = _tendax_corpus(n_docs)

    def search():
        return engine.search("database transaction")

    benchmark.group = f"D6 content search n={n_docs}"
    benchmark.extra_info["system"] = "tendax-index"
    results = benchmark(search)
    assert results  # the database topic exists in every corpus


@pytest.mark.parametrize("n_docs", CORPUS_SIZES)
def test_scan_baseline_search(benchmark, n_docs):
    """File-server baseline: substring scan over every file."""
    wp = _file_corpus(n_docs)

    def search():
        return wp.scan_search("database")

    benchmark.group = f"D6 content search n={n_docs}"
    benchmark.extra_info["system"] = "file-scan"
    results = benchmark(search)
    assert results


def test_shape_index_beats_scan_at_scale():
    """Index query time grows slower than scan time with corpus size."""
    import time

    def measure_index(n: int) -> float:
        __, engine = _tendax_corpus(n)
        start = time.perf_counter()
        for __ in range(10):
            engine.search("database transaction")
        return (time.perf_counter() - start) / 10

    def measure_scan(n: int) -> float:
        wp = _file_corpus(n)
        start = time.perf_counter()
        for __ in range(10):
            wp.scan_search("database transaction")
        return (time.perf_counter() - start) / 10

    scan_growth = measure_scan(800) / measure_scan(50)
    index_growth = measure_index(800) / measure_index(50)
    assert scan_growth > 2.0
    assert index_growth < scan_growth


def _ranking_engine():
    if "ranking_kb" not in _CORPUS_CACHE:
        from repro.workload import build_knowledge_base
        kb = build_knowledge_base(n_docs=60, n_reads=80, n_pastes=20,
                                  seed=4)
        engine = SearchEngine(kb.server.db)
        engine.search("warmup")
        _CORPUS_CACHE["ranking_kb"] = engine
    return _CORPUS_CACHE["ranking_kb"]


@pytest.mark.parametrize(
    "ranking", ["relevance", "newest", "most_cited", "most_read"])
def test_ranking_options(benchmark, ranking):
    """The demo's ranking options over one result set."""
    engine = _ranking_engine()

    def search():
        return engine.search("database", ranking=ranking)

    benchmark.group = "D6 ranking options"
    benchmark.extra_info["ranking"] = ranking
    results = benchmark(search)
    assert results


def test_metadata_search(benchmark):
    """Creation-process metadata filters (creator + state + reader)."""
    engine = _ranking_engine()

    def search():
        return engine.search("creator:ana state:final")

    benchmark.group = "D6 metadata & structure"
    benchmark(search)


def test_structure_search(benchmark):
    """Finding document parts by structure labels."""
    db = Database("bench")
    store = DocumentStore(db)
    structure = StructureManager(db)
    for i in range(50):
        handle = store.create(f"paper-{i}", "ana", text="body " * 30)
        structure.add_node(handle.doc, "section", "ana",
                           label=f"Evaluation {i}")
        structure.add_node(handle.doc, "section", "ana",
                           label="Introduction")
    engine = SearchEngine(db)

    def search():
        return engine.search_structure("evaluation")

    benchmark.group = "D6 metadata & structure"
    hits = benchmark(search)
    assert len(hits) == 50


def test_incremental_index_maintenance(benchmark):
    """Cost of keeping the index fresh after one document edit."""
    db, engine = _tendax_corpus(200)
    handle = DocumentStore(db).handle(
        db.query("tx_documents").run()[0]["doc"])

    def edit_and_refresh():
        handle.insert_text(0, "fresh ", "ana")
        return engine.index.ensure_fresh()

    benchmark.group = "D6 index maintenance"
    refreshed = benchmark(edit_and_refresh)
    assert refreshed == 1  # only the edited document was re-indexed
