"""D5 / Fig. 2 — Visual mining.

Regenerates the document-space overview: feature extraction + tf-idf +
similarity layout cost as the corpus grows, determinism of the layout,
and the figure's content property — topically related documents cluster
together and the map is navigable along metadata dimensions.
"""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.mining import FeatureExtractor, VisualMiner, fit_tfidf
from repro.text import DocumentStore
from repro.workload import CorpusSpec, load_corpus

CORPUS_SIZES = [16, 64, 128]


def _corpus_db(n_docs: int) -> Database:
    db = Database("bench")
    store = DocumentStore(db)
    load_corpus(store, CorpusSpec(n_docs=n_docs, seed=11))
    return db


@pytest.mark.parametrize("n_docs", CORPUS_SIZES)
def test_build_document_map(benchmark, n_docs):
    """Full Fig. 2 pipeline: extract -> tf-idf -> layout -> clusters."""
    db = _corpus_db(n_docs)
    miner = VisualMiner(db, seed=3)

    def build():
        return miner.build_map(n_clusters=4)

    benchmark.group = f"D5 visual mining n={n_docs}"
    benchmark.extra_info["corpus"] = n_docs
    doc_map = benchmark.pedantic(build, rounds=3, iterations=1)
    assert doc_map.stats()["documents"] == n_docs


def test_feature_extraction(benchmark):
    """Feature extraction alone (the DB-reading half of the pipeline)."""
    db = _corpus_db(64)
    extractor = FeatureExtractor(db)

    def extract():
        return extractor.extract_all()

    benchmark.group = "D5 pipeline stages"
    features = benchmark(extract)
    assert len(features) == 64


def test_tfidf_fit(benchmark):
    """tf-idf fitting alone (the numeric half)."""
    db = _corpus_db(64)
    features = FeatureExtractor(db).extract_all()

    def fit():
        return fit_tfidf(features)

    benchmark.group = "D5 pipeline stages"
    model = benchmark(fit)
    assert model.n_docs == 64


def test_ascii_scatter_render(benchmark):
    """Rendering the overview (the figure itself)."""
    db = _corpus_db(64)
    doc_map = VisualMiner(db, seed=3).build_map(n_clusters=4)

    def render():
        return doc_map.ascii_scatter(width=60, height=18)

    benchmark.group = "D5 pipeline stages"
    art = benchmark(render)
    assert art.count("\n") == 19


def test_fig2_shape_topics_cluster_together():
    """The figure's content: same-topic documents share a cluster."""
    db = Database("bench")
    store = DocumentStore(db)
    # Two sharply distinct topics, 6 docs each.
    from repro.workload import generate_text
    import random
    rng = random.Random(1)
    for i in range(6):
        store.create(f"db-{i}", "ana",
                     text=generate_text(rng, "database", 80))
    for i in range(6):
        store.create(f"ed-{i}", "ana",
                     text=generate_text(rng, "editing", 80))
    doc_map = VisualMiner(db, seed=3).build_map(n_clusters=2)
    clusters = [p.cluster for p in doc_map.points]
    db_majority = max(set(clusters[:6]), key=clusters[:6].count)
    ed_majority = max(set(clusters[6:]), key=clusters[6:].count)
    assert db_majority != ed_majority
    # Majority purity: at least 5 of 6 in the dominant cluster.
    assert clusters[:6].count(db_majority) >= 5
    assert clusters[6:].count(ed_majority) >= 5


def test_fig2_shape_dimension_navigation():
    """Grouping along each advertised metadata dimension works."""
    db = _corpus_db(32)
    doc_map = VisualMiner(db, seed=3).build_map()
    for dimension in ("creator", "state", "cluster", "size_band"):
        groups = doc_map.group_by(dimension)
        assert sum(len(v) for v in groups.values()) == 32


def test_group_by_query(benchmark):
    db = _corpus_db(64)
    doc_map = VisualMiner(db, seed=3).build_map()

    def navigate():
        return {dim: len(doc_map.group_by(dim))
                for dim in ("creator", "state", "cluster", "size_band")}

    benchmark.group = "D5 pipeline stages"
    benchmark(navigate)
