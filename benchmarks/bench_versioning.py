"""C4 — Versioning from character-level metadata (§2).

The paper lists "versioning" among the features the native representation
gives for free: a version is just the set of live character OIDs, so
tagging costs one row, diffing is set algebra, and restoring is an
ordinary (undoable) edit transaction.  We measure all three against
document size, plus export/import roundtrips (the "uniform tool access"
path).
"""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.text import (
    DocumentStore,
    VersionManager,
    export_json,
    import_json,
)

from .conftest import make_text

DOC_SIZES = [500, 2000, 8000]


def _document(size: int):
    db = Database("bench")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(size))
    return db, store, handle, VersionManager(db)


@pytest.mark.parametrize("size", DOC_SIZES)
def test_tag_version(benchmark, size):
    """Tagging the current state (one row, no character copying)."""
    db, store, handle, versions = _document(size)
    counter = {"n": 0}

    def tag():
        counter["n"] += 1
        return versions.tag(handle, f"v{counter['n']}", "ana")

    benchmark.group = f"C4 versioning n={size}"
    benchmark.extra_info["op"] = "tag"
    benchmark(tag)


@pytest.mark.parametrize("size", DOC_SIZES)
def test_diff_versions(benchmark, size):
    """Diffing two versions ~100 edits apart."""
    db, store, handle, versions = _document(size)
    v1 = versions.tag(handle, "v1", "ana")
    for i in range(50):
        handle.insert_text(i * 2, "x", "ben")
        handle.delete_range(i * 3 % max(1, handle.length() - 1), 1, "ben")
    v2 = versions.tag(handle, "v2", "ana")

    def diff():
        return versions.diff(v1, v2)

    benchmark.group = f"C4 versioning n={size}"
    benchmark.extra_info["op"] = "diff"
    result = benchmark(diff)
    # Some inserted characters may themselves have been deleted again in
    # the edit loop; the diff reflects the *net* change.
    assert 0 < len(result.added) <= 50
    assert not result.is_empty


def test_restore_version(benchmark):
    """Restoring a version after 100 edits (an edit transaction)."""
    db, store, handle, versions = _document(2000)
    v1 = versions.tag(handle, "v1", "ana")
    original = handle.text()
    state = {"restored": True}

    def mutate_and_restore():
        if state["restored"]:
            for i in range(20):
                handle.insert_text(0, "noise ", "ben")
            state["restored"] = False
        else:
            versions.restore(handle, v1, "ana")
            state["restored"] = True

    benchmark.group = "C4 restore & roundtrip"
    benchmark.extra_info["op"] = "restore-or-mutate"
    benchmark.pedantic(mutate_and_restore, rounds=10, iterations=1)
    if not state["restored"]:
        versions.restore(handle, v1, "ana")
    assert handle.text() == original


def test_export_import_roundtrip(benchmark):
    """Full-fidelity export + import of a 2k-char document."""
    db, store, handle, versions = _document(2000)
    handle.delete_range(100, 50, "ben")   # history to carry over

    def roundtrip():
        target = DocumentStore(Database("dst"), log_reads=False,
                               log_writes=False)
        clone = import_json(target, export_json(handle), "importer")
        return clone

    benchmark.group = "C4 restore & roundtrip"
    benchmark.extra_info["op"] = "export+import"
    clone = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert clone.text() == handle.text()


def test_shape_tag_constant_cost():
    """Tagging stores OID references, not copies: cost ~linear in the
    listing, never in *versions kept* (no copy-on-tag blowup)."""
    db, store, handle, versions = _document(2000)
    import time
    timings = []
    for round_no in range(3):
        start = time.perf_counter()
        for i in range(10):
            versions.tag(handle, f"r{round_no}-{i}", "ana")
        timings.append(time.perf_counter() - start)
    # Keeping 10 vs 30 versions must not change tagging cost materially.
    assert timings[-1] < timings[0] * 5
