"""D4 / Fig. 1 — Data lineage.

Regenerates the lineage visualisation: graph construction and rendering
cost as the number of copy operations grows, character-level ancestry
through multi-generation paste chains, and correctness of the
internal/external source distinction the figure shows.
"""

from __future__ import annotations

import random

import pytest

from repro.collab import CollaborationServer
from repro.lineage import LineageGraph, ascii_lineage, to_dot

COPY_COUNTS = [10, 50, 200]


def _pasted_corpus(n_copies: int, n_docs: int = 12, seed: int = 5):
    rng = random.Random(seed)
    server = CollaborationServer()
    server.register_user("ana")
    session = server.connect("ana")
    handles = [
        session.create_document(f"doc-{i}", text=f"document {i} " * 20)
        for i in range(n_docs)
    ]
    for i in range(n_copies):
        if i % 7 == 6:
            session.copy_external(f"external snippet {i}",
                                  f"https://src{i % 3}.example.org")
            dst = rng.choice(handles)
        else:
            src, dst = rng.sample(handles, 2)
            session.open(src.doc)
            count = rng.randint(3, 20)
            session.copy(src.doc, rng.randint(0, 50), count)
        session.open(dst.doc)
        session.paste(dst.doc, 0)
    return server, handles


@pytest.mark.parametrize("n_copies", COPY_COUNTS)
def test_build_lineage_graph(benchmark, n_copies):
    """Graph construction from the copy log."""
    server, handles = _pasted_corpus(n_copies)
    lineage = LineageGraph(server.db)

    def build():
        return lineage.build()

    benchmark.group = f"D4 lineage build copies={n_copies}"
    graph = benchmark(build)
    assert graph.number_of_edges() == n_copies


def test_render_fig1_ascii(benchmark):
    """Rendering the Fig. 1 view for the best-connected document."""
    server, handles = _pasted_corpus(80)
    lineage = LineageGraph(server.db)
    target = max(handles, key=lambda h: len(lineage.sources_of(h.doc)))

    def render():
        return ascii_lineage(lineage, target.doc)

    benchmark.group = "D4 lineage render"
    art = benchmark(render)
    assert "paste(s) in" in art
    assert "<-" in art


def test_render_fig1_dot(benchmark):
    server, handles = _pasted_corpus(80)
    lineage = LineageGraph(server.db)
    graph = lineage.build()

    def render():
        return to_dot(graph)

    benchmark.group = "D4 lineage render"
    dot = benchmark(render)
    assert dot.startswith("digraph")


def test_char_ancestry_deep_chain(benchmark):
    """Walking a 10-generation paste chain for one character."""
    server = CollaborationServer()
    server.register_user("ana")
    session = server.connect("ana")
    docs = [session.create_document(f"gen-{i}", text=f"gen {i}: ")
            for i in range(11)]
    session.open(docs[0].doc)
    session.insert(docs[0].doc, 7, "payload")
    for i in range(10):
        session.copy(docs[i].doc, 7, 7)
        session.paste(docs[i + 1].doc, 7)
    lineage = LineageGraph(server.db)
    leaf = docs[10].char_oid_at(7)

    def ancestry():
        return lineage.char_ancestry(leaf)

    benchmark.group = "D4 lineage ancestry"
    chain = benchmark(ancestry)
    assert len(chain) == 11
    assert chain[-1].doc == docs[0].doc


def test_fig1_shape_internal_and_external_sources():
    """The figure's content: internal and external provenance co-exist."""
    server, handles = _pasted_corpus(50)
    lineage = LineageGraph(server.db)
    graph = lineage.build()
    kinds = {attrs["kind"] for __, attrs in graph.nodes(data=True)}
    assert kinds == {"document", "external"}
    # Every edge carries the figure's annotations.
    for __, __, attrs in graph.edges(data=True):
        assert attrs["n_chars"] > 0
        assert attrs["user"] == "ana"


def test_copied_fraction_query(benchmark):
    server, handles = _pasted_corpus(60)
    lineage = LineageGraph(server.db)

    def fractions():
        return [lineage.copied_fraction(h.doc) for h in handles]

    benchmark.group = "D4 lineage ancestry"
    values = benchmark(fractions)
    assert any(v > 0 for v in values)
