#!/usr/bin/env python3
"""Render paper-style result tables from a pytest-benchmark JSON file.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json

Benchmarks are grouped by their ``benchmark.group`` (one group per
experiment sweep); rows show median/mean latency plus the ``extra_info``
fields each bench attached (system, corpus size, mode ...).
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def _fmt_seconds(value: float) -> str:
    if value < 1e-6:
        return f"{value * 1e9:.0f} ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f} us"
    if value < 1.0:
        return f"{value * 1e3:.2f} ms"
    return f"{value:.3f} s"


def load_groups(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in payload.get("benchmarks", []):
        groups[bench.get("group") or "(ungrouped)"].append(bench)
    return groups


def render(groups: dict) -> str:
    lines: list[str] = []
    for group in sorted(groups):
        benches = groups[group]
        lines.append(group)
        lines.append("-" * len(group))
        rows = []
        for bench in sorted(benches, key=lambda b: b["stats"]["median"]):
            stats = bench["stats"]
            extra = bench.get("extra_info", {})
            label = extra.get("system") or extra.get("mode") \
                or extra.get("ranking") or bench["name"].split("[")[0]
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(extra.items())
                if k not in ("system", "mode", "ranking"))
            rows.append((
                str(label),
                _fmt_seconds(stats["median"]),
                _fmt_seconds(stats["mean"]),
                f"{1.0 / stats['mean']:,.0f}/s",
                detail,
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(5)]
        header = ("system/mode", "median", "mean", "throughput", "params")
        widths = [max(w, len(h)) for w, h in zip(widths, header)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    print(render(load_groups(argv[1])))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
