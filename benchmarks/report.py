#!/usr/bin/env python3
"""Render paper-style result tables from a pytest-benchmark JSON file.

Usage::

    PYTHONPATH=src pytest benchmarks/ --benchmark-only \\
        --benchmark-json=bench.json
    PYTHONPATH=src python benchmarks/report.py bench.json [BENCH_obs.json]

Benchmarks are grouped by their ``benchmark.group`` (one group per
experiment sweep); rows show median/mean latency plus the ``extra_info``
fields each bench attached (system, corpus size, mode ...).

Every bench run also emits ``BENCH_obs.json`` next to the pytest
rootdir: one entry per benchmark carrying the merged engine metrics
observed while it ran (see ``repro.obs``).  Pass it as the second
argument to render those metrics; :func:`validate_obs_payload` is the
schema contract the smoke-bench CI step enforces.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict

#: Schema identifier stamped into every BENCH_obs.json.  Bump only with
#: a corresponding validator + docs update.
SCHEMA_ID = "tendax.bench-obs.v2"

#: Previous schema, still readable: v1 payloads had no labelled metric
#: names and no per-bench ``telemetry`` time-series block.
SCHEMA_V1 = "tendax.bench-obs.v1"

ACCEPTED_SCHEMAS = (SCHEMA_ID, SCHEMA_V1)


def _fmt_seconds(value: float) -> str:
    if value < 1e-6:
        return f"{value * 1e9:.0f} ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f} us"
    if value < 1.0:
        return f"{value * 1e3:.2f} ms"
    return f"{value:.3f} s"


def load_groups(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in payload.get("benchmarks", []):
        groups[bench.get("group") or "(ungrouped)"].append(bench)
    return groups


def render(groups: dict) -> str:
    lines: list[str] = []
    for group in sorted(groups):
        benches = groups[group]
        lines.append(group)
        lines.append("-" * len(group))
        rows = []
        for bench in sorted(benches, key=lambda b: b["stats"]["median"]):
            stats = bench["stats"]
            extra = bench.get("extra_info", {})
            label = extra.get("system") or extra.get("mode") \
                or extra.get("ranking") or bench["name"].split("[")[0]
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(extra.items())
                if k not in ("system", "mode", "ranking", "obs"))
            rows.append((
                str(label),
                _fmt_seconds(stats["median"]),
                _fmt_seconds(stats["mean"]),
                f"{1.0 / stats['mean']:,.0f}/s",
                detail,
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(5)]
        header = ("system/mode", "median", "mean", "throughput", "params")
        widths = [max(w, len(h)) for w, h in zip(widths, header)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append("")
    return "\n".join(lines)


def build_obs_payload(entries: list[dict]) -> dict:
    """Wrap per-bench metric entries in the versioned envelope."""
    return {"schema": SCHEMA_ID, "benchmarks": list(entries)}


def validate_obs_payload(payload, *, require_core: bool = False
                         ) -> list[str]:
    """Validate a BENCH_obs.json payload; returns problem strings.

    Checks the envelope, each entry's shape, and that every metric name
    is in the catalogue (an unknown name means instrumented code and
    catalogue drifted apart).  With ``require_core=True`` the union of
    names across entries must also cover ``REQUIRED_METRICS`` — the
    smoke bench's metric-name regression check.
    """
    from repro.obs import missing_required, unknown_names

    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") not in ACCEPTED_SCHEMAS:
        errors.append(
            f"schema is {payload.get('schema')!r}, expected one of "
            f"{ACCEPTED_SCHEMAS!r}")
    benches = payload.get("benchmarks")
    if not isinstance(benches, list):
        errors.append("'benchmarks' must be a list")
        return errors
    seen_names: set[str] = set()
    for i, entry in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where} must be an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            errors.append(f"{where}.name must be a non-empty string")
        if not isinstance(entry.get("group"), (str, type(None))):
            errors.append(f"{where}.group must be a string or null")
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{where}.metrics must be an object")
            continue
        for alien in unknown_names(metrics):
            errors.append(f"{where}: metric {alien!r} not in the catalogue")
        for name, metric in metrics.items():
            if not isinstance(metric, dict) or "type" not in metric:
                errors.append(f"{where}.metrics[{name!r}] needs a 'type'")
                continue
            kind = metric["type"]
            if kind in ("counter", "gauge"):
                if not isinstance(metric.get("value"), (int, float)):
                    errors.append(
                        f"{where}.metrics[{name!r}] needs a numeric 'value'")
            elif kind == "histogram":
                if not isinstance(metric.get("count"), int):
                    errors.append(
                        f"{where}.metrics[{name!r}] needs an int 'count'")
            else:
                errors.append(
                    f"{where}.metrics[{name!r}] has unknown type {kind!r}")
        seen_names.update(metrics)
        errors.extend(_validate_telemetry(entry.get("telemetry"), where))
    if require_core:
        for name in missing_required(seen_names):
            errors.append(f"required metric {name!r} missing from all "
                          "benchmarks (name regression?)")
    return errors


def _validate_telemetry(telemetry, where: str) -> list[str]:
    """Check an entry's optional v2 ``telemetry`` time-series block."""
    from repro.obs import TELEMETRY_SCHEMA, unknown_names

    if telemetry is None:
        return []
    prefix = f"{where}.telemetry"
    if not isinstance(telemetry, dict):
        return [f"{prefix} must be an object"]
    errors: list[str] = []
    if telemetry.get("schema") != TELEMETRY_SCHEMA:
        errors.append(f"{prefix}.schema is {telemetry.get('schema')!r}, "
                      f"expected {TELEMETRY_SCHEMA!r}")
    series = telemetry.get("series")
    if not isinstance(series, dict):
        errors.append(f"{prefix}.series must be an object")
        series = {}
    windows = telemetry.get("windows")
    if not isinstance(windows, dict):
        errors.append(f"{prefix}.windows must be an object")
        windows = {}
    for alien in unknown_names(set(series) | set(windows)):
        errors.append(f"{prefix}: metric {alien!r} not in the catalogue")
    for name, per_window in windows.items():
        if not isinstance(per_window, dict):
            errors.append(f"{prefix}.windows[{name!r}] must be an object")
            continue
        for label, agg in per_window.items():
            if not isinstance(agg, dict) or "kind" not in agg:
                errors.append(f"{prefix}.windows[{name!r}][{label!r}] "
                              "needs a 'kind'")
    return errors


def render_obs(payload: dict) -> str:
    """Per-bench metric summaries from a BENCH_obs.json payload."""
    lines: list[str] = []
    for entry in payload.get("benchmarks", []):
        lines.append(f"{entry.get('group') or '(ungrouped)'} :: "
                     f"{entry['name']}")
        metrics = entry.get("metrics", {})
        width = max((len(n) for n in metrics), default=0)
        for name in sorted(metrics):
            metric = metrics[name]
            if metric["type"] == "histogram":
                # Only *_seconds histograms hold durations; others
                # (e.g. txn.ops) are plain counts.
                fmt = (_fmt_seconds if name.endswith("_seconds")
                       else lambda v: f"{v:,.1f}")
                detail = (f"n={metric.get('count', 0)} "
                          f"p50={fmt(metric['p50'])} "
                          f"p95={fmt(metric['p95'])}"
                          if metric.get("p50") is not None
                          else f"n={metric.get('count', 0)}")
            else:
                detail = f"{metric.get('value')}"
            lines.append(f"  {name.ljust(width)}  {detail}")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    print(render(load_groups(argv[1])))
    if len(argv) == 3:
        with open(argv[2], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        errors = validate_obs_payload(payload)
        if errors:
            for error in errors:
                print(f"BENCH_obs invalid: {error}", file=sys.stderr)
            return 1
        print(render_obs(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
