"""D7 — The wire: editors in separate processes over TCP (§1, §3).

The paper's editors reach the database over a LAN; ``repro.net`` is
that hop over real loopback sockets.  Three measurements:

* **connect storm** — N clients handshake and open the shared document
  at once (the start of a LAN-party);
* **fan-out latency** — one keystroke typed over the wire until every
  remote replica has spliced it (the socket analogue of
  ``collab.replication_seconds``);
* **durable keystroke throughput** — sustained typing over the wire
  against a file-backed WAL, every ACK carrying the durable LSN;
* **stats scrape** — a full STATS round-trip (connect + telemetry
  snapshot + parse) with N labelled series live, while an editor keeps
  typing — the cost a monitoring poller imposes on a busy server.

All benches run the server on its own thread (``ServerThread``) with
real TCP clients, so the numbers include framing, syscalls and the
event loop — the honest cost of leaving the process.
"""

from __future__ import annotations

from time import monotonic

import pytest

from repro.collab import CollaborationServer
from repro.net import NetworkClient, ServerThread

SETTLE_SECONDS = 10.0
STORM_SIZES = [8]
FANOUT_SIZES = [2, 4]
THROUGHPUT_KEYS = 50
SCRAPE_SERIES = [32]


def _server(n_users: int, wal_path: str | None = None):
    collab = CollaborationServer(wal_path=wal_path)
    for i in range(n_users):
        collab.register_user(f"user{i}")
    return collab


@pytest.mark.parametrize("n_clients", STORM_SIZES)
def test_connect_storm(benchmark, n_clients):
    """N clients handshake and open one document simultaneously."""
    collab = _server(n_clients)
    host = collab.connect("user0")
    doc = host.create_document("party", text="lan ").doc
    with ServerThread(collab) as thread:

        def storm():
            clients = [NetworkClient("127.0.0.1", thread.port, f"user{i}")
                       for i in range(n_clients)]
            try:
                for client in clients:
                    client.session().open(doc)
                return [c.mirrors[doc].text() for c in clients]
            finally:
                for client in clients:
                    client.close()

        benchmark.group = "D7 connect storm (handshake + open)"
        benchmark.extra_info["clients"] = n_clients
        texts = benchmark.pedantic(storm, rounds=5, iterations=1)
    assert set(texts) == {"lan "}


@pytest.mark.parametrize("n_replicas", FANOUT_SIZES)
def test_fanout_latency(benchmark, n_replicas):
    """One wire keystroke until every remote replica has applied it."""
    collab = _server(n_replicas + 1)
    with ServerThread(collab) as thread:
        writer = NetworkClient("127.0.0.1", thread.port, "user0")
        session = writer.session()
        doc = session.create_document("fanout", text="").doc
        replicas = [NetworkClient("127.0.0.1", thread.port, f"user{i+1}")
                    for i in range(n_replicas)]
        mirrors = [r.session().open(doc) for r in replicas]
        try:
            state = {"length": 0}

            def keystroke():
                state["length"] += 1
                session.insert(doc, state["length"] - 1, "x")
                deadline = monotonic() + SETTLE_SECONDS
                while any(m.length() < state["length"] for m in mirrors):
                    assert monotonic() < deadline, "fan-out stalled"
                    for replica in replicas:
                        replica.poll(timeout=0.001)

            benchmark.group = "D7 fan-out latency (keystroke to all replicas)"
            benchmark.extra_info["replicas"] = n_replicas
            benchmark.pedantic(keystroke, rounds=30, iterations=1)
            for mirror in mirrors:
                assert mirror.text() == "x" * state["length"]
                assert mirror.check_integrity() == []
        finally:
            writer.close()
            for replica in replicas:
                replica.close()


def test_durable_keystroke_throughput(benchmark, tmp_path):
    """Sustained wire typing with every ACK durably acknowledged."""
    collab = _server(1, wal_path=str(tmp_path / "net.wal"))
    with ServerThread(collab) as thread:
        client = NetworkClient("127.0.0.1", thread.port, "user0")
        session = client.session()
        handle = session.create_document("typing").doc
        state = {"anchor": session.handle(handle).begin_char}
        try:

            def burst():
                anchor = state["anchor"]
                for __ in range(THROUGHPUT_KEYS):
                    anchor = session.insert_after(handle, anchor, "k")[0]
                state["anchor"] = anchor

            benchmark.group = "D7 durable keystroke throughput (wire)"
            benchmark.extra_info["keys_per_round"] = THROUGHPUT_KEYS
            benchmark.pedantic(burst, rounds=5, iterations=1)
            # Every keystroke's ACK proved durability: the WAL fsynced.
            assert collab.db.wal.durable_lsn > 0
            stats = client.server_stats()
            benchmark.extra_info["durable_lsn"] = collab.db.wal.durable_lsn
            benchmark.extra_info["net_ops"] = stats["net"]["ops"]
        finally:
            client.close()


@pytest.mark.parametrize("n_series", SCRAPE_SERIES)
def test_stats_scrape(benchmark, n_series):
    """STATS round-trip with N labelled series live under typing load."""
    from repro.net import scrape

    collab = _server(1)
    registry = collab.db.obs.registry
    # Pre-populate N labelled series beyond what the workload creates,
    # so the scraped snapshot carries a realistic dimensioned payload.
    family = registry.family("collab.notifications", "counter")
    for i in range(n_series):
        family.labels(doc=f"tendax.doc:{i}").inc()
    with ServerThread(collab, telemetry_interval=0.0) as thread:
        client = NetworkClient("127.0.0.1", thread.port, "user0")
        session = client.session()
        handle = session.create_document("scrape").doc
        state = {"anchor": session.handle(handle).begin_char}
        telemetry = thread.server.telemetry
        try:

            def typing_load():
                # A burst of wire keystrokes + one sample between
                # scrapes: the poller never sees an idle server.
                anchor = state["anchor"]
                for __ in range(5):
                    anchor = session.insert_after(handle, anchor, "k")[0]
                state["anchor"] = anchor
                telemetry.sample()
                return (), {}

            def one_scrape():
                return scrape("127.0.0.1", thread.port, kind="stats")

            benchmark.group = "D7 stats scrape (round-trip under load)"
            benchmark.extra_info["series"] = n_series
            payload = benchmark.pedantic(one_scrape, setup=typing_load,
                                         rounds=10, iterations=1)
        finally:
            client.close()
    snapshot = payload["telemetry"]
    labelled = [name for name in snapshot["series"] if "{" in name]
    assert len(labelled) >= n_series, "scrape lost the labelled series"
    assert payload["metrics"], "scrape returned no metrics"
    # Ride the time-series snapshot into BENCH_obs.json (v2 block).
    benchmark.extra_info["telemetry"] = snapshot
