"""D1 — Collaborative editing (§3, bullet 1).

N concurrent editors on one shared document, realistic operation mix
(typing, deleting, layout, copy-paste).  We measure aggregate operation
throughput as the party grows and verify the demo's correctness property:
all editors converge to the same text with an intact character chain.

Ablation (DESIGN.md): push propagation (commit-trigger-maintained editor
caches, what TeNDaX does) vs a polling client that rebuilds its view
before every operation.
"""

from __future__ import annotations

import pytest

from repro.collab import CollaborationServer, EditorClient
from repro.workload import SimulatedTypist, run_lan_party

PARTY_SIZES = [1, 2, 4, 8]
OPS_PER_EDITOR = 40


def _build_party(n_editors: int):
    server = CollaborationServer()
    users = [f"user{i}" for i in range(n_editors)]
    for user in users:
        server.register_user(user)
    host = server.connect(users[0])
    shared = host.create_document("shared", text="start ")
    editors = [EditorClient(host, shared.doc)]
    for user in users[1:]:
        session = server.connect(user)
        editors.append(EditorClient(session, shared.doc))
    typists = [SimulatedTypist(e, seed=100 + i)
               for i, e in enumerate(editors)]
    return server, shared, editors, typists


@pytest.mark.parametrize("n_editors", PARTY_SIZES)
def test_party_throughput(benchmark, n_editors):
    """Aggregate ops/s with N concurrent editors (round-robin)."""
    server, shared, editors, typists = _build_party(n_editors)

    def run_round():
        for typist in typists:
            typist.step()

    benchmark.group = "D1 party throughput (one round = N ops)"
    benchmark.extra_info["editors"] = n_editors
    benchmark.pedantic(run_round, rounds=OPS_PER_EDITOR, iterations=1)
    # Convergence check after the measured run.
    texts = {e.text() for e in editors}
    assert len(texts) == 1
    assert editors[0].handle.check_integrity() == []


def test_full_lan_party_scenario(benchmark):
    """The complete §3 scenario (3 OSes, styles, pastes, undo mix)."""
    def party():
        report = run_lan_party(rounds=30, seed=42)
        assert report.converged and report.chain_intact
        return report

    benchmark.group = "D1 LAN-party scenario"
    report = benchmark.pedantic(party, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = report.operations
    benchmark.extra_info["final_length"] = report.final_length


@pytest.mark.parametrize("n_editors", [2, 4])
def test_replication_visibility(benchmark, n_editors):
    """Keystroke→remote-visibility: one editor types, N-1 replicas see it.

    The measured unit is one keystroke including its fan-out, which
    drives the ``collab.replication_seconds`` histogram (keystroke start
    to each remote inbox arrival) into the bench's obs snapshot — the
    end-to-end replication latency the paper's real-time claim is about.
    """
    server, shared, editors, __ = _build_party(n_editors)
    active = editors[0]

    def keystroke():
        active.move_end()
        active.type("x")

    benchmark.group = "D1 replication visibility"
    benchmark.extra_info["editors"] = n_editors
    benchmark(keystroke)
    snapshot = server.db.metrics_snapshot()
    replication = snapshot.get("collab.replication_seconds", {})
    assert replication.get("count", 0) > 0
    texts = {e.text() for e in editors}
    assert len(texts) == 1


# ---------------------------------------------------------------------------
# Ablation: push propagation vs client polling
# ---------------------------------------------------------------------------

def test_propagation_push(benchmark):
    """Push: editor caches spliced incrementally from commit triggers."""
    server, shared, editors, __ = _build_party(2)
    active, passive = editors

    def edit_and_read():
        active.move_end()
        active.type("x")
        return passive.text()  # already fresh, no rebuild

    benchmark.group = "D1 propagation ablation"
    benchmark.extra_info["mode"] = "push (trigger splice)"
    benchmark(edit_and_read)


def test_propagation_poll(benchmark):
    """Poll: the passive client rebuilds its full view per read."""
    server, shared, editors, __ = _build_party(2)
    active, passive = editors

    def edit_and_read():
        active.move_end()
        active.type("x")
        passive.handle.refresh()  # the polling client's full rebuild
        return passive.text()

    benchmark.group = "D1 propagation ablation"
    benchmark.extra_info["mode"] = "poll (full rebuild)"
    benchmark(edit_and_read)


def test_shape_push_beats_poll_on_large_docs():
    """Push cost stays flat while poll cost grows with document size."""
    import time

    def measure(mode: str, size: int) -> float:
        server, shared, editors, __ = _build_party(2)
        active, passive = editors
        active.type("x" * size)
        start = time.perf_counter()
        for __ in range(10):
            active.type("y")
            if mode == "poll":
                passive.handle.refresh()
            passive.text()
        return (time.perf_counter() - start) / 10

    push_big = measure("push", 4000)
    poll_big = measure("poll", 4000)
    assert poll_big > push_big  # the rebuild dominates on big documents
