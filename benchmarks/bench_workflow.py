"""D2 — Business process definition and flow (§3, bullet 2).

Define and run a dynamic workflow within a document: task creation
throughput, the end-to-end latency of one complete
translate-route-verify flow, and the cost of runtime re-routing —
the operations the demo performs live.
"""

from __future__ import annotations

import pytest

from repro.collab import CollaborationServer
from repro.process import TaskList, WorkflowManager


def _setup():
    server = CollaborationServer()
    server.register_user("ana")
    server.register_user("ben")
    server.register_user("cleo", roles=("translators",))
    session = server.connect("ana")
    handle = session.create_document("contract", text="clause " * 50)
    workflow = WorkflowManager(server.db, server.principals)
    return server, handle, workflow


def test_define_process_with_tasks(benchmark):
    """Defining a 5-task chain bound to document ranges."""
    server, handle, workflow = _setup()
    counter = {"n": 0}

    def define():
        counter["n"] += 1
        process = workflow.define_process(
            handle.doc, f"proc-{counter['n']}", "ana")
        previous = None
        for i in range(5):
            depends = [previous] if previous else []
            previous = workflow.add_task(
                process, f"task-{i}", "ben", "ana",
                depends_on=depends,
                start_char=handle.char_oid_at(i * 10),
                end_char=handle.char_oid_at(i * 10 + 5),
            )
        return process

    benchmark.group = "D2 workflow"
    benchmark(define)


def test_complete_flow_end_to_end(benchmark):
    """One full translate -> verify flow including dynamic routing."""
    server, handle, workflow = _setup()
    counter = {"n": 0}

    def flow():
        counter["n"] += 1
        process = workflow.define_process(
            handle.doc, f"flow-{counter['n']}", "ana")
        translate = workflow.add_task(
            process, "translate", "translators", "ana")
        verify = workflow.add_task(
            process, "verify", "ben", "ana", depends_on=[translate])
        workflow.start_process(process, "ana")
        workflow.start_task(translate, "cleo")
        workflow.complete_task(translate, "cleo")
        workflow.route_task(verify, "cleo", "ana")   # runtime re-route
        workflow.complete_task(verify, "cleo")
        return workflow.process_status(process)

    benchmark.group = "D2 workflow"
    status = benchmark(flow)
    assert status["state"] == "completed"


def test_task_state_transition(benchmark):
    """The unit cost of one task completion (a metadata transaction)."""
    server, handle, workflow = _setup()
    process = workflow.define_process(handle.doc, "big", "ana")
    tasks = [workflow.add_task(process, f"t{i}", "ben", "ana")
             for i in range(3000)]
    workflow.start_process(process, "ana")
    iterator = iter(tasks)

    def complete_one():
        workflow.complete_task(next(iterator), "ben")

    benchmark.group = "D2 workflow"
    benchmark.pedantic(complete_one, rounds=200, iterations=1)


def test_task_inbox_query(benchmark):
    """Resolving a user's task list across roles (the demo's inbox)."""
    server, handle, workflow = _setup()
    task_list = TaskList(workflow)
    process = workflow.define_process(handle.doc, "p", "ana")
    for i in range(100):
        assignee = "translators" if i % 2 else "cleo"
        workflow.add_task(process, f"t{i}", assignee, "ana")
    workflow.start_process(process, "ana")

    def inbox():
        return task_list.tasks_for("cleo")

    benchmark.group = "D2 workflow"
    tasks = benchmark(inbox)
    assert len(tasks) == 100  # direct + via role


def test_runtime_routing(benchmark):
    """Re-assigning a live task (routed dynamically, §3)."""
    server, handle, workflow = _setup()
    process = workflow.define_process(handle.doc, "p", "ana")
    task = workflow.add_task(process, "t", "ben", "ana")
    workflow.start_process(process, "ana")
    targets = ["cleo", "ben"]
    state = {"i": 0}

    def route():
        workflow.route_task(task, targets[state["i"] % 2], "ana")
        state["i"] += 1

    benchmark.group = "D2 workflow"
    benchmark.pedantic(route, rounds=100, iterations=1)
