"""D8 — Replication: WAL shipping, read replicas, failover.

The paper's database carries every keystroke; a deployment that wants
analytics or read scale-out cannot run them all on the leader.  The
``repro.repl`` subsystem ships the leader's durable WAL prefix to
follower engines; three measurements bound what that costs:

* **follower apply throughput** — a fresh follower draining a leader's
  WAL through :class:`~repro.repl.WalTailer` (records applied per
  second: the replay speed that bounds how fast a replica catches up,
  and therefore how stale a rebuilt one starts);
* **read-replica scan offload** — a full analytic sweep while a writer
  keeps committing: leader-local (sweep and writes share one engine)
  vs on a streaming replica (the sweep's only contention is the apply
  stream).  Both arms are lock-free MVCC sweeps; the comparison is
  engine interference, not lock queues;
* **promotion time** — a caught-up follower finalizing its applied
  prefix into a writable leader (the in-engine share of failover;
  the wire smoke measures the end-to-end path).
"""

from __future__ import annotations

import threading

import pytest

from repro.db import Database, column
from repro.repl import FollowerEngine, WalTailer

TABLE = "notes"
APPLY_TXNS = [300]
SCAN_ROWS = 400
PROMOTE_TXNS = [300]


def _leader(n_txns: int, wal_path: str, *, rows_per_txn: int = 2) -> Database:
    """A leader with ``n_txns`` committed transactions durable in its WAL.

    A file-backed WAL matters: tailers ship only the *durable* prefix,
    and only fsync advances ``durable_lsn``.
    """
    db = Database("leader", wal_path=wal_path)
    db.create_table(TABLE, [column("k", "str"), column("v", "int")],
                    key="k")
    for t in range(n_txns):
        txn = db.begin()
        for j in range(rows_per_txn):
            txn.insert(TABLE, {"k": f"t{t}-r{j}", "v": t * 31 + j})
        txn.commit()
    return db


@pytest.mark.parametrize("n_txns", APPLY_TXNS)
def test_follower_apply_throughput(benchmark, n_txns, tmp_path):
    """A fresh follower drains the leader's durable WAL prefix."""
    leader = _leader(n_txns, str(tmp_path / "leader.wal"))
    records = leader.wal.last_lsn()
    followers: list[FollowerEngine] = []

    def catch_up():
        follower = FollowerEngine(node="replica")
        followers.append(follower)
        tailer = WalTailer(leader.wal, follower)
        while not tailer.caught_up():
            tailer.poll()
        return follower

    benchmark.group = "D8 follower apply throughput"
    benchmark.extra_info["txns"] = n_txns
    benchmark.extra_info["records"] = records
    benchmark.pedantic(catch_up, rounds=5, iterations=1)
    replica = followers[-1]
    assert replica.applied_lsn == leader.wal.durable_lsn
    assert replica.lag_lsn == 0
    rows = dict(replica.db.table(TABLE).committed_items())
    assert len(rows) == len(dict(leader.table(TABLE).committed_items()))
    for follower in followers:
        follower.close()
    leader.close()


@pytest.mark.parametrize("mode", ["leader", "replica"])
def test_replica_scan_offload(benchmark, mode, tmp_path):
    """Analytic sweep under write load: on the leader vs on a replica."""
    # 2 rows per txn -> SCAN_ROWS rows
    leader = _leader(SCAN_ROWS // 2, str(tmp_path / "leader.wal"))
    follower = FollowerEngine(node="replica")
    tailer = WalTailer(leader.wal, follower)
    tailer.poll()
    scan_db = leader if mode == "leader" else follower.db

    stop = threading.Event()

    def write_load():
        t = 0
        while not stop.is_set():
            txn = leader.begin()
            txn.update(TABLE, (t % SCAN_ROWS) + 1, {"v": t})
            txn.commit()
            if mode == "replica":
                tailer.poll()  # the replica's only write path
            t += 1

    writer = threading.Thread(target=write_load, daemon=True)
    writer.start()
    try:

        def sweep():
            with scan_db.snapshot() as snap:
                return snap.query(TABLE).count()

        benchmark.group = "D8 read-replica scan offload (vs leader-local)"
        benchmark.extra_info["arm"] = mode
        benchmark.extra_info["rows"] = SCAN_ROWS
        count = benchmark.pedantic(sweep, rounds=10, iterations=1,
                                   warmup_rounds=1)
    finally:
        stop.set()
        writer.join(timeout=10)
    assert count == SCAN_ROWS
    if mode == "replica":
        # The offloaded sweep really read shipped state, and the stream
        # kept flowing underneath it.
        assert follower.applied_lsn > 0
        tailer.poll()
        assert tailer.caught_up()
    follower.close()
    leader.close()


@pytest.mark.parametrize("n_txns", PROMOTE_TXNS)
def test_promotion_time(benchmark, n_txns, tmp_path):
    """Caught-up follower to writable leader (the in-engine failover)."""
    leader = _leader(n_txns, str(tmp_path / "leader.wal"))
    state: dict = {}

    def fresh_follower():
        follower = FollowerEngine(node="replica")
        tailer = WalTailer(leader.wal, follower)
        while not tailer.caught_up():
            tailer.poll()
        state["follower"] = follower
        return (), {}

    def promote():
        return state["follower"].promote()

    benchmark.group = "D8 promotion time"
    benchmark.extra_info["txns"] = n_txns
    benchmark.pedantic(promote, setup=fresh_follower, rounds=5,
                       iterations=1)
    promoted = state["follower"].promote()
    txn = promoted.begin()
    txn.insert(TABLE, {"k": "post-promotion", "v": 1})
    txn.commit()
    assert promoted.wal.last_lsn() > leader.wal.last_lsn()
    leader.close()
