"""C2 — Local and global undo/redo (§2/§3).

Undo in TeNDaX is metadata, not state rollback: operations are recorded
against character OIDs, so undoing is another edit transaction.  We
measure undo/redo cost against history length (expected: constant — the
record to invert is found directly), local undo under interleaved
multi-user histories, and the full undo-everything sweep.
"""

from __future__ import annotations

import pytest

from repro.collab import CollaborationServer

HISTORY_LENGTHS = [10, 100, 1000]


def _session_with_history(n_ops: int, users=("ana",)):
    server = CollaborationServer()
    for user in users:
        server.register_user(user)
    sessions = [server.connect(user) for user in users]
    handle = sessions[0].create_document("d", text="base ")
    for session in sessions[1:]:
        session.open(handle.doc)
    for i in range(n_ops):
        session = sessions[i % len(sessions)]
        session.insert(handle.doc, handle.length(), f"w{i} ")
    return server, sessions, handle


@pytest.mark.parametrize("n_ops", HISTORY_LENGTHS)
def test_undo_redo_cycle(benchmark, n_ops):
    """One local undo+redo pair on a history of ``n_ops`` operations."""
    server, (session,), handle = _session_with_history(n_ops)

    def cycle():
        session.undo(handle.doc)
        session.redo(handle.doc)

    benchmark.group = f"C2 undo/redo history={n_ops}"
    benchmark.extra_info["history"] = n_ops
    benchmark(cycle)


def test_shape_undo_constant_in_history():
    """Undo cost must not grow with history length."""
    import time

    def measure(n_ops: int) -> float:
        server, (session,), handle = _session_with_history(n_ops)
        start = time.perf_counter()
        for __ in range(30):
            session.undo(handle.doc)
            session.redo(handle.doc)
        return (time.perf_counter() - start) / 30

    small = measure(10)
    large = measure(1000)
    assert large < small * 8  # near-constant (generous noise margin)


def test_local_undo_interleaved_users(benchmark):
    """ana's local undo must skip ben's interleaved operations."""
    server, sessions, handle = _session_with_history(
        200, users=("ana", "ben"))
    ana = sessions[0]

    def cycle():
        ana.undo(handle.doc)
        ana.redo(handle.doc)

    benchmark.group = "C2 undo variants"
    benchmark(cycle)


def test_global_undo(benchmark):
    server, sessions, handle = _session_with_history(
        200, users=("ana", "ben"))
    ana = sessions[0]

    def cycle():
        ana.undo_global(handle.doc)
        ana.redo_global(handle.doc)

    benchmark.group = "C2 undo variants"
    benchmark(cycle)


def test_undo_delete_restores(benchmark):
    """Undoing deletions (undelete transactions)."""
    server, (session,), handle = _session_with_history(50)
    state = {"deleted": False}

    def cycle():
        if state["deleted"]:
            session.undo(handle.doc)     # undelete
            state["deleted"] = False
        else:
            session.delete(handle.doc, 0, 10)
            state["deleted"] = True

    benchmark.group = "C2 undo variants"
    benchmark(cycle)


def test_unwind_full_history():
    """Global undo can unwind an entire multi-user session correctly."""
    server, sessions, handle = _session_with_history(
        60, users=("ana", "ben", "cleo"))
    ana = sessions[0]
    for __ in range(60):
        ana.undo_global(handle.doc)
    assert handle.text() == "base "
    assert handle.check_integrity() == []
