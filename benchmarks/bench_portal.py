"""D9 — Changefeed-driven derived data at archival-portal scale.

The portal workload (:mod:`repro.workload.portal`) holds up to 100k
archived documents whose inverted index, dynamic folders and metadata
counters are all maintained through the commit changefeed.  Expected
shape: query-path latency is governed by the *result* size and the
*change* rate, never the corpus size — search and folder-listing p50
stay flat from 1k to 100k documents, and the consumers' own counters
prove that no query fell back to a full DOCUMENTS rescan.
"""

from __future__ import annotations

import random

import pytest

from repro.workload import (
    PortalSpec,
    build_portal,
    run_portal_traffic,
    upload_version,
)
from repro.workload.corpus import generate_text

PORTAL_SIZES = [1000, 100000]

#: Portals are expensive to ingest (the 100k corpus flows through the
#: changefeed batch by batch); the benches only read them, so one
#: instance per size is shared across the module.
_PORTAL_CACHE: dict = {}


def _portal(n_docs: int):
    if n_docs not in _PORTAL_CACHE:
        _PORTAL_CACHE[n_docs] = build_portal(PortalSpec(n_docs=n_docs))
    return _PORTAL_CACHE[n_docs]


@pytest.mark.parametrize("n_docs", PORTAL_SIZES)
def test_portal_search(benchmark, n_docs):
    """Warmed single-term search: impact-ordered top-k, flat in corpus."""
    portal = _portal(n_docs)
    portal.search.search("database", limit=10)  # warm outside the timer

    def search():
        return portal.search.search("database", limit=10)

    benchmark.group = f"D9 portal search n={n_docs}"
    benchmark.extra_info["system"] = "tendax-portal"
    results = benchmark(search)
    assert len(results) == 10


@pytest.mark.parametrize("n_docs", PORTAL_SIZES)
def test_portal_folder_listing(benchmark, n_docs):
    """First page of a dynamic folder: O(limit), not O(members)."""
    portal = _portal(n_docs)
    folder = portal.folders.folder("finals")

    def listing():
        return folder.contents(limit=50)

    benchmark.group = f"D9 folder listing n={n_docs}"
    benchmark.extra_info["system"] = "tendax-portal"
    page = benchmark(listing)
    assert len(page) == 50


def test_index_apply_throughput(benchmark):
    """One versioned re-upload absorbed end to end by the feed consumers.

    Upload + background drain against the 100k corpus: the apply cost is
    the changed document's, independent of the other 99 999.
    """
    portal = _portal(PORTAL_SIZES[-1])
    docs = portal.docs
    state = {"i": 0}

    def upload_and_drain():
        state["i"] += 1
        doc = docs[state["i"] % 500]
        text = generate_text(random.Random(state["i"]), "database", 20)
        upload_version(portal, doc, text, "ana")
        portal.worker.drain(max_rounds=50)

    benchmark.group = "D9 index apply"
    benchmark.extra_info["system"] = "tendax-portal"
    benchmark(upload_and_drain)
    assert portal.db.changefeed().max_lag() == 0


def test_shape_flat_latency_and_no_rescans():
    """The D9 acceptance shape, asserted from the consumers' counters.

    Zipf traffic against the 1k and 100k portals: search and listing
    p50 must stay within 2x across the 100x corpus growth (with a small
    absolute floor so µs-scale timer noise cannot fail the gate), no
    query may trigger an index rebuild or a folder rescan, and the feed
    must drain to zero lag afterwards.
    """
    small = run_portal_traffic(_portal(PORTAL_SIZES[0]), seed=11)
    large = run_portal_traffic(_portal(PORTAL_SIZES[-1]), seed=11)
    for report in (small, large):
        assert report.index_rebuilds == 0
        assert report.folder_rescans == 0
    assert large.search_p50 <= max(2 * small.search_p50, 500e-6), (
        f"search p50 not flat: {small.search_p50 * 1e6:.0f}us -> "
        f"{large.search_p50 * 1e6:.0f}us")
    assert large.listing_p50 <= max(2 * small.listing_p50, 50e-6), (
        f"listing p50 not flat: {small.listing_p50 * 1e6:.0f}us -> "
        f"{large.listing_p50 * 1e6:.0f}us")
    for n_docs in (PORTAL_SIZES[0], PORTAL_SIZES[-1]):
        assert _portal(n_docs).db.changefeed().max_lag() == 0
