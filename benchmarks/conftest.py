"""Shared fixtures and helpers for the benchmark suite.

Every benchmark module maps to one experiment row in DESIGN.md /
EXPERIMENTS.md (D1-D6 demo reproductions, C1-C3 claim measurements).
Benchmarks print the paper-style result rows via ``extra_info`` and the
terminal tables pytest-benchmark produces; shape assertions (who wins,
how it scales) are made inline so a regression fails loudly.

Observability pipeline: an autouse fixture wraps every bench in
``repro.obs.collecting()``, merging the metric registries of every
engine the bench creates (fixtures and inline) into the bench's
``extra_info["obs"]``.  At session end the per-bench snapshots are
written to ``BENCH_obs.json`` in the pytest rootdir, validated against
the schema in :mod:`benchmarks.report`.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.collab import CollaborationServer
from repro.db import Database
from repro.obs import collecting, compact_snapshot, merge_snapshots
from repro.text import DocumentStore

#: Per-bench metric entries accumulated for BENCH_obs.json.
_OBS_ENTRIES: list[dict] = []


@pytest.fixture(autouse=True)
def _bench_obs(request):
    """Capture metrics from every engine a bench creates.

    Autouse, and explicitly required by the engine fixtures below so the
    collector is installed before any fixture-created ``Database``.
    """
    with collecting() as engines:
        yield
    merged = merge_snapshots(obs.registry.snapshot() for obs in engines)
    if not merged:
        return
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is None or benchmark.stats is None:
        return
    compact = compact_snapshot(merged)
    benchmark.extra_info["obs"] = compact
    entry = {
        "name": request.node.name,
        "group": benchmark.group,
        "metrics": compact,
    }
    # A bench may attach a TelemetryStore.snapshot() (the D7 scrape
    # bench does); it rides into BENCH_obs.json as the v2 block.
    telemetry = benchmark.extra_info.pop("telemetry", None)
    if isinstance(telemetry, dict):
        entry["telemetry"] = telemetry
    _OBS_ENTRIES.append(entry)


def pytest_sessionfinish(session, exitstatus):
    """Write the schema-validated BENCH_obs.json next to the rootdir."""
    if not _OBS_ENTRIES:
        return
    from .report import build_obs_payload, validate_obs_payload
    payload = build_obs_payload(_OBS_ENTRIES)
    errors = validate_obs_payload(payload)
    path = session.config.rootpath / "BENCH_obs.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(f"observability snapshots: {path} "
                            f"({len(_OBS_ENTRIES)} benchmarks)")
        for error in errors:
            reporter.write_line(f"BENCH_obs invalid: {error}", red=True)
    if errors:
        session.exitstatus = 1


@pytest.fixture
def db(_bench_obs) -> Database:
    return Database("bench")


@pytest.fixture
def store(db) -> DocumentStore:
    # Write logging off: C1 measures the keystroke path itself.
    return DocumentStore(db, log_reads=False, log_writes=False)


@pytest.fixture
def server(_bench_obs) -> CollaborationServer:
    return CollaborationServer()


def make_text(n: int, seed: int = 7) -> str:
    """Deterministic n-character text."""
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz     "
    return "".join(rng.choice(alphabet) for __ in range(n))
