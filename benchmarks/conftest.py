"""Shared fixtures and helpers for the benchmark suite.

Every benchmark module maps to one experiment row in DESIGN.md /
EXPERIMENTS.md (D1-D6 demo reproductions, C1-C3 claim measurements).
Benchmarks print the paper-style result rows via ``extra_info`` and the
terminal tables pytest-benchmark produces; shape assertions (who wins,
how it scales) are made inline so a regression fails loudly.
"""

from __future__ import annotations

import random

import pytest

from repro.collab import CollaborationServer
from repro.db import Database
from repro.text import DocumentStore


@pytest.fixture
def db() -> Database:
    return Database("bench")


@pytest.fixture
def store(db) -> DocumentStore:
    # Write logging off: C1 measures the keystroke path itself.
    return DocumentStore(db, log_reads=False, log_writes=False)


@pytest.fixture
def server() -> CollaborationServer:
    return CollaborationServer()


def make_text(n: int, seed: int = 7) -> str:
    """Deterministic n-character text."""
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz     "
    return "".join(rng.choice(alphabet) for __ in range(n))

