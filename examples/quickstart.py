#!/usr/bin/env python3
"""Quickstart: collaborative editing against the TeNDaX database.

Two users connect to one collaboration server, edit the same document
concurrently, style it, copy-paste with lineage, and undo each other —
every action a real-time database transaction.

Run:  python examples/quickstart.py
"""

from repro import CollaborationServer, EditorClient


def main() -> None:
    # The server owns the database; text lives natively in its tables.
    server = CollaborationServer()
    server.register_user("ana")
    server.register_user("ben")

    # ana creates a document (a handful of INSERT transactions).
    ana = server.connect("ana", os_name="windows-xp")
    doc = ana.create_document("quickstart", text="Hello world")
    print(f"created {doc.doc} with text {doc.text()!r}")

    # ben connects from another "machine" and opens the same document.
    ben = server.connect("ben", os_name="linux")
    editor_ana = EditorClient(ana, doc.doc)
    editor_ben = EditorClient(ben, doc.doc)

    # Concurrent typing: each keystroke is a transaction; both editors
    # see each other's changes as soon as they are committed.
    editor_ana.move_end()
    editor_ana.type("!")
    editor_ben.move_to(5)
    editor_ben.type(",")
    print("ana sees:", editor_ana.text())
    print("ben sees:", editor_ben.text())
    assert editor_ana.text() == editor_ben.text()

    # Awareness: everyone's cursors, resolved against live state.
    print("cursors:", server.awareness.cursor_positions(editor_ana.handle))
    print("rendered:", editor_ana.render(show_cursors=True))

    # Collaborative layout: styles are rows; characters reference them.
    bold = server.styles.define_style("bold", {"bold": True}, "ana")
    editor_ana.select(0, 5)
    editor_ana.style_selection(bold)
    print("ansi:", editor_ben.render(ansi=True))

    # Copy & paste records character-level lineage automatically.
    editor_ben.select(7, 5)           # "world"
    editor_ben.copy()
    editor_ben.move_end()
    editor_ben.paste()
    print("after paste:", editor_ana.text())

    # Local undo: ben reverts *his* paste even though ana edited too.
    editor_ben.undo()
    print("after ben's undo:", editor_ana.text())

    # Who wrote what — per-character metadata, gathered automatically.
    print("authors:", doc.authors())
    meta = server.documents.meta(doc.doc)
    print(f"document size={meta['size']}, "
          f"last modified by {meta['last_modified_by']}")


if __name__ == "__main__":
    main()
