#!/usr/bin/env python3
"""Time travel: versioning, character-level diffs, and crash recovery.

§2 promises word processing "many of the database features (... recovery,
integrity ...)" plus versioning from the character-level metadata.  This
example tags versions while a document evolves, diffs and restores them,
then kills the database mid-keystroke and replays the WAL to show that
committed work survives a crash exactly.

Run:  python examples/time_travel.py
"""

import os
import tempfile

from repro import CollaborationServer, VersionManager
from repro.db import recover_file
from repro.text import DocumentStore, dbschema


def versioning_demo(server: CollaborationServer) -> None:
    print("=" * 64)
    print("Versioning: tag, diff, restore")
    print("=" * 64)
    session = server.connect("ana")
    doc = session.create_document(
        "design-notes", text="The system stores text in files.")
    versions = VersionManager(server.db)

    v1 = versions.tag(doc, "v1-initial", "ana")

    # A round of collaborative rework.
    ben = server.connect("ben")
    ben.open(doc.doc)
    ben.delete(doc.doc, 26, 5)               # "files"
    ben.insert(doc.doc, 26, "a database")
    session.insert(doc.doc, doc.length(), " Every char is a row.")
    v2 = versions.tag(doc, "v2-database", "ben")

    print("v1:", versions.text_at(v1))
    print("v2:", versions.text_at(v2))
    diff = versions.diff(v1, v2)
    print(f"diff v1 -> v2: +{len(diff.added)} chars, "
          f"-{len(diff.removed)} chars")

    # Restore — itself just an edit transaction (and hence undoable).
    result = versions.restore(doc, v1, "ana")
    print(f"restored v1 (deleted {result['deleted']}, "
          f"resurrected {result['restored']}): {doc.text()!r}")
    versions.restore(doc, v2, "ana")
    print(f"back to v2: {doc.text()!r}")
    print("history:",
          [v["name"] for v in versions.versions_of(doc.doc)])


def recovery_demo() -> None:
    print()
    print("=" * 64)
    print("Crash recovery: the WAL replays committed keystrokes")
    print("=" * 64)
    wal_path = os.path.join(tempfile.mkdtemp(prefix="tendax-"),
                            "wal.jsonl")
    server = CollaborationServer(wal_path=wal_path)
    server.register_user("ana")
    session = server.connect("ana")
    doc = session.create_document("fragile", text="every keystroke ")
    session.insert(doc.doc, doc.length(), "is durable. ")

    # A transaction that never commits: the crash catches it mid-flight.
    txn = server.db.begin()
    txn.insert(dbschema.CHARS, {
        "char": server.db.new_oid("char"), "doc": doc.doc, "ch": "X",
        "prev": None, "next": None, "author": "ana",
        "created_at": server.db.now(),
    })
    expected = doc.text()
    doc_oid = doc.doc
    server.db.close()        # CRASH — the in-flight transaction is lost
    print(f"crashed with text {expected!r} committed "
          f"and one uncommitted keystroke in flight")

    recovered_db = recover_file(wal_path)
    store = DocumentStore(recovered_db)
    recovered = store.handle(doc_oid)
    print(f"recovered text: {recovered.text()!r}")
    print(f"matches committed state: {recovered.text() == expected}")
    print(f"chain integrity: "
          f"{'OK' if recovered.check_integrity() == [] else 'BROKEN'}")
    # And the recovered database is immediately editable again.
    recovered.insert_text(recovered.length(), "Still works.", "ana")
    print(f"after post-recovery edit: {recovered.text()!r}")


def main() -> None:
    server = CollaborationServer()
    server.register_user("ana")
    server.register_user("ben")
    versioning_demo(server)
    recovery_demo()


if __name__ == "__main__":
    main()
