#!/usr/bin/env python3
"""The word-processing LAN-party (the paper's §3 headline demo).

Three editors on three simulated operating systems hammer one shared
document with a realistic operation mix — typing, deleting, layout,
copy-paste, cursor movement — while the database serialises everything
as real-time transactions.  Afterwards we verify convergence, inspect
awareness, exercise local and global undo, drop in an image and a table,
set access rights, and leave a margin note.

Run:  python examples/lan_party.py
"""

import statistics

from repro import CollaborationServer, EditorClient
from repro.workload import run_lan_party


def scripted_party() -> None:
    """A small scripted session showing each §3 feature explicitly."""
    print("=" * 64)
    print("Scripted LAN-party")
    print("=" * 64)
    server = CollaborationServer()
    for user in ("ana", "ben", "cleo"):
        server.register_user(user)

    ana = server.connect("ana", editor="tendax-swing", os_name="windows-xp")
    ben = server.connect("ben", editor="tendax-swing", os_name="linux")
    cleo = server.connect("cleo", editor="tendax-swing", os_name="macosx")

    shared = ana.create_document("party-minutes",
                                 text="Meeting notes:\n")
    editors = {
        "ana": EditorClient(ana, shared.doc),
        "ben": EditorClient(ben, shared.doc),
        "cleo": EditorClient(cleo, shared.doc),
    }
    print("participants:", server.awareness.participants(shared.doc))

    # -- concurrent editing ------------------------------------------------
    editors["ana"].move_end()
    editors["ana"].type("agenda point one. ")
    editors["ben"].move_end()
    editors["ben"].type("agenda point two. ")
    editors["cleo"].move_to(0)
    editors["cleo"].type("[DRAFT] ")
    texts = {user: e.text() for user, e in editors.items()}
    assert len(set(texts.values())) == 1, "editors diverged!"
    print("converged text:", texts["ana"].replace("\n", " / "))

    # -- collaborative layout -------------------------------------------------
    heading = server.styles.define_style(
        "heading", {"bold": True, "size": 16, "heading_level": 1}, "ana")
    editors["ana"].select(8, 14)            # "Meeting notes:"
    editors["ana"].style_selection(heading)
    print("styled runs:", shared.styled_runs()[:2], "...")

    # -- objects: table and image ----------------------------------------------
    table = server.objects.insert_table(shared, shared.length(), "ben",
                                        rows=2, cols=2)
    server.objects.set_cell(table, 0, 0, "topic", "ben")
    server.objects.set_cell(table, 0, 1, "owner", "cleo")  # two editors!
    server.objects.insert_image(shared, 0, "cleo", name="logo.png",
                                width=64, height=64)
    print("table:")
    print(server.objects.render_table(table))

    # -- local and global undo ---------------------------------------------------
    editors["ben"].move_end()
    editors["ben"].type("oops this is wrong ")
    editors["ben"].undo()                  # local: ben reverts himself
    editors["ana"].move_end()
    editors["ana"].type("ana's last word ")
    editors["cleo"].undo_global()          # global: cleo reverts ana
    assert "oops" not in editors["ana"].text()
    assert "last word" not in editors["ana"].text()
    print("undo verified (local + global)")

    # -- access rights ---------------------------------------------------------
    server.acl.protect_range(shared, 0, 8, "ana")   # freeze the "[DRAFT] "
    try:
        editors["ben"].move_to(0)
        editors["ben"].delete_forward(3)
    except Exception as exc:
        print("range protection enforced:", type(exc).__name__)

    # -- notes ----------------------------------------------------------------
    note = server.notes.add_note(shared, 10, "verify this point", "cleo")
    print("note context:", server.notes.anchor_context(note, 8))

    # -- awareness snapshot ------------------------------------------------------
    print("cursors:", server.awareness.cursor_positions(shared))
    print("recent activity:",
          [(e["user"], e["what"])
           for e in server.awareness.recent_activity(5)])


def simulated_party() -> None:
    """The full randomized party with convergence verification."""
    print()
    print("=" * 64)
    print("Simulated LAN-party (3 typists x 120 operations)")
    print("=" * 64)
    report = run_lan_party(rounds=120, seed=2006, measure_latency=True)
    print(f"participants : {', '.join(report.participants)}")
    print(f"operations   : {report.operations}")
    print(f"throughput   : {report.ops_per_second:,.0f} ops/s")
    print(f"final length : {report.final_length} chars")
    print(f"converged    : {report.converged}")
    print(f"chain intact : {report.chain_intact}")
    lat = sorted(report.op_latencies)
    print(f"op latency   : p50={statistics.median(lat) * 1000:.2f} ms, "
          f"p99={lat[int(len(lat) * 0.99) - 1] * 1000:.2f} ms")
    for user, stats in report.per_user.items():
        print(f"  {user:<5} typed={stats.chars_typed:<5} "
              f"deleted={stats.chars_deleted:<4} pastes={stats.pastes:<3} "
              f"styles={stats.style_ops}")


if __name__ == "__main__":
    scripted_party()
    simulated_party()
