#!/usr/bin/env python3
"""Business process definition and flow inside a document (§3, bullet 2).

A contract document gets a translate-then-verify workflow: the translation
task is assigned to a *role*, worked by whoever holds it, and the flow is
re-routed dynamically at run-time — including a task added while the
process is already running.

Run:  python examples/document_workflow.py
"""

from repro import CollaborationServer, EditorClient, TaskList, WorkflowManager


def main() -> None:
    server = CollaborationServer()
    server.register_user("ana")                      # project lead
    server.register_user("ben")                      # verifier
    server.register_user("cleo", roles=("translators",))
    server.register_user("dan", roles=("translators",))

    # The document under process.
    ana = server.connect("ana")
    contract = ana.create_document(
        "supply-contract",
        text="§1 Der Lieferant liefert monatlich.\n§2 Zahlung in 30 Tagen.\n",
    )

    workflow = WorkflowManager(server.db, server.principals)
    tasks = TaskList(workflow)

    # -- define the process (anchored to document parts) ---------------------
    process = workflow.define_process(contract.doc, "translate+verify", "ana")
    translate = workflow.add_task(
        process, "translate §1", "translators", "ana",
        kind="translation",
        description="Translate the first clause to English",
        start_char=contract.char_oid_at(0),
        end_char=contract.char_oid_at(34),
    )
    verify = workflow.add_task(
        process, "verify translation", "ben", "ana",
        kind="verification", depends_on=[translate],
    )
    workflow.start_process(process, "ana")
    print("process started")
    print(tasks.render_inbox("cleo"))
    print(tasks.render_inbox("dan"))
    print(tasks.render_inbox("ben"), "(waits for translation)")
    print()

    # -- cleo (a translator) claims and works the task ------------------------
    workflow.start_task(translate, "cleo")
    cleo = server.connect("cleo")
    editor = EditorClient(cleo, contract.doc)
    editor.move_to(35)
    editor.type("\n[EN] The supplier delivers monthly.")
    workflow.complete_task(translate, "cleo")
    print("cleo translated; verification becomes ready:")
    print(tasks.render_inbox("ben"))
    print()

    # -- dynamic behaviour: a task added and re-routed at run-time -----------
    polish = workflow.add_task(
        process, "polish English wording", "ben", "ana",
        kind="editing", depends_on=[verify],
    )
    print("added 'polish' task at runtime (waits on verify)")
    workflow.route_task(polish, "translators", "ben")
    print("...and re-routed it from ben to the translators role")

    workflow.start_task(verify, "ben")
    workflow.complete_task(verify, "ben")
    print(tasks.render_inbox("dan"))

    workflow.start_task(polish, "dan")
    workflow.complete_task(polish, "dan")

    # -- final state ---------------------------------------------------------
    status = workflow.process_status(process)
    print()
    print(f"process state: {status['state']}, tasks: {status['tasks']}")
    print("task audit trail for 'polish':")
    for event in workflow.task_info(polish)["history"]:
        extras = {k: v for k, v in event.items()
                  if k not in ("event", "at")}
        print(f"  - {event['event']:<10} {extras}")
    print()
    print("final document:")
    print(contract.text())


if __name__ == "__main__":
    main()
