#!/usr/bin/env python3
"""The knowledge portal: dynamic folders, lineage, mining and search.

§3's second demo step: "we demonstrate how one can use the data and meta
data to create dynamic folders, visualize data provenance, carry out
visual- and text mining and support sophisticated search functionality."

We populate a server with a topical corpus plus reading and copy-paste
activity, then drive all four metadata consumers.

Run:  python examples/knowledge_portal.py
"""

from repro import LineageGraph, SearchEngine, VisualMiner
from repro.folders import (
    AccessedBy,
    CreatorIs,
    DynamicFolderManager,
    SizeAtLeast,
    StateIs,
)
from repro.lineage import ascii_lineage
from repro.mining import similar_documents, top_terms
from repro.workload import build_knowledge_base

DAY = 86400.0


def main() -> None:
    kb = build_knowledge_base(n_docs=24, n_reads=60, n_pastes=14, seed=2006)
    server = kb.server
    db = server.db
    names = {h.doc: server.documents.meta(h.doc)["name"]
             for h in kb.handles}

    # ------------------------------------------------------------------
    # Dynamic folders
    # ------------------------------------------------------------------
    print("=" * 64)
    print("Dynamic folders")
    print("=" * 64)
    folders = DynamicFolderManager(db)
    ana_finals = folders.create_folder(
        "ana's finals", CreatorIs("ana") & StateIs("final"))
    ben_read = folders.create_folder(
        "ben read this week", AccessedBy("ben", "read", within=7 * DAY))
    big_docs = folders.create_folder("big documents", SizeAtLeast(400))
    for folder in folders.folders():
        print(f"  {folder.name:<22} {len(folder):>3} docs  e.g. "
              f"{[names[d] for d in folder.contents()[:3]]}")

    # Live refresh: a new matching document appears instantly.
    session = server.connect("ana")
    fresh = session.create_document("fresh-final", text="x" * 500)
    server.documents.set_state(fresh.doc, "final", "ana")
    print(f"  -> created 'fresh-final'; ana's finals now has "
          f"{len(ana_finals)} docs, big documents {len(big_docs)}")

    # ------------------------------------------------------------------
    # Data lineage (Fig. 1)
    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("Data lineage (Fig. 1)")
    print("=" * 64)
    lineage = LineageGraph(db)
    graph = lineage.build()
    print(f"lineage graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} copy edges")
    # Show the document with the richest provenance.
    most_pasted = max(kb.handles,
                      key=lambda h: len(lineage.sources_of(h.doc)))
    print(ascii_lineage(lineage, most_pasted.doc))
    fraction = lineage.copied_fraction(most_pasted.doc)
    print(f"copied fraction: {fraction:.0%}")

    # ------------------------------------------------------------------
    # Visual mining (Fig. 2)
    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("Visual mining (Fig. 2)")
    print("=" * 64)
    miner = VisualMiner(db, seed=2006)
    doc_map = miner.build_map(n_clusters=4)
    print("document space:", doc_map.stats())
    print(doc_map.ascii_scatter(width=56, height=14))
    print("navigate by creator:")
    for creator, points in sorted(doc_map.group_by("creator").items()):
        print(f"  {creator:<6} {len(points):>3} docs")
    example = doc_map.points[0]
    print(f"top terms of {example.name!r}: {example.top_terms}")
    similar = similar_documents(doc_map.model, example.doc, 3)
    print("most similar:",
          [(names.get(d, str(d)), round(s, 2)) for d, s in similar])

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("Search")
    print("=" * 64)
    engine = SearchEngine(db)
    for query, ranking in [
        ("database transaction", "relevance"),
        ("database transaction creator:ana", "relevance"),
        ("", "most_cited"),
        ("", "most_read"),
    ]:
        label = query or "(all documents)"
        print(f"--- {label}  [rank: {ranking}]")
        results = engine.search(query, ranking=ranking, limit=3)
        print(engine.render_results(results))


if __name__ == "__main__":
    main()
