#!/usr/bin/env python3
"""Trace-export smoke check: run the traced duet, validate the export.

CI's guard on the causal-tracing pipeline.  Runs the fixed two-editor
scenario (plus one seeded held/reordered-delivery variant), exports the
traces as Chrome trace-event JSON and fails on:

* structural problems in the payload (see
  :func:`repro.obs.validate_chrome_trace`);
* a keystroke trace missing any leg of the causal chain
  (``collab.op`` → ``txn`` → ``wal.fsync`` / ``collab.dispatch`` →
  ``collab.deliver`` → ``collab.apply``);
* unbalanced spans (anything still open when the scenario is done).

Usage::

    PYTHONPATH=src python tools/trace_smoke.py [--out trace.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

#: Every keystroke trace must contain this causal chain.
CHAIN = ("collab.op", "txn", "wal.fsync", "collab.dispatch",
         "collab.deliver", "collab.apply")


def run_scenario(hold_seed: int | None):
    from repro.workload import run_traced_duet

    faults = None
    if hold_seed is not None:
        from repro.faults import FaultInjector, FaultPlan
        faults = FaultInjector(FaultPlan.delivery_only(hold_seed))
    fd, wal_path = tempfile.mkstemp(suffix=".wal")
    os.close(fd)
    try:
        return run_traced_duet(faults=faults, wal_path=wal_path)
    finally:
        os.unlink(wal_path)


def check(hold_seed: int | None, out: str | None) -> list[str]:
    from repro.obs import chrome_trace, validate_chrome_trace

    label = "direct" if hold_seed is None else f"held(seed={hold_seed})"
    server, buffer = run_scenario(hold_seed)
    problems = []
    open_spans = server.db.obs.tracer.open_spans()
    if open_spans:
        problems.append(f"{label}: {len(open_spans)} span(s) never finished")
    traces = buffer.traces()
    keystrokes = [t for t in traces
                  if t.root is not None and t.root.name == "collab.op"]
    if not keystrokes:
        problems.append(f"{label}: no keystroke traces recorded")
    for trace in keystrokes:
        names = {span.name for span in trace.spans}
        missing = [name for name in CHAIN if name not in names]
        if missing:
            problems.append(
                f"{label}: trace {trace.trace_id} is missing causal "
                f"leg(s) {missing}")
    payload = chrome_trace(traces)
    problems.extend(f"{label}: {e}" for e in validate_chrome_trace(payload))
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"{label}: wrote {len(traces)} traces to {out}")
    print(f"{label}: {len(keystrokes)} keystroke traces, "
          f"{sum(len(t) for t in traces)} spans")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="also write the direct run's Chrome trace JSON")
    parser.add_argument("--hold-seed", type=int, default=1311,
                        help="seed for the held/reordered delivery variant")
    args = parser.parse_args(argv)
    problems = check(None, args.out) + check(args.hold_seed, None)
    for problem in problems:
        print(f"trace smoke FAILED: {problem}", file=sys.stderr)
    if not problems:
        print("trace smoke OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
