#!/usr/bin/env python3
"""Nightly torture driver: elevated fault schedules + soak, seeds exported.

Runs the deterministic fault-injection and crash-torture suites at an
elevated schedule count (``--torture-schedules 200`` vs. the tier-1
default of 25), the MVCC snapshot-isolation property suite at its
nightly Hypothesis budget (``MVCC_PROPERTY_PROFILE=nightly``: 300
examples / 60 stateful steps vs. the tier-1 40 / 30), then the newsroom
soak test over several master seeds.
Every torture test is parameterised by its seed, and every
:class:`~repro.faults.plan.FaultPlan` is derived deterministically from
that seed — so a failing *seed* is a complete reproduction.

On failure the driver parses the junit reports and writes
``torture_failures.json``: one entry per failing node with the extracted
seed and the exact local repro command.  The nightly workflow uploads
that file (plus the junit XML) as the failure artifact.

Usage::

    PYTHONPATH=src python tools/torture_nightly.py --schedules 200
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import xml.etree.ElementTree as ET

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Suites whose tests take ``crash_seed`` (scaled by --torture-schedules).
TORTURE_PATHS = (
    "tests/test_fault_injection.py",
    "tests/test_crash_torture.py",
    "tests/test_repl_torture.py",
    "tests/test_db_concurrency_stress.py",
)

SOAK_PATH = "tests/test_soak_newsroom.py"

#: Hypothesis suites that scale via ``MVCC_PROPERTY_PROFILE=nightly``
#: (300 examples / 60 stateful steps vs. the tier-1 budget of 40 / 30).
#: Failures are reproducible from the printed falsifying example, not a
#: seed, so these get their own junit report instead of seed extraction.
PROPERTY_PATHS = ("tests/test_mvcc_property.py",)

#: ``test_name[17]`` or ``test_name[17-foo]`` — the leading int param of
#: a torture node is its crash seed (see tests/conftest.py).
_SEED_IN_ID = re.compile(r"\[(\d+)")


def _pytest(args: list[str], junit: str,
            extra_env: dict[str, str] | None = None) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if extra_env:
        env.update(extra_env)
    cmd = [sys.executable, "-m", "pytest", "-q",
           f"--junitxml={junit}", *args]
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, cwd=REPO, env=env).returncode


def _failures_from_junit(junit: str, repro_flag: str) -> list[dict]:
    """Failing nodes (+ extracted seeds) from one junit XML report."""
    if not os.path.exists(junit):
        return [{"nodeid": f"<missing junit report {junit}>",
                 "seed": None, "repro": None}]
    failures = []
    for case in ET.parse(junit).getroot().iter("testcase"):
        if case.find("failure") is None and case.find("error") is None:
            continue
        name = case.get("name", "")
        nodeid = f"{case.get('classname', '')}::{name}"
        match = _SEED_IN_ID.search(name)
        seed = int(match.group(1)) if match else None
        repro = None
        if seed is not None:
            repro = (f"PYTHONPATH=src python -m pytest "
                     f"'{case.get('file', '')}' -k '{name}' {repro_flag}")
        failures.append({"nodeid": nodeid, "seed": seed, "repro": repro})
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schedules", type=int, default=200,
                        help="fault schedules per torture test "
                             "(nightly default: 200)")
    parser.add_argument("--soak-seeds", default="1,2,3",
                        help="comma-separated master seeds for the "
                             "newsroom soak runs")
    parser.add_argument("--out", default="torture_failures.json",
                        help="failure-artifact path (written only when "
                             "something failed)")
    args = parser.parse_args(argv)

    failures: list[dict] = []
    status = 0

    torture_junit = os.path.join(REPO, "torture_report.xml")
    rc = _pytest([*TORTURE_PATHS,
                  "--torture-schedules", str(args.schedules)],
                 torture_junit)
    if rc:
        status = 1
        failures += _failures_from_junit(
            torture_junit,
            f"--torture-schedules {args.schedules}")

    property_junit = os.path.join(REPO, "property_report.xml")
    rc = _pytest(list(PROPERTY_PATHS), property_junit,
                 extra_env={"MVCC_PROPERTY_PROFILE": "nightly"})
    if rc:
        status = 1
        for failure in _failures_from_junit(property_junit, ""):
            failure["seed"] = None
            failure["repro"] = (
                f"MVCC_PROPERTY_PROFILE=nightly PYTHONPATH=src "
                f"python -m pytest {' '.join(PROPERTY_PATHS)} "
                f"-k '{failure['nodeid'].rsplit('::', 1)[-1]}'")
            failures.append(failure)

    for soak_seed in [int(s) for s in args.soak_seeds.split(",") if s]:
        soak_junit = os.path.join(REPO, f"soak_report_{soak_seed}.xml")
        rc = _pytest([SOAK_PATH, "--soak-seed", str(soak_seed)], soak_junit)
        if rc:
            status = 1
            for failure in _failures_from_junit(
                    soak_junit, f"--soak-seed {soak_seed}"):
                failure["seed"] = soak_seed
                failure["repro"] = (f"PYTHONPATH=src python -m pytest "
                                    f"{SOAK_PATH} --soak-seed {soak_seed}")
                failures.append(failure)

    if failures:
        payload = {
            "schedules": args.schedules,
            "soak_seeds": args.soak_seeds,
            "failures": failures,
        }
        out = os.path.join(REPO, args.out)
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"{len(failures)} failing node(s); seeds written to {out}",
              file=sys.stderr)
    else:
        print(f"torture x{args.schedules} + property(nightly) + soak: "
              f"all green")
    return status


if __name__ == "__main__":
    sys.exit(main())
