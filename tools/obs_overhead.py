#!/usr/bin/env python3
"""Measure the observability layer's overhead on the C1 keystroke path.

Replays the C1 per-keystroke workload (mid-document ``insert_after`` on
a 2000-char document) against two engines:

* **enabled** — the default ``Database`` (live metrics registry);
* **disabled** — ``Database(obs=Observability(enabled=False))``, where
  every instrumented site hits the null-registry fast path.

Prints per-round medians and the relative overhead.  The PR acceptance
bar is <10%; docs/OBSERVABILITY.md quotes the measured number.

Usage::

    PYTHONPATH=src python tools/obs_overhead.py [rounds] [keystrokes]
"""

from __future__ import annotations

import random
import statistics
import sys
from time import perf_counter

from repro.db import Database
from repro.obs import Observability
from repro.text import DocumentStore

DOC_SIZE = 2000


def make_text(n: int, seed: int = 7) -> str:
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz     "
    return "".join(rng.choice(alphabet) for __ in range(n))


def run_round(enabled: bool, keystrokes: int) -> float:
    """Median per-keystroke latency for one fresh engine."""
    db = Database("ovh", obs=Observability(enabled=enabled))
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(DOC_SIZE))
    anchor = handle.char_oid_at(DOC_SIZE // 2)
    samples = []
    for __ in range(keystrokes):
        t0 = perf_counter()
        handle.insert_after(anchor, "x", "ana")
        samples.append(perf_counter() - t0)
    return statistics.median(samples)


def main(argv: list[str]) -> int:
    rounds = int(argv[1]) if len(argv) > 1 else 7
    keystrokes = int(argv[2]) if len(argv) > 2 else 400
    results: dict[bool, list[float]] = {True: [], False: []}
    # Interleave rounds so drift (thermal, page cache) hits both arms.
    for i in range(rounds):
        for enabled in (True, False) if i % 2 == 0 else (False, True):
            results[enabled].append(run_round(enabled, keystrokes))
    on = statistics.median(results[True])
    off = statistics.median(results[False])
    overhead = (on - off) / off * 100.0
    print(f"C1 keystroke, doc={DOC_SIZE} chars, "
          f"{rounds} rounds x {keystrokes} keystrokes")
    print(f"  obs enabled : {on * 1e6:8.2f} us/keystroke (median)")
    print(f"  obs disabled: {off * 1e6:8.2f} us/keystroke (median)")
    print(f"  overhead    : {overhead:+.1f}%")
    return 0 if overhead < 10.0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
