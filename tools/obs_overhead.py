#!/usr/bin/env python3
"""Measure the observability layer's overhead on the hot editing paths.

Replays two workloads against engines with observability on and off:

* **C1 keystroke** — mid-document ``insert_after`` on a 2000-char
  document, straight against the store (no collab layer).  This is the
  path the <10% acceptance bar applies to; docs/OBSERVABILITY.md quotes
  the measured number.
* **collab keystroke** — the same keystroke through a two-session
  collaboration server, so the cost of causal-context propagation
  (trace-id stamping on notification envelopes, dispatch/deliver/apply
  span sites) is covered too.  With observability off every one of
  those sites must hit the null fast path.

The **enabled** arm uses the default ``Database`` (live metrics
registry, tracer with no sinks); **disabled** passes
``Observability(enabled=False)`` so every instrumented site hits the
null-registry/null-span fast path.

Usage::

    PYTHONPATH=src python tools/obs_overhead.py [rounds] [keystrokes]
"""

from __future__ import annotations

import random
import statistics
import sys
from time import perf_counter

from repro.collab import CollaborationServer, EditorClient
from repro.db import Database
from repro.obs import Observability
from repro.text import DocumentStore

DOC_SIZE = 2000


def make_text(n: int, seed: int = 7) -> str:
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz     "
    return "".join(rng.choice(alphabet) for __ in range(n))


def run_round_store(enabled: bool, keystrokes: int) -> float:
    """Median per-keystroke latency against a fresh bare engine (C1)."""
    db = Database("ovh", obs=Observability(enabled=enabled))
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("doc", "ana", text=make_text(DOC_SIZE))
    anchor = handle.char_oid_at(DOC_SIZE // 2)
    samples = []
    for __ in range(keystrokes):
        t0 = perf_counter()
        handle.insert_after(anchor, "x", "ana")
        samples.append(perf_counter() - t0)
    return statistics.median(samples)


def run_round_collab(enabled: bool, keystrokes: int) -> float:
    """Median per-keystroke latency through a two-session server."""
    db = Database("ovh", obs=Observability(enabled=enabled))
    server = CollaborationServer(db)
    server.register_user("ana")
    server.register_user("ben")
    ana = server.connect("ana")
    shared = ana.create_document("doc", text=make_text(DOC_SIZE))
    ben = server.connect("ben")
    active = EditorClient(ana, shared.doc)
    EditorClient(ben, shared.doc)
    active.move_to(DOC_SIZE // 2)
    samples = []
    for __ in range(keystrokes):
        t0 = perf_counter()
        active.type("x")
        samples.append(perf_counter() - t0)
    return statistics.median(samples)


def measure(run_round, rounds: int, keystrokes: int) -> tuple[float, float]:
    results: dict[bool, list[float]] = {True: [], False: []}
    # Interleave rounds so drift (thermal, page cache) hits both arms.
    for i in range(rounds):
        for enabled in (True, False) if i % 2 == 0 else (False, True):
            results[enabled].append(run_round(enabled, keystrokes))
    return (statistics.median(results[True]),
            statistics.median(results[False]))


def report(label: str, on: float, off: float) -> float:
    overhead = (on - off) / off * 100.0
    print(f"{label}")
    print(f"  obs enabled : {on * 1e6:8.2f} us/keystroke (median)")
    print(f"  obs disabled: {off * 1e6:8.2f} us/keystroke (median)")
    print(f"  overhead    : {overhead:+.1f}%")
    return overhead


def main(argv: list[str]) -> int:
    rounds = int(argv[1]) if len(argv) > 1 else 7
    keystrokes = int(argv[2]) if len(argv) > 2 else 400
    print(f"doc={DOC_SIZE} chars, {rounds} rounds x {keystrokes} keystrokes")
    on, off = measure(run_round_store, rounds, keystrokes)
    c1 = report("C1 keystroke (store path)", on, off)
    on, off = measure(run_round_collab, rounds, keystrokes)
    report("collab keystroke (two sessions, causal envelopes)", on, off)
    # The acceptance bar is on the C1 path; the collab number is quoted
    # in docs/OBSERVABILITY.md for context.
    return 0 if c1 < 10.0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
