#!/usr/bin/env python3
"""Smoke-bench: one cheap benchmark per experiment group, obs-validated.

Runs a minimal slice of the benchmark suite (the cheapest node from each
C*/D* experiment group) with GC disabled, then validates the emitted
``BENCH_obs.json`` against the schema in :mod:`benchmarks.report` with
``require_core=True`` — so CI fails on:

* an invalid or missing snapshot payload (pipeline regression);
* a metric name outside the catalogue (undocumented metric);
* a required core metric missing from every bench (name regression —
  somebody renamed or dropped ``txn.begun`` & co).

Usage::

    PYTHONPATH=src python tools/smoke_bench.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The cheapest benchmark node from each experiment group.
SMOKE_NODES = (
    "benchmarks/bench_editing_transactions.py::test_keystroke_tendax[500]",
    "benchmarks/bench_undo_redo.py::test_undo_redo_cycle[10]",
    "benchmarks/bench_recovery_security.py::test_recovery_replay[100]",
    "benchmarks/bench_versioning.py::test_tag_version[500]",
    "benchmarks/bench_collaborative_editing.py::test_party_throughput[1]",
    "benchmarks/bench_collaborative_editing.py::test_replication_visibility[2]",
    "benchmarks/bench_workflow.py::test_task_state_transition",
    "benchmarks/bench_dynamic_folders.py::test_event_driven_update[25]",
    "benchmarks/bench_lineage.py::test_build_lineage_graph[10]",
    "benchmarks/bench_visual_mining.py::test_feature_extraction",
    "benchmarks/bench_search.py::test_indexed_content_search[50]",
)


def run_smoke() -> int:
    obs_path = os.path.join(REPO, "BENCH_obs.json")
    if os.path.exists(obs_path):
        os.remove(obs_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "pytest", *SMOKE_NODES, "-q",
           "--benchmark-only", "--benchmark-disable-gc",
           "--benchmark-warmup=off"]
    proc = subprocess.run(cmd, cwd=REPO, env=env)
    if proc.returncode != 0:
        print("smoke benchmarks failed", file=sys.stderr)
        return 1
    return validate(obs_path)


def validate(obs_path: str) -> int:
    sys.path.insert(0, REPO)
    sys.path.insert(0, os.path.join(REPO, "src"))
    from benchmarks.report import validate_obs_payload

    if not os.path.exists(obs_path):
        print("BENCH_obs.json was not emitted", file=sys.stderr)
        return 1
    with open(obs_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    errors = validate_obs_payload(payload, require_core=True)
    if errors:
        for error in errors:
            print(f"BENCH_obs invalid: {error}", file=sys.stderr)
        return 1
    names = {n for b in payload["benchmarks"] for n in b["metrics"]}
    print(f"BENCH_obs.json valid: {len(payload['benchmarks'])} benchmarks, "
          f"{len(names)} distinct metrics")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
