#!/usr/bin/env python3
"""Smoke-bench: one cheap benchmark per experiment group, obs-validated,
with a perf-trend gate.

Runs a minimal slice of the benchmark suite (the cheapest node from each
C*/D* experiment group) with GC disabled, then validates the emitted
``BENCH_obs.json`` against the schema in :mod:`benchmarks.report` with
``require_core=True`` — so CI fails on:

* an invalid or missing snapshot payload (pipeline regression);
* a metric name outside the catalogue (undocumented metric);
* a required core metric missing from every bench (name regression —
  somebody renamed or dropped ``txn.begun`` & co).

On top of the validity checks, a **perf-trend gate**: the medians of a
few headline nodes (C1 keystroke, group-commit multi-writer, replication
visibility) are compared against the committed baseline in
``BENCH_trend.json``.  Only a blow-up beyond ``BENCH_TREND_MAX_RATIO``
(default 2.0 — generous on purpose, CI runners are noisy) fails the
gate; ordinary jitter passes.

Finally an **SLO burn-rate gate**: a deterministic synthetic scenario
(simulated clock, fixed latency stream) is driven through the telemetry
pipeline and ``repro.obs.slo`` — the clean stream must leave every
shipped SLO green, and the same scenario with a latency burn injected
after t=60s must breach (a self-check that the gate can actually fire).
``--slo-burn`` runs the burned scenario *as* the gate, so CI can assert
the failure path end to end (exit code 1).

Last, a **derived-staleness gate**: traffic against a small changefeed-
maintained portal must leave every consumer at ``feed.lag`` 0 with zero
full rebuilds or rescans on the query path.

Usage::

    PYTHONPATH=src python tools/smoke_bench.py
    PYTHONPATH=src python tools/smoke_bench.py --record-baseline
    PYTHONPATH=src python tools/smoke_bench.py --slo-burn  # must fail
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The cheapest benchmark node from each experiment group.
SMOKE_NODES = (
    "benchmarks/bench_editing_transactions.py::test_keystroke_tendax[500]",
    "benchmarks/bench_editing_transactions.py::test_group_commit_multiwriter",
    "benchmarks/bench_editing_transactions.py"
    "::test_snapshot_scan_interference",
    "benchmarks/bench_editing_transactions.py"
    "::test_cache_remote_splice_chunked[256000]",
    "benchmarks/bench_editing_transactions.py"
    "::test_cache_remote_splice_flat[256000]",
    "benchmarks/bench_undo_redo.py::test_undo_redo_cycle[10]",
    "benchmarks/bench_recovery_security.py::test_recovery_replay[100]",
    "benchmarks/bench_versioning.py::test_tag_version[500]",
    "benchmarks/bench_collaborative_editing.py::test_party_throughput[1]",
    "benchmarks/bench_collaborative_editing.py::test_replication_visibility[2]",
    "benchmarks/bench_workflow.py::test_task_state_transition",
    "benchmarks/bench_dynamic_folders.py::test_event_driven_update[25]",
    "benchmarks/bench_lineage.py::test_build_lineage_graph[10]",
    "benchmarks/bench_visual_mining.py::test_feature_extraction",
    "benchmarks/bench_search.py::test_indexed_content_search[50]",
    "benchmarks/bench_net.py::test_connect_storm[8]",
    "benchmarks/bench_net.py::test_fanout_latency[2]",
    "benchmarks/bench_net.py::test_stats_scrape[32]",
    "benchmarks/bench_repl.py::test_follower_apply_throughput[300]",
    "benchmarks/bench_repl.py::test_replica_scan_offload[leader]",
    "benchmarks/bench_repl.py::test_replica_scan_offload[replica]",
    "benchmarks/bench_repl.py::test_promotion_time[300]",
    "benchmarks/bench_portal.py::test_portal_search[100000]",
    "benchmarks/bench_portal.py::test_portal_folder_listing[100000]",
    "benchmarks/bench_portal.py::test_index_apply_throughput",
)

#: Headline nodes whose medians are tracked in BENCH_trend.json.
TREND_NODES = {
    "benchmarks/bench_editing_transactions.py::test_keystroke_tendax[500]":
        "c1_keystroke_500",
    "benchmarks/bench_editing_transactions.py::test_group_commit_multiwriter":
        "group_commit_multiwriter",
    "benchmarks/bench_editing_transactions.py"
    "::test_snapshot_scan_interference":
        "c1_snapshot_scan_interference",
    "benchmarks/bench_editing_transactions.py"
    "::test_cache_remote_splice_chunked[256000]":
        "c1_cache_splice_chunked_256k",
    "benchmarks/bench_editing_transactions.py"
    "::test_cache_remote_splice_flat[256000]":
        "c1_cache_splice_flat_256k",
    "benchmarks/bench_collaborative_editing.py::test_replication_visibility[2]":
        "c3_replication_visibility_2",
    "benchmarks/bench_net.py::test_connect_storm[8]":
        "d7_connect_storm_8",
    "benchmarks/bench_net.py::test_fanout_latency[2]":
        "d7_fanout_latency_2",
    "benchmarks/bench_net.py::test_stats_scrape[32]":
        "d7_stats_scrape_32",
    "benchmarks/bench_repl.py::test_follower_apply_throughput[300]":
        "d8_follower_apply_300",
    "benchmarks/bench_repl.py::test_replica_scan_offload[replica]":
        "d8_replica_scan_offload",
    "benchmarks/bench_repl.py::test_promotion_time[300]":
        "d8_promotion_300",
    "benchmarks/bench_portal.py::test_portal_search[100000]":
        "d9_portal_search_100k",
    "benchmarks/bench_portal.py::test_portal_folder_listing[100000]":
        "d9_folder_listing_100k",
    "benchmarks/bench_portal.py::test_index_apply_throughput":
        "d9_index_apply",
}

TREND_PATH = os.path.join(REPO, "BENCH_trend.json")
SMOKE_JSON = os.path.join(REPO, "BENCH_smoke.json")


def run_smoke(record_baseline: bool = False) -> int:
    obs_path = os.path.join(REPO, "BENCH_obs.json")
    if os.path.exists(obs_path):
        os.remove(obs_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "pytest", *SMOKE_NODES, "-q",
           "--benchmark-only", "--benchmark-disable-gc",
           "--benchmark-warmup=off", f"--benchmark-json={SMOKE_JSON}"]
    proc = subprocess.run(cmd, cwd=REPO, env=env)
    if proc.returncode != 0:
        print("smoke benchmarks failed", file=sys.stderr)
        return 1
    status = validate(obs_path)
    if status:
        return status
    status = check_trend(record_baseline=record_baseline)
    if status:
        return status
    status = check_slo()
    if status:
        return status
    return check_staleness()


def validate(obs_path: str) -> int:
    sys.path.insert(0, REPO)
    sys.path.insert(0, os.path.join(REPO, "src"))
    from benchmarks.report import validate_obs_payload

    if not os.path.exists(obs_path):
        print("BENCH_obs.json was not emitted", file=sys.stderr)
        return 1
    with open(obs_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    errors = validate_obs_payload(payload, require_core=True)
    if errors:
        for error in errors:
            print(f"BENCH_obs invalid: {error}", file=sys.stderr)
        return 1
    names = {n for b in payload["benchmarks"] for n in b["metrics"]}
    print(f"BENCH_obs.json valid: {len(payload['benchmarks'])} benchmarks, "
          f"{len(names)} distinct metrics")
    return 0


def _load_medians(smoke_json: str) -> dict[str, float]:
    """Median seconds per trend key from a pytest-benchmark JSON dump."""
    with open(smoke_json, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    medians: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        key = TREND_NODES.get(bench.get("fullname", ""))
        if key is not None:
            medians[key] = bench["stats"]["median"]
    return medians


def check_trend(*, record_baseline: bool = False,
                smoke_json: str = SMOKE_JSON,
                trend_path: str = TREND_PATH) -> int:
    """Gate the headline medians against the committed baseline.

    ``record_baseline`` rewrites ``BENCH_trend.json`` from the current
    run instead of gating (used after intentional perf changes).  The
    tolerated ratio comes from ``BENCH_TREND_MAX_RATIO`` (default 2.0):
    the gate only catches a node getting *several times* slower — real
    regressions, not runner noise.
    """
    if not os.path.exists(smoke_json):
        print("benchmark JSON dump missing; cannot check trend",
              file=sys.stderr)
        return 1
    medians = _load_medians(smoke_json)
    missing = sorted(set(TREND_NODES.values()) - set(medians))
    if missing:
        print(f"trend nodes missing from the run: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    if record_baseline:
        baseline = {
            "comment": "perf-trend baselines (median seconds); regenerate "
                       "with: PYTHONPATH=src python tools/smoke_bench.py "
                       "--record-baseline",
            "max_ratio_default": 2.0,
            "medians": {k: round(v, 9) for k, v in sorted(medians.items())},
        }
        with open(trend_path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"recorded perf-trend baseline: {trend_path}")
        return 0
    if not os.path.exists(trend_path):
        print("BENCH_trend.json missing; record a baseline first "
              "(--record-baseline)", file=sys.stderr)
        return 1
    with open(trend_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    max_ratio = float(os.environ.get(
        "BENCH_TREND_MAX_RATIO", baseline.get("max_ratio_default", 2.0)))
    failures = []
    for key, current in sorted(medians.items()):
        base = baseline["medians"].get(key)
        if base is None:
            failures.append(f"{key}: no baseline recorded")
            continue
        # Sub-microsecond baselines (the folder-listing node) sit at
        # timer resolution; flooring the denominator keeps the ratio
        # meaningful instead of gating on nanosecond jitter.
        ratio = current / max(base, 1e-6)
        marker = "FAIL" if ratio > max_ratio else "ok"
        print(f"trend {key}: {current * 1e3:.3f} ms vs baseline "
              f"{base * 1e3:.3f} ms (x{ratio:.2f}) [{marker}]")
        if ratio > max_ratio:
            failures.append(
                f"{key}: {ratio:.2f}x slower than baseline "
                f"(limit {max_ratio:.1f}x)")
    if failures:
        for failure in failures:
            print(f"perf-trend regression: {failure}", file=sys.stderr)
        return 1
    print(f"perf-trend gate passed ({len(medians)} nodes, "
          f"limit {max_ratio:.1f}x)")
    return 0


def _drive_slo_scenario(*, burn: bool):
    """120 simulated seconds of latency traffic through the SLO pipeline.

    Clean: every fsync/replication observation is 2ms, far under both
    objectives.  Burn: from t=60s the stream degrades to 200ms, which is
    bad for both SLOs — the fast (1m) window sees 100% errors and the
    slow (5m) window, clamped to the run's span, sees 50%; both burn far
    above the 2.0 threshold against a 1% budget.
    """
    from repro.clock import SimulatedClock
    from repro.obs import MetricsRegistry, SLOEvaluator, TelemetryStore

    start = 1_000_000.0
    clock = SimulatedClock(start=start, tick=0.0)
    registry = MetricsRegistry()
    fsync = registry.histogram("wal.fsync_seconds")
    replication = registry.histogram("collab.replication_seconds")
    store = TelemetryStore(registry, clock, interval=1.0, capacity=256)
    evaluator = SLOEvaluator(store, registry=registry)
    for second in range(120):
        latency = 0.2 if burn and second >= 60 else 0.002
        for __ in range(50):
            fsync.observe(latency)
            replication.observe(latency)
        store.sample(now=start + second)
    return evaluator.evaluate(now=start + 119), registry


def check_slo(*, burn: bool = False) -> int:
    """Gate CI on the deterministic synthetic SLO scenario.

    The clean scenario must pass and — run inline as a self-check — the
    burned one must breach, proving the gate can fire.  ``burn=True``
    (the ``--slo-burn`` flag) makes the burned scenario *the* gate, so a
    caller can assert the red path returns a non-zero exit code.
    """
    sys.path.insert(0, os.path.join(REPO, "src"))
    results, registry = _drive_slo_scenario(burn=burn)
    failures = []
    for result in results:
        fast, slow = result["fast"], result["slow"]
        fast_burn = fast["burn"] if fast else 0.0
        slow_burn = slow["burn"] if slow else 0.0
        marker = "BREACH" if result["breached"] else "ok"
        print(f"slo {result['slo']}: fast burn x{fast_burn:.1f}, "
              f"slow burn x{slow_burn:.1f} "
              f"(threshold x{result['burn_threshold']:.1f}) [{marker}]")
        if result["breached"]:
            failures.append(f"{result['slo']}: error budget burning "
                            f"{slow_burn:.1f}x too fast")
    breached_gauges = sum(
        1 for name, metric in registry.snapshot().items()
        if name.startswith("slo.breached{") and metric.get("value"))
    if failures:
        for failure in failures:
            print(f"SLO breach: {failure}", file=sys.stderr)
        return 1
    if burn:
        print("SLO burn scenario did not breach — gate is broken",
              file=sys.stderr)
        return 1
    if not burn:
        # Self-check: the burned scenario must turn the slo.* gauges red
        # and fail; otherwise the gate is decorative.
        burn_results, burn_registry = _drive_slo_scenario(burn=True)
        red = sum(
            1 for name, metric in burn_registry.snapshot().items()
            if name.startswith("slo.breached{") and metric.get("value"))
        if not any(r["breached"] for r in burn_results) or not red:
            print("SLO gate self-check failed: synthetic burn did not "
                  "breach", file=sys.stderr)
            return 1
        print(f"SLO gate passed ({len(results)} specs green, "
              f"{breached_gauges} gauges red; burn self-check breached "
              f"{red} spec(s))")
    return 0


def check_staleness() -> int:
    """Gate CI on derived-data staleness draining to zero.

    Drives Zipf traffic (including versioned re-uploads) against a small
    changefeed-maintained portal, then asserts that the maintenance
    worker drains every consumer's ``feed.lag`` to 0 and that no query
    fell back to a full index rebuild or folder rescan — the structural
    invariant behind the ``derived_staleness`` SLO.
    """
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.workload import PortalSpec, build_portal, run_portal_traffic

    portal = build_portal(PortalSpec(n_docs=300))
    try:
        report = run_portal_traffic(portal, n_ops=150, seed=7)
        feed = portal.db.changefeed()
        lag = feed.max_lag()
        failures = []
        if lag != 0:
            failures.append(f"feed lag did not drain: {lag} batches behind")
        if report.index_rebuilds:
            failures.append(
                f"{report.index_rebuilds} full index rebuild(s) on the "
                "query path")
        if report.folder_rescans:
            failures.append(
                f"{report.folder_rescans} full folder rescan(s) on the "
                "query path")
        if failures:
            for failure in failures:
                print(f"staleness gate: {failure}", file=sys.stderr)
            return 1
        consumers = len(feed.status()["consumers"])
        print(f"staleness gate passed ({consumers} consumers at lag 0, "
              f"{report.uploads} uploads absorbed in "
              f"{report.drain_rounds} final drain round(s))")
        return 0
    finally:
        portal.close()


if __name__ == "__main__":
    if "--slo-burn" in sys.argv[1:]:
        sys.exit(check_slo(burn=True))
    sys.exit(run_smoke(record_baseline="--record-baseline" in sys.argv[1:]))
