#!/usr/bin/env python3
"""Shared subprocess plumbing for the tools/ smoke scripts.

Every smoke harness in this directory spawns ``python -m repro serve``
(or a sibling subcommand), waits for its ``LISTENING <port>`` line,
runs a scenario, and tears the process down expecting a clean
``STOPPED`` on SIGTERM.  :class:`ServerProcess` owns that lifecycle
once, so net_smoke, the load harness and repl_smoke cannot drift apart
in how they spawn or judge a server.

Output is drained by a background thread into an internal line queue,
which makes mid-run waits (``wait_for("PROMOTED")`` with a timeout)
possible without risking the deadlock of a full OS pipe buffer.
"""

from __future__ import annotations

import os
import queue
import signal
import subprocess
import sys
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

__all__ = ["REPO", "ServerProcess", "repro_command", "repro_env"]


def repro_env() -> dict:
    """Child environment with ``src/`` on PYTHONPATH (prepended)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def repro_command(*args: str) -> list:
    """Argv for ``python -m repro <args...>`` under this interpreter."""
    return [sys.executable, "-m", "repro", *args]


class ServerProcess:
    """A ``repro`` server subprocess with handshake and teardown.

    Parameters
    ----------
    args:
        Subcommand argv, e.g. ``["serve", "--telemetry-interval", "0.2"]``.
    label:
        Prefix used in every problem string this instance produces.
    """

    def __init__(self, args, *, label: str = "server",
                 env: dict | None = None) -> None:
        self.label = label
        self.port: int | None = None
        self.proc = subprocess.Popen(
            repro_command(*args), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
            env=repro_env() if env is None else env)
        self.stdout_lines: list = []
        self.stderr_lines: list = []
        self._queue: queue.Queue = queue.Queue()
        self._readers = [
            threading.Thread(target=self._drain, daemon=True,
                             args=(self.proc.stdout, self.stdout_lines,
                                   self._queue)),
            threading.Thread(target=self._drain, daemon=True,
                             args=(self.proc.stderr, self.stderr_lines,
                                   None)),
        ]
        for reader in self._readers:
            reader.start()

    @staticmethod
    def _drain(stream, sink: list, lines: queue.Queue | None) -> None:
        for line in stream:
            line = line.rstrip("\n")
            sink.append(line)
            if lines is not None:
                lines.put(line)
        if lines is not None:
            lines.put(None)  # EOF marker

    # ------------------------------------------------------------------
    # Handshakes
    # ------------------------------------------------------------------

    def wait_for(self, prefix: str, timeout: float = 30.0) -> list | None:
        """Wait for a stdout line starting with ``prefix``.

        Returns the whitespace-split tokens of the matching line, or
        ``None`` on EOF/timeout.  Non-matching lines are consumed (the
        smoke protocols are strictly ordered, so anything skipped here
        was informational).
        """
        while True:
            try:
                line = self._queue.get(timeout=timeout)
            except queue.Empty:
                return None
            if line is None:
                return None
            if line.startswith(prefix):
                return line.split()

    def wait_listening(self, timeout: float = 30.0) -> str | None:
        """Wait for ``LISTENING <port>``; sets :attr:`port`.

        Returns ``None`` on success, a problem string otherwise.
        """
        tokens = self.wait_for("LISTENING", timeout=timeout)
        if tokens is None or len(tokens) < 2:
            return (f"{self.label}: never bound "
                    f"(stderr: {self.tail_stderr()})")
        self.port = int(tokens[1])
        return None

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL, no cleanliness judgement (crash legs use this)."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()
        self._join_readers()

    def shutdown(self, timeout: float = 10.0) -> str | None:
        """SIGTERM and require a clean exit.

        Returns ``None`` when the process exited 0 after printing
        ``STOPPED``, a problem string otherwise.  Always reaps the
        process, escalating to SIGKILL on a hang.
        """
        problem = None
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            problem = f"{self.label}: ignored SIGTERM"
        self._join_readers()
        if problem is None:
            if self.proc.returncode != 0 \
                    or not any("STOPPED" in line
                               for line in self.stdout_lines):
                problem = (f"{self.label}: unclean shutdown "
                           f"(rc={self.proc.returncode}, "
                           f"{self.tail_stderr()})")
        return problem

    def _join_readers(self) -> None:
        for reader in self._readers:
            reader.join(timeout=5.0)

    def tail_stderr(self) -> str:
        """Last stderr line, for problem strings."""
        return self.stderr_lines[-1] if self.stderr_lines else ""
