#!/usr/bin/env python3
"""Network smoke check: real server process, real client processes.

CI's guard on the out-of-process collaboration path.  Two legs:

* **clean** — a ``repro serve`` subprocess plus two typist client
  processes interleaving edits on one shared document over loopback
  TCP.  Fails on divergent replicas, notification p99 >= 1 s, or an
  unclean server shutdown (SIGTERM must exit 0 after ``STOPPED``).
* **faulted** — same topology with a seeded socket fault plan
  (``--net-seed``: dropped / delayed / reordered change frames).
  Replicas must still converge — dropped NOTIFYs heal through
  anti-entropy resync — and the server must still shut down cleanly.

Both legs also scrape STATS and HEALTH from this (separate) process
while the server is still running: the clean leg must report ``ok``
with a telemetry snapshot and valid Prometheus text, the faulted leg
must have *degraded* (the seeded socket faults show up in the
``net.faults`` health check's window).

The typists are *this script* re-invoked with ``--role typist``: one
OS process per editor, the paper's actual topology, no shared memory.

Usage::

    PYTHONPATH=src python tools/net_smoke.py
    python tools/net_smoke.py --rounds 40 --net-seed 7331
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from time import monotonic

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from proclib import REPO, ServerProcess, repro_env  # noqa: E402

sys.path.insert(0, os.path.join(REPO, "src"))

#: Acceptance bar: keystroke-to-remote-replica visibility, worst case.
P99_BUDGET_SECONDS = 1.0


# ----------------------------------------------------------------------
# Typist child process
# ----------------------------------------------------------------------

def run_typist(args: argparse.Namespace) -> int:
    """Type ``--rounds`` tokens into the shared doc, settle, report."""
    from repro.net import NetworkClient

    client = NetworkClient("127.0.0.1", args.port, args.user, register=True)
    try:
        session = client.session()
        handle = session.open_named(args.doc)
        doc = handle.doc
        latencies: list[float] = []
        for _ in range(args.rounds):
            session.insert(doc, handle.length(), args.token)
            latencies.extend(n.latency for n in client.poll(timeout=0.0))
        # Settle: drain until the replica holds every typist's keystrokes,
        # healing dropped frames through periodic anti-entropy resyncs.
        deadline = monotonic() + args.settle
        last_sync = monotonic()
        while handle.length() < args.expect_length:
            if monotonic() > deadline:
                break
            latencies.extend(n.latency for n in client.poll(timeout=0.05))
            if monotonic() - last_sync > 0.5:
                client.sync(doc)
                last_sync = monotonic()
        latencies.extend(n.latency for n in client.poll(timeout=0.0))
        result = {
            "user": args.user,
            "text": handle.text(),
            "length": handle.length(),
            "authors": sorted(handle.authors()),
            "chain_intact": not handle.check_integrity(),
            "latencies": latencies,
            "resyncs": sum(m.resyncs for m in client.mirrors.values()),
            "ping": client.ping(),
        }
        with open(args.out, "w", encoding="utf-8") as out:
            json.dump(result, out)
        return 0 if result["length"] == args.expect_length else 2
    finally:
        client.close()


# ----------------------------------------------------------------------
# Orchestrating parent
# ----------------------------------------------------------------------

def _percentile(values: list[float], q: float) -> float:
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def check_scrape(label: str, port: int, *,
                 expect_degraded: bool) -> list[str]:
    """STATS + HEALTH from this process against the serve subprocess."""
    from repro.net import scrape

    problems: list[str] = []
    # The serve-side sampler ticks every 0.2 s; give it a moment to
    # take its first samples before judging the snapshot.
    deadline = monotonic() + 5.0
    while True:
        stats = scrape("127.0.0.1", port, kind="stats")
        telemetry = stats.get("telemetry") or {}
        if telemetry.get("series") or monotonic() > deadline:
            break
    if not stats.get("metrics"):
        problems.append(f"{label}: STATS scrape returned no metrics")
    if not telemetry.get("series"):
        problems.append(f"{label}: STATS scrape has no telemetry series")
    prom = scrape("127.0.0.1", port, kind="stats", fmt="prom")
    if not isinstance(prom, str) or "# TYPE tendax_net_ops counter" \
            not in prom:
        problems.append(f"{label}: Prometheus exposition malformed")
    health = scrape("127.0.0.1", port, kind="health")
    status = health.get("status")
    checks = {c.get("check") for c in health.get("checks", [])}
    print(f"{label}: scrape ok — {len(telemetry.get('series', {}))} "
          f"series, health {status}")
    if "net.faults" not in checks:
        problems.append(f"{label}: health missing the net.faults check")
    if expect_degraded and status == "ok":
        problems.append(f"{label}: health is 'ok' despite seeded socket "
                        f"faults — degradation not detected")
    if not expect_degraded and status != "ok":
        problems.append(f"{label}: health is {status!r} on the clean leg")
    return problems


def run_leg(label: str, *, rounds: int, settle: float,
            net_seed: int | None, timeout: float) -> list[str]:
    from repro.net import NetworkClient

    env = repro_env()
    serve_args = ["serve", "--telemetry-interval", "0.2"]
    if net_seed is not None:
        serve_args += ["--net-seed", str(net_seed)]
    problems: list[str] = []
    doc_name = f"smoke-{label}"
    typists = (("ana", "a"), ("ben", "b"))
    expect = rounds * sum(len(token) for _, token in typists)

    server = ServerProcess(serve_args, label=f"{label}: server", env=env)
    outs = []
    children = []
    try:
        problem = server.wait_listening()
        if problem is not None:
            return [problem]
        port = server.port

        # Rendezvous: create the shared document once, before any typist
        # races another into creating a same-named duplicate.
        setup = NetworkClient("127.0.0.1", port, "smoke", register=True)
        try:
            setup.session().create_document(doc_name)
        finally:
            setup.close()

        for user, token in typists:
            fd, out_path = tempfile.mkstemp(suffix=".json")
            os.close(fd)
            outs.append(out_path)
            children.append(subprocess.Popen(
                [sys.executable, os.path.abspath(__file__),
                 "--role", "typist", "--port", str(port),
                 "--user", user, "--token-text", token,
                 "--doc", doc_name, "--rounds", str(rounds),
                 "--settle", str(settle),
                 "--expect-length", str(expect), "--out", out_path],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=env))

        started = monotonic()
        results = []
        for (user, _), child, out_path in zip(typists, children, outs):
            budget = max(1.0, timeout - (monotonic() - started))
            try:
                _, err = child.communicate(timeout=budget)
            except subprocess.TimeoutExpired:
                child.kill()
                _, err = child.communicate()
                problems.append(f"{label}: typist {user} hung")
                continue
            if child.returncode != 0:
                tail = err.strip().splitlines()[-1] if err.strip() else ""
                problems.append(f"{label}: typist {user} exited "
                                f"{child.returncode} ({tail})")
            try:
                with open(out_path, "r", encoding="utf-8") as handle:
                    results.append(json.load(handle))
            except (OSError, ValueError):
                problems.append(f"{label}: typist {user} wrote no result")

        if len(results) == len(typists):
            texts = {r["text"] for r in results}
            if len(texts) != 1:
                problems.append(
                    f"{label}: replicas diverged: "
                    f"{[r['text'][:40] for r in results]}")
            else:
                text = results[0]["text"]
                if len(text) != expect:
                    problems.append(f"{label}: converged text has "
                                    f"{len(text)} chars, expected {expect}")
                for user, token in typists:
                    if text.count(token) < rounds:
                        problems.append(f"{label}: lost keystrokes from "
                                        f"{user}")
            for r in results:
                if not r["chain_intact"]:
                    problems.append(f"{label}: {r['user']}'s replica "
                                    f"chain is broken")
            latencies = [lat for r in results for lat in r["latencies"]]
            if latencies:
                p99 = _percentile(latencies, 0.99)
                if p99 >= P99_BUDGET_SECONDS:
                    problems.append(f"{label}: notify p99 {p99:.3f}s "
                                    f">= {P99_BUDGET_SECONDS}s")
                print(f"{label}: {len(latencies)} notifies, "
                      f"p50 {_percentile(latencies, 0.5) * 1000:.1f} ms, "
                      f"p99 {p99 * 1000:.1f} ms")
            resyncs = sum(r["resyncs"] for r in results)
            print(f"{label}: converged at {expect} chars, "
                  f"{resyncs} client resync(s), "
                  f"ping {min(r['ping'] for r in results) * 1000:.2f} ms")
            if net_seed is None and resyncs:
                problems.append(f"{label}: resync on the clean leg — the "
                                f"delta path dropped frames")
        # Scrape while the server is still serving: telemetry + health
        # from a second process, faults (if seeded) still in-window.
        try:
            problems += check_scrape(label, port,
                                     expect_degraded=net_seed is not None)
        except Exception as exc:  # noqa: BLE001 - any scrape crash fails
            problems.append(f"{label}: scrape failed: {exc!r}")
    finally:
        problem = server.shutdown()
        if problem is not None:
            problems.append(problem)
        for child in children:
            if child.poll() is None:
                child.kill()
        for out_path in outs:
            try:
                os.unlink(out_path)
            except OSError:
                pass
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--role", choices=("orchestrate", "typist"),
                        default="orchestrate")
    parser.add_argument("--rounds", type=int, default=25,
                        help="keystroke tokens per typist")
    parser.add_argument("--settle", type=float, default=10.0,
                        help="max seconds a typist waits for convergence")
    parser.add_argument("--net-seed", type=int, default=20061131,
                        help="seed for the faulted leg's socket plan")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-leg wall-clock budget")
    # typist-role plumbing
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--user", default="typist")
    parser.add_argument("--token-text", dest="token", default="x")
    parser.add_argument("--doc", default="smoke")
    parser.add_argument("--expect-length", type=int, default=0)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)

    if args.role == "typist":
        return run_typist(args)

    problems = run_leg("clean", rounds=args.rounds, settle=args.settle,
                       net_seed=None, timeout=args.timeout)
    problems += run_leg(f"faulted(seed={args.net_seed})",
                        rounds=args.rounds, settle=args.settle,
                        net_seed=args.net_seed, timeout=args.timeout)
    for problem in problems:
        print(f"net smoke FAILED: {problem}", file=sys.stderr)
    if not problems:
        print("net smoke OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
