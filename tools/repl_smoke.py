#!/usr/bin/env python3
"""Replication smoke check: real leader, real follower, real failover.

CI's guard on the WAL-shipping path.  One scenario, four assertions:

1. **convergence** — a ``repro serve`` leader and a
   ``repro serve --follow`` read replica, both real OS processes over
   loopback TCP.  Two typist clients interleave edits on one shared
   document through the leader; the follower must catch up to the
   leader's durable LSN (``repl.apply_lag_lsn`` scraped to 0).
2. **bounded lag** — while following, the replica's
   ``repl.apply_lag_seconds`` p99 (leader send stamp to follower apply)
   must stay under ``--lag-budget`` seconds.
3. **promotion** — SIGKILL the leader (no goodbye, no final flush
   beyond what group commit already made durable).  The follower must
   print ``PROMOTED <lsn>`` and start serving on its own port.
4. **consistent reads** — a fresh client against the promoted node
   must see exactly the converged document (every typist's keystrokes,
   correct length, intact char chain), and the promoted node must
   accept new writes and still shut down cleanly on SIGTERM.

Typing stops and the replica converges *before* the kill, so the
expected post-failover text is deterministic — this checks failover
fidelity, not which in-flight tail a crash happens to cut.

Usage::

    PYTHONPATH=src python tools/repl_smoke.py
    python tools/repl_smoke.py --rounds 40 --lag-budget 0.5
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from time import monotonic, sleep

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from proclib import REPO, ServerProcess  # noqa: E402

sys.path.insert(0, os.path.join(REPO, "src"))

DOC = "repl-smoke"


def scrape_repl(port: int) -> dict:
    """Follower scrape → (repl status dict, metrics snapshot)."""
    from repro.net import scrape

    payload = scrape("127.0.0.1", port, kind="stats", series=False)
    return payload.get("repl", {}), payload.get("metrics", {})


def run(args: argparse.Namespace) -> list:
    from repro.net import NetworkClient

    problems: list = []
    tmp = tempfile.mkdtemp(prefix="repl-smoke-")
    leader = ServerProcess(
        ["serve", "--wal", os.path.join(tmp, "leader.wal"),
         "--node", "leader", "--telemetry-interval", "0.2"],
        label="leader")
    follower = None
    try:
        problem = leader.wait_listening()
        if problem is not None:
            return [problem]

        follower = ServerProcess(
            ["serve", "--follow", f"127.0.0.1:{leader.port}",
             "--wal", os.path.join(tmp, "follower.wal"),
             "--node", "replica", "--telemetry-interval", "0.2"],
            label="follower")
        problem = follower.wait_listening()
        if problem is not None:
            return [problem]
        print(f"leader on :{leader.port}, follower on :{follower.port}")

        # Typist load through the leader: two interleaved editors.
        typists = (("ana", "a"), ("ben", "b"))
        expect = args.rounds * sum(len(t) for _, t in typists)
        clients = []
        for user, _ in typists:
            client = NetworkClient("127.0.0.1", leader.port, user,
                                   register=True)
            session = client.session()
            if not clients:
                handle = session.create_document(DOC)
            else:
                handle = session.open_named(DOC)
            clients.append((client, session, handle))
        for _ in range(args.rounds):
            for (client, session, handle), (_, token) in zip(clients,
                                                             typists):
                session.insert(handle.doc, handle.length(), token)
                client.poll(timeout=0.0)
        # Let both leader replicas converge, then hold the final text.
        deadline = monotonic() + args.settle
        while any(h.length() < expect for _, _, h in clients) \
                and monotonic() < deadline:
            for client, _, handle in clients:
                client.poll(timeout=0.05)
        final_text = clients[0][2].text()
        for client, _, _ in clients:
            client.close()
        if len(final_text) != expect:
            problems.append(f"leader never converged: "
                            f"{len(final_text)} != {expect} chars")

        # 1+2: replica convergence and bounded apply lag, via scrape.
        deadline = monotonic() + args.settle
        repl, metrics = {}, {}
        while monotonic() < deadline:
            repl, metrics = scrape_repl(follower.port)
            if repl.get("lag_lsn") == 0 and repl.get("applied_lsn", 0) > 0:
                break
            sleep(0.1)
        print(f"replica: applied_lsn={repl.get('applied_lsn')} "
              f"lag_lsn={repl.get('lag_lsn')} "
              f"records={repl.get('records_applied')}")
        if repl.get("lag_lsn") != 0:
            problems.append(f"replica never caught up: repl={repl}")
        lag = metrics.get("repl.apply_lag_seconds", {})
        p99 = lag.get("p99")
        if not lag.get("count"):
            problems.append("replica reported no repl.apply_lag_seconds "
                            "observations")
        elif p99 is None or p99 >= args.lag_budget:
            problems.append(f"apply lag p99 {p99}s >= "
                            f"{args.lag_budget}s budget")
        else:
            print(f"apply lag: p99 {p99 * 1000:.1f} ms over "
                  f"{lag['count']} segments")

        # 3: kill the leader dead; the follower must promote.
        leader.kill()
        tokens = follower.wait_for("PROMOTED", timeout=args.settle)
        if tokens is None:
            problems.append(f"follower never promoted "
                            f"(stderr: {follower.tail_stderr()})")
            return problems
        print(f"promoted at lsn {tokens[1]}")

        # 4: the promoted node serves the converged document.
        client = NetworkClient("127.0.0.1", follower.port, "reader",
                               register=True)
        try:
            handle = client.session().open_named(DOC)
            text = handle.text()
            if text != final_text:
                problems.append(
                    f"promoted replica diverged: {len(text)} chars vs "
                    f"{len(final_text)} pre-failover")
            for user, token in typists:
                if text.count(token) < args.rounds:
                    problems.append(f"promoted replica lost keystrokes "
                                    f"from {user}")
            if handle.check_integrity():
                problems.append("promoted replica's char chain is broken")
            client.session().insert(handle.doc, handle.length(), "!")
            if handle.length() != expect + 1:
                problems.append("promoted replica rejected a new write")
        finally:
            client.close()
        print(f"promoted node serves {len(final_text)} chars and "
              f"accepts writes")
    finally:
        if leader.proc.poll() is None:
            leader.kill()
        if follower is not None:
            problem = follower.shutdown()
            if problem is not None:
                problems.append(problem)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=25,
                        help="keystroke tokens per typist")
    parser.add_argument("--settle", type=float, default=20.0,
                        help="max seconds for each convergence wait")
    parser.add_argument("--lag-budget", type=float, default=1.0,
                        help="replica apply-lag p99 budget, seconds")
    args = parser.parse_args(argv)

    problems = run(args)
    for problem in problems:
        print(f"repl smoke FAILED: {problem}", file=sys.stderr)
    if not problems:
        print("repl smoke OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
