#!/usr/bin/env python3
"""Load harness: N client processes x M typists against one server.

Measures what the paper claims scales — many editors on one document —
in the real topology: a ``repro serve`` subprocess and ``--procs``
worker OS processes, each driving ``--typists`` independent
:class:`~repro.net.NetworkClient` connections (one per simulated
editor), all typing into one shared document.

Reported per run:

* **durable keystroke throughput** — committed-and-ACKed inserts per
  second across the fleet (every ACK carries the durable LSN, so each
  counted keystroke survived the WAL);
* **notify latency** — keystroke-to-remote-replica p50/p95/p99 from
  NOTIFY timestamps;
* **convergence** — after a settle phase every replica must hold the
  same text (hash compared across all clients in all processes).

Usage::

    PYTHONPATH=src python tools/load_harness.py
    python tools/load_harness.py --procs 4 --typists 3 --rounds 50
    python tools/load_harness.py --net-seed 7331   # faulted sockets
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
from time import monotonic

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from proclib import REPO, ServerProcess, repro_env  # noqa: E402

sys.path.insert(0, os.path.join(REPO, "src"))

DOC = "load-harness"


# ----------------------------------------------------------------------
# Worker child: one process, M typist connections
# ----------------------------------------------------------------------

def run_worker(args: argparse.Namespace) -> int:
    from repro.net import NetworkClient

    clients = []
    try:
        for t in range(args.typists):
            user = f"w{args.worker}t{t}"
            client = NetworkClient("127.0.0.1", args.port, user,
                                   register=True)
            session = client.session()
            handle = session.open_named(DOC)
            clients.append((client, session, handle))

        token = chr(ord("a") + args.worker % 26)
        latencies: list[float] = []
        typed = 0
        started = monotonic()
        for _ in range(args.rounds):
            for client, session, handle in clients:
                session.insert(handle.doc, handle.length(), token)
                typed += 1
                latencies.extend(n.latency
                                 for n in client.poll(timeout=0.0))
        typing_seconds = monotonic() - started

        # Settle: every replica must reach the fleet-wide total.
        deadline = monotonic() + args.settle
        last_sync = monotonic()
        while any(h.length() < args.expect_length
                  for _, _, h in clients):
            if monotonic() > deadline:
                break
            for client, _, handle in clients:
                latencies.extend(n.latency
                                 for n in client.poll(timeout=0.01))
                if monotonic() - last_sync > 0.5:
                    client.sync(handle.doc)
            if monotonic() - last_sync > 0.5:
                last_sync = monotonic()

        digests = [hashlib.sha256(h.text().encode()).hexdigest()
                   for _, _, h in clients]
        lengths = [h.length() for _, _, h in clients]
        result = {
            "worker": args.worker,
            "typed": typed,
            "typing_seconds": typing_seconds,
            "latencies": latencies,
            "digests": digests,
            "lengths": lengths,
            "resyncs": sum(m.resyncs
                           for c, _, _ in clients
                           for m in c.mirrors.values()),
        }
        with open(args.out, "w", encoding="utf-8") as out:
            json.dump(result, out)
        return 0
    finally:
        for client, _, _ in clients:
            client.close()


# ----------------------------------------------------------------------
# Orchestrating parent
# ----------------------------------------------------------------------

def _percentile(values: list[float], q: float) -> float:
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def run_fleet(args: argparse.Namespace) -> int:
    from repro.net import NetworkClient

    env = repro_env()
    serve_args = ["serve"]
    if args.net_seed is not None:
        serve_args += ["--net-seed", str(args.net_seed)]
    if args.wal:
        serve_args += ["--wal", args.wal]
    expect = args.procs * args.typists * args.rounds

    server = ServerProcess(serve_args, env=env)
    workers, outs = [], []
    failures = 0
    try:
        problem = server.wait_listening()
        if problem is not None:
            print(problem, file=sys.stderr)
            return 1
        port = server.port

        setup = NetworkClient("127.0.0.1", port, "harness", register=True)
        try:
            setup.session().create_document(DOC)
        finally:
            setup.close()

        started = monotonic()
        for w in range(args.procs):
            fd, out_path = tempfile.mkstemp(suffix=".json")
            os.close(fd)
            outs.append(out_path)
            workers.append(subprocess.Popen(
                [sys.executable, os.path.abspath(__file__),
                 "--role", "worker", "--worker", str(w),
                 "--port", str(port), "--typists", str(args.typists),
                 "--rounds", str(args.rounds),
                 "--settle", str(args.settle),
                 "--expect-length", str(expect), "--out", out_path],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=env))

        results = []
        for w, (worker, out_path) in enumerate(zip(workers, outs)):
            try:
                _, err = worker.communicate(timeout=args.timeout)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.communicate()
                print(f"worker {w} hung", file=sys.stderr)
                failures += 1
                continue
            if worker.returncode != 0:
                tail = err.strip().splitlines()[-1] if err.strip() else ""
                print(f"worker {w} exited {worker.returncode}: {tail}",
                      file=sys.stderr)
                failures += 1
                continue
            with open(out_path, "r", encoding="utf-8") as handle:
                results.append(json.load(handle))
        elapsed = monotonic() - started

        if results:
            typed = sum(r["typed"] for r in results)
            typing = max(r["typing_seconds"] for r in results)
            latencies = [lat for r in results for lat in r["latencies"]]
            digests = {d for r in results for d in r["digests"]}
            lengths = sorted({n for r in results for n in r["lengths"]})
            converged = len(digests) == 1 and lengths == [expect]
            print(f"fleet        : {args.procs} procs x {args.typists} "
                  f"typists, {args.rounds} keystrokes each")
            print(f"durable ops  : {typed} keystrokes in {typing:.2f}s "
                  f"typing ({typed / typing:,.0f} ops/s fleet-wide)")
            if latencies:
                print(f"notify p50   : "
                      f"{_percentile(latencies, 0.5) * 1000:.2f} ms")
                print(f"notify p95   : "
                      f"{_percentile(latencies, 0.95) * 1000:.2f} ms")
                print(f"notify p99   : "
                      f"{_percentile(latencies, 0.99) * 1000:.2f} ms")
            print(f"resyncs      : {sum(r['resyncs'] for r in results)}")
            print(f"converged    : {converged} "
                  f"({len(digests)} digest(s), lengths {lengths})")
            print(f"wall clock   : {elapsed:.2f}s")
            if not converged:
                failures += 1
    finally:
        problem = server.shutdown()
        if problem is not None:
            print(problem, file=sys.stderr)
            failures += 1
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
        for out_path in outs:
            try:
                os.unlink(out_path)
            except OSError:
                pass
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--role", choices=("fleet", "worker"),
                        default="fleet")
    parser.add_argument("--procs", type=int, default=3,
                        help="client OS processes")
    parser.add_argument("--typists", type=int, default=2,
                        help="editor connections per process")
    parser.add_argument("--rounds", type=int, default=30,
                        help="keystrokes per typist")
    parser.add_argument("--settle", type=float, default=15.0)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--net-seed", type=int, default=None,
                        help="socket fault plan seed for the server")
    parser.add_argument("--wal", default=None,
                        help="server WAL file (durability on real disk)")
    # worker-role plumbing
    parser.add_argument("--worker", type=int, default=0)
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--expect-length", type=int, default=0)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    if args.role == "worker":
        return run_worker(args)
    return run_fleet(args)


if __name__ == "__main__":
    sys.exit(main())
