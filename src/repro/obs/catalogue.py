"""The metric catalogue: every name the engine may emit, with meaning.

The catalogue is a contract in both directions: instrumented code must
only emit names listed here (the bench snapshot validator rejects
unknown names, so adding a metric forces a catalogue + docs update), and
renaming or dropping a name here fails the smoke-bench's regression
check.  ``docs/OBSERVABILITY.md`` is the human-readable mirror.
"""

from __future__ import annotations

from .labels import split_labelled

#: name -> (kind, description).  Kind is "counter" | "gauge" | "histogram".
METRIC_CATALOGUE: dict[str, tuple[str, str]] = {
    # -- transactions (repro/db/transaction.py) -----------------------------
    "txn.begun": ("counter", "transactions started"),
    "txn.committed": ("counter", "transactions committed"),
    "txn.aborted": ("counter", "transactions rolled back"),
    "txn.crashed": ("counter",
                    "transactions ended by an injected CrashSignal"),
    "txn.active": ("gauge", "transactions currently in flight"),
    "txn.duration_seconds": ("histogram",
                             "begin-to-end transaction lifetime"),
    "txn.commit_seconds": ("histogram",
                           "commit call latency (log + apply + publish)"),
    "txn.ops": ("histogram", "distinct rows staged per transaction"),
    "txn.batched_ops": ("histogram",
                        "editing operations coalesced into one batched "
                        "transaction (Database.batch)"),
    "txn.snapshot_reads": ("counter",
                           "version-chain reads by snapshot (read-only) "
                           "transactions — point reads and query "
                           "executions; always lock-free"),
    "txn.versions_live": ("gauge",
                          "superseded row versions retained for open "
                          "snapshots (version-chain entries)"),
    "txn.version_gc_truncated": ("counter",
                                 "row versions dropped by version-chain "
                                 "GC below the snapshot watermark"),
    # -- write-ahead log (repro/db/wal.py) ----------------------------------
    "wal.appends": ("counter", "WAL records appended"),
    "wal.append_seconds": ("histogram", "WAL append latency"),
    "wal.appended_bytes": ("counter",
                           "bytes written to the mirrored WAL file"),
    "wal.fsyncs": ("counter", "physical commit-boundary fsyncs"),
    "wal.fsync_seconds": ("histogram", "flush+fsync latency"),
    "wal.group_commit_size": ("histogram",
                              "commits made durable per fsync (group "
                              "commit barrier)"),
    "wal.sync_wait_seconds": ("histogram",
                              "time a committer waited at the group-commit "
                              "barrier for its durable-LSN ack"),
    "wal.torn_tail_recoveries": ("counter",
                                 "recoveries that skipped a torn trailing "
                                 "record"),
    # -- lock manager (repro/db/locks.py) -----------------------------------
    "lock.acquired": ("counter", "lock grants (including upgrades)"),
    "lock.waits": ("counter", "acquires that had to wait"),
    "lock.wait_seconds": ("histogram",
                          "time spent waiting for contended locks"),
    "lock.timeouts": ("counter", "lock waits that timed out"),
    "lock.deadlocks": ("counter", "deadlock victims"),
    "lock.injected": ("counter", "faults injected into lock acquires"),
    # -- engine (repro/db/engine.py) ----------------------------------------
    "db.checkpoints": ("counter", "checkpoints written"),
    "db.checkpoint_seconds": ("histogram", "checkpoint snapshot duration"),
    # -- document order cache (repro/text/document.py) ----------------------
    "doc.cache_splice_seconds": (
        "histogram",
        "order-cache splice latency per committed character change "
        "(insert/delete/undelete applied to an open handle's view)"),
    "doc.cache_lookup_seconds": (
        "histogram",
        "order-cache positional lookup latency (char_oid_at, "
        "position_of, range resolution)"),
    "doc.full_scans": (
        "counter",
        "full chain traversals to (re)build a handle's order cache — "
        "expected only on open and refresh(), never on text()/keystrokes"),
    # -- collaboration (repro/collab) ---------------------------------------
    "collab.operations": ("counter", "editing operations dispatched"),
    "collab.op_seconds": ("histogram",
                          "operation dispatch latency (verb to commit "
                          "fan-out)"),
    "collab.notifications": ("counter", "change notifications produced"),
    "collab.deliveries": ("counter", "notifications delivered to inboxes"),
    "collab.held": ("counter", "notifications held back by the fault plan"),
    "collab.drains": ("counter", "delivery backlog drains"),
    "collab.queue_depth": ("gauge", "notifications held, awaiting drain"),
    "collab.sessions": ("gauge", "connected editing sessions"),
    "collab.replication_seconds": (
        "histogram",
        "end-to-end replication latency: editor keystroke start to the "
        "notification landing in each remote replica's inbox (the paper's "
        "real-time number; held delivery counts its backlog time)"),
    "collab.held_seconds": (
        "histogram",
        "time held notifications spent in the delivery-bus backlog "
        "before drain released them"),
    # -- network server (repro/net/server.py) -------------------------------
    "net.connections": ("gauge", "TCP connections currently authenticated"),
    "net.connects": ("counter", "handshakes accepted since server start"),
    "net.frames_in": ("counter", "wire frames received from clients"),
    "net.frames_out": ("counter", "wire frames written to clients"),
    "net.bytes_in": ("counter", "payload bytes received from clients"),
    "net.bytes_out": ("counter", "payload bytes written to clients"),
    "net.ops": ("counter", "RPC operations served (OP envelopes)"),
    "net.op_seconds": ("histogram",
                       "server-side OP service time (decode to ACK "
                       "enqueue, durable LSN included)"),
    "net.notifies": ("counter",
                     "NOTIFY envelopes enqueued for fan-out (before any "
                     "socket fault)"),
    "net.protocol_errors": ("counter",
                            "connections closed for wire-protocol "
                            "violations"),
    "net.backpressure_closes": ("counter",
                                "slow consumers shed by send-queue "
                                "overflow"),
    "net.frames_dropped": ("counter",
                           "faultable frames lost to the injected net "
                           "fault plan"),
    "net.frames_delayed": ("counter",
                           "faultable frames delayed in band by the "
                           "injected net fault plan"),
    "net.resyncs": ("counter",
                    "anti-entropy snapshot fetches served (client mirror "
                    "detected a sequence gap)"),
    "net.send_queue_depth": ("gauge",
                             "per-connection send-queue depth at last "
                             "enqueue (labelled by conn)"),
    "net.scrapes": ("counter",
                    "STATS/HEALTH telemetry scrapes served over the wire"),
    # -- replication (repro/repl, repro/net/replica.py) ---------------------
    "repl.apply_lag_lsn": ("gauge",
                           "leader durable LSN minus the follower's "
                           "applied LSN (0 = caught up)"),
    "repl.apply_lag_seconds": ("histogram",
                               "leader send stamp to follower apply "
                               "completion, per shipped segment"),
    "repl.segments_shipped": ("counter",
                              "non-empty WAL_SEGMENT frames served to "
                              "subscribed followers (leader side)"),
    "repl.records_applied": ("counter",
                             "shipped WAL records applied by the "
                             "follower (duplicates excluded)"),
    "repl.promotions": ("counter",
                        "follower promotions to writable leader"),
    # -- changefeed (repro/feed) --------------------------------------------
    "feed.batches": ("counter", "commit batches published to the feed"),
    "feed.events": ("counter", "row-change events carried by those batches"),
    "feed.seq": ("gauge", "sequence number of the newest published batch"),
    "feed.dispatch_seconds": ("histogram",
                              "per-batch fan-out latency across all "
                              "subscribed consumers"),
    "feed.consumer_errors": ("counter",
                             "consumer handler exceptions isolated by the "
                             "feed (the batch still counts as delivered)"),
    "feed.checkpoints": ("counter",
                         "consumer cursors durably checkpointed to "
                         "tx_feed_cursors"),
    "feed.catchup_batches": ("counter",
                             "batches replayed to consumers from the WAL "
                             "after a restart (cursor catch-up)"),
    "feed.retention_evictions": ("counter",
                                 "batches dropped from the in-memory "
                                 "retention window"),
    "feed.staleness_seconds": ("histogram",
                               "commit-to-ack age of each batch when a "
                               "consumer absorbed it (derived-data "
                               "staleness, the paper's 'within seconds')"),
    "feed.lag": ("gauge",
                 "batches published but not yet acked, per consumer "
                 "(labelled by consumer; 0 = fully fresh)"),
    "feed.worker_runs": ("counter",
                         "background maintenance-worker ticks executed"),
    "feed.worker_seconds": ("histogram",
                            "maintenance-worker tick duration"),
    # -- search (repro/search/engine.py) ------------------------------------
    "search.queries": ("counter", "content/metadata searches run"),
    "search.query_seconds": ("histogram", "end-to-end search latency"),
    "search.index_hits": ("counter",
                          "candidate documents produced by the inverted "
                          "index"),
    "search.structure_queries": ("counter", "structure searches run"),
    # -- tracing (repro/obs/tracing.py, repro/obs/export.py) ----------------
    "trace.active_spans": ("gauge", "spans started but not yet ended"),
    "trace.spans_started": ("counter", "spans handed out by the tracer"),
    "trace.slow_ops": ("counter",
                       "traces whose end-to-end extent exceeded the "
                       "slow-op threshold"),
    # -- observability self-metrics (repro/obs/labels.py, slo.py) -----------
    "obs.label_evictions": ("counter",
                            "labelled series evicted by a family's LRU "
                            "cardinality cap"),
    "obs.samples": ("counter",
                    "registry samples taken into the telemetry rings"),
    "slo.burn_rate": ("gauge",
                      "error-budget burn rate per SLO spec and window "
                      "(labelled by slo, window)"),
    "slo.error_rate": ("gauge",
                       "bad-event fraction per SLO over its slow window "
                       "(labelled by slo)"),
    "slo.breached": ("gauge",
                     "1 when both burn windows exceed the spec threshold "
                     "(labelled by slo)"),
}

#: Families that may fan out into labelled children, with the label keys
#: each is allowed to carry.  A labelled series whose base name is not
#: listed here — or that uses a key outside its allowance — is rejected
#: by :func:`unknown_names` just like an uncatalogued plain name.
LABELLED_FAMILIES: dict[str, tuple[str, ...]] = {
    "collab.op_seconds": ("verb",),
    "collab.notifications": ("doc",),
    "net.op_seconds": ("verb",),
    "net.notifies": ("doc",),
    "net.send_queue_depth": ("conn",),
    "wal.group_commit_size": ("role",),
    "feed.lag": ("consumer",),
    "slo.burn_rate": ("slo", "window"),
    "slo.error_rate": ("slo",),
    "slo.breached": ("slo",),
}

#: Core names every instrumented engine run must produce; the smoke
#: bench fails if any is missing from a BENCH_obs.json union.
REQUIRED_METRICS: frozenset[str] = frozenset({
    "txn.begun",
    "txn.committed",
    "txn.commit_seconds",
    "txn.duration_seconds",
    "wal.appends",
    "wal.append_seconds",
    "lock.acquired",
    # The paper's headline number: the bench trajectory must always
    # carry keystroke→remote-visibility latency (emitted by any bench
    # with >= 2 editors on one document).
    "collab.replication_seconds",
})


def unknown_names(names) -> list[str]:
    """Names not in the catalogue (a regression or a missing entry).

    Labelled series validate against their base family: the base must be
    catalogued *and* listed in :data:`LABELLED_FAMILIES`, and every label
    key must be in the family's allowance.
    """
    bad = set()
    for name in set(names):
        base, labels = split_labelled(name)
        if base not in METRIC_CATALOGUE:
            bad.add(name)
        elif labels is not None:
            allowed = LABELLED_FAMILIES.get(base)
            if allowed is None or set(labels) - set(allowed):
                bad.add(name)
    return sorted(bad)


def missing_required(names) -> list[str]:
    """Required core names absent from ``names``."""
    return sorted(REQUIRED_METRICS - set(names))
