"""Health verdict over the live telemetry.

:func:`evaluate_health` folds a registry snapshot (and, when available,
the windowed rates of a :class:`~repro.obs.timeseries.TelemetryStore`)
into a single ``ok`` / ``degraded`` / ``unhealthy`` verdict with
per-check detail — the payload behind the ``HEALTH`` wire verb and the
``repro dash`` status line.

Checks prefer *windowed* rates over cumulative counters so the verdict
recovers once a fault clears: a burst of dropped frames degrades the
server only while drops still fall inside the trailing window.  Without
a store (point-in-time snapshot only) the cumulative fallbacks are
conservative and sticky — documented, and only used by offline tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

OK = "ok"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_RANK = {OK: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass(frozen=True)
class HealthThresholds:
    """Tunable limits for :func:`evaluate_health`."""

    #: WAL fsync p99 (seconds) over the window: stall / dead limits.
    fsync_stall_p99: float = 0.25
    fsync_dead_p99: float = 1.0
    #: Send-queue occupancy fraction that counts as saturation.
    queue_ratio: float = 0.8
    #: Live superseded versions awaiting GC: backlog / dead limits.
    gc_backlog: int = 50_000
    gc_backlog_dead: int = 500_000
    #: Accepted handshakes per minute that count as connection churn.
    churn_per_minute: float = 120.0
    #: Injected-fault events per second tolerated before degrading.
    fault_rate: float = 0.0
    #: Follower apply lag in LSNs: degraded / dead limits (the check
    #: only runs when the node exposes ``repl.apply_lag_lsn``, so
    #: leaders are unaffected).
    repl_lag_lsn: int = 10_000
    repl_lag_lsn_dead: int = 100_000
    #: Follower apply lag p99 (seconds) over the window that degrades.
    repl_lag_p99: float = 1.0
    #: Changefeed consumer lag in batches: degraded / dead limits (the
    #: check only runs when the node exposes ``feed.lag`` series, so
    #: engines without derived-data consumers are unaffected).
    feed_lag: int = 64
    feed_lag_dead: int = 4096
    #: Trailing window (seconds) for all rate/quantile checks.
    window: float = 60.0


DEFAULT_THRESHOLDS = HealthThresholds()


def _value(snapshot: Mapping[str, dict], name: str, default=0):
    entry = snapshot.get(name)
    if entry is None:
        return default
    return entry.get("value", default)


def _windowed_rate(store, snapshot, name: str, window: float) -> float:
    """Events/second over the window; cumulative>0 counts as 1.0/s stand-in
    when no store is available (sticky, documented)."""
    if store is not None:
        rate = store.rate(name, window)
        return rate if rate is not None else 0.0
    return 1.0 if _value(snapshot, name) else 0.0


def _windowed_count(store, name: str, window: float) -> float:
    """Counter delta over the window (0.0 without a store).

    Unlike :func:`_windowed_rate` this never extrapolates: dividing the
    count by the *configured* window means a freshly started server
    with two seconds of history cannot alarm on a rate it has not
    actually sustained.
    """
    if store is None:
        return 0.0
    agg = store.window(name, window)
    if agg is None:
        return 0.0
    return float(agg.get("delta") or 0.0)


def _windowed_p99(store, snapshot, name: str, window: float):
    if store is not None:
        agg = store.window(name, window)
        if agg is not None and agg.get("p99") is not None:
            return agg["p99"]
        if agg is not None:
            return None
    entry = snapshot.get(name)
    if entry is not None:
        return entry.get("p99")
    return None


def evaluate_health(snapshot: Mapping[str, dict], store=None, *,
                    thresholds: HealthThresholds = DEFAULT_THRESHOLDS,
                    context: Mapping | None = None) -> dict:
    """Fold metrics into ``{"status": ..., "checks": [...]}``."""
    t = thresholds
    ctx = dict(context or {})
    checks: list[dict] = []

    def add(check: str, status: str, value, detail: str) -> None:
        checks.append({"check": check, "status": status,
                       "value": value, "detail": detail})

    # WAL fsync stall: durable keystrokes stop being real-time.
    p99 = _windowed_p99(store, snapshot, "wal.fsync_seconds", t.window)
    if p99 is None:
        add("wal.fsync_stall", OK, None, "no fsyncs in window")
    elif p99 > t.fsync_dead_p99:
        add("wal.fsync_stall", UNHEALTHY, p99,
            f"fsync p99 {p99:.3f}s > {t.fsync_dead_p99:.2f}s")
    elif p99 > t.fsync_stall_p99:
        add("wal.fsync_stall", DEGRADED, p99,
            f"fsync p99 {p99:.3f}s > {t.fsync_stall_p99:.2f}s")
    else:
        add("wal.fsync_stall", OK, p99, f"fsync p99 {p99:.6f}s")

    # Send-queue saturation: sheds are unhealthy, high occupancy degrades.
    shed_rate = _windowed_rate(store, snapshot, "net.backpressure_closes",
                               t.window)
    limit = int(ctx.get("send_queue_limit", 0))
    depth = 0.0
    for name, entry in snapshot.items():
        if name.startswith("net.send_queue_depth"):
            depth = max(depth, entry.get("value", 0.0))
    if shed_rate > 0:
        add("net.send_queue", UNHEALTHY, shed_rate,
            f"shedding slow consumers ({shed_rate:.2f}/s)")
    elif limit and depth >= t.queue_ratio * limit:
        add("net.send_queue", DEGRADED, depth,
            f"queue depth {depth:.0f} of {limit} "
            f"(>= {t.queue_ratio:.0%})")
    else:
        add("net.send_queue", OK, depth, f"max queue depth {depth:.0f}")

    # GC backlog: version chains growing faster than the sweeper.
    live = _value(snapshot, "txn.versions_live", 0)
    if live > t.gc_backlog_dead:
        add("gc.backlog", UNHEALTHY, live,
            f"{live:.0f} live versions > {t.gc_backlog_dead}")
    elif live > t.gc_backlog:
        add("gc.backlog", DEGRADED, live,
            f"{live:.0f} live versions > {t.gc_backlog}")
    else:
        add("gc.backlog", OK, live, f"{live:.0f} live versions")

    # Connection churn: reconnect storms.  Counted over the configured
    # window (not the observed span) so short uptimes don't extrapolate
    # a handful of handshakes into a storm.
    churn = _windowed_count(store, "net.connects",
                            t.window) * (60.0 / t.window)
    if churn > t.churn_per_minute:
        add("net.churn", DEGRADED, churn,
            f"{churn:.0f} handshakes/min > {t.churn_per_minute:.0f}")
    else:
        add("net.churn", OK, churn, f"{churn:.1f} handshakes/min")

    # Replica apply lag: only meaningful on a node that follows a
    # leader (the gauge exists iff a FollowerEngine runs here).
    if "repl.apply_lag_lsn" in snapshot:
        lag = _value(snapshot, "repl.apply_lag_lsn", 0)
        lag_p99 = _windowed_p99(store, snapshot, "repl.apply_lag_seconds",
                                t.window)
        if lag > t.repl_lag_lsn_dead:
            add("repl.lag", UNHEALTHY, lag,
                f"apply lag {lag:.0f} LSNs > {t.repl_lag_lsn_dead}")
        elif lag > t.repl_lag_lsn:
            add("repl.lag", DEGRADED, lag,
                f"apply lag {lag:.0f} LSNs > {t.repl_lag_lsn}")
        elif lag_p99 is not None and lag_p99 > t.repl_lag_p99:
            add("repl.lag", DEGRADED, lag_p99,
                f"apply lag p99 {lag_p99:.3f}s > {t.repl_lag_p99:.2f}s")
        else:
            add("repl.lag", OK, lag, f"apply lag {lag:.0f} LSNs")

    # Derived-data staleness: changefeed consumers falling behind the
    # commit stream (stale search results / folder listings).  Only
    # meaningful where consumers exist — the gauge family is labelled
    # per consumer; the worst one decides.
    feed_series = {name: entry for name, entry in snapshot.items()
                   if name.startswith("feed.lag")}
    if feed_series:
        worst_name, worst = max(
            feed_series.items(), key=lambda kv: kv[1].get("value", 0.0))
        lag = worst.get("value", 0.0)
        who = worst_name[len("feed.lag"):] or "{}"
        if lag > t.feed_lag_dead:
            add("feed.lag", UNHEALTHY, lag,
                f"consumer {who} lags {lag:.0f} batches "
                f"> {t.feed_lag_dead}")
        elif lag > t.feed_lag:
            add("feed.lag", DEGRADED, lag,
                f"consumer {who} lags {lag:.0f} batches > {t.feed_lag}")
        else:
            add("feed.lag", OK, lag, f"max consumer lag {lag:.0f} batches")

    # Injected / observed socket faults.
    fault_rate = (
        _windowed_rate(store, snapshot, "net.frames_dropped", t.window)
        + _windowed_rate(store, snapshot, "net.frames_delayed", t.window))
    if fault_rate > t.fault_rate:
        add("net.faults", DEGRADED, fault_rate,
            f"{fault_rate:.2f} dropped/delayed frames per second")
    else:
        add("net.faults", OK, fault_rate, "no socket faults in window")

    status = OK
    for check in checks:
        if _RANK[check["status"]] > _RANK[status]:
            status = check["status"]
    return {"status": status, "checks": checks}
