"""Lightweight trace spans with context propagation.

A :class:`Span` is one timed unit of engine work — a transaction, a
collab operation dispatch, a search — with a name, attributes, a status
and a parent.  The :class:`Tracer` hands spans out and routes finished
spans to registered sinks.

Two usage shapes:

* ``with tracer.span("search.query"):`` — scoped work on one thread.
  The span joins the thread's context stack, so spans started inside it
  (either shape) get it as their parent.
* ``span = tracer.start("txn"); ...; span.end("commit")`` — *detached*
  spans for work whose begin and end live in different calls (a
  transaction's lifetime).  Detached spans take the current context span
  as parent but do not occupy the stack.

**No-op fast path**: with no sink registered, :meth:`Tracer.start`
returns the shared :data:`NULL_SPAN` and records nothing — the hot
paths stay instrumented at the cost of one attribute check.

**Balance**: every started span must be ended exactly once; the tracer
tracks open spans (``trace.active_spans`` gauge) so the test suite can
assert none leak, including across injected crashes (a transaction
killed by a :class:`~repro.faults.plan.CrashSignal` ends its span with
status ``"crash"``).
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from time import perf_counter
from typing import Any, Callable, Iterator

SpanSink = Callable[["Span"], None]


class Span:
    """One timed, named, attributed unit of work."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "started",
                 "ended", "status", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.started = perf_counter()
        self.ended: float | None = None
        self.status: str | None = None

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, status: str = "ok") -> None:
        """Finish the span (idempotent: only the first end counts)."""
        if self.ended is not None:
            return
        self.ended = perf_counter()
        self.status = status
        self._tracer._finish(self)

    @property
    def duration(self) -> float | None:
        if self.ended is None:
            return None
        return self.ended - self.started

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = self.status if self.ended is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan:
    """Shared inert span returned when no sink is listening."""

    __slots__ = ()
    name = "null"
    span_id = 0
    parent_id = None
    attrs: dict = {}
    status = None
    duration = None
    ended = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, status: str = "ok") -> None:
        pass


#: The tracer's no-op fast path target.
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, tracks open ones, fans finished spans to sinks."""

    def __init__(self, registry=None) -> None:
        from .metrics import NULL_REGISTRY
        reg = registry if registry is not None else NULL_REGISTRY
        self._sinks: list[SpanSink] = []
        self._ids = itertools.count(1)
        self._open: dict[int, Span] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._active = reg.gauge("trace.active_spans")
        self._started = reg.counter("trace.spans_started")

    # -- sinks ---------------------------------------------------------------

    @property
    def recording(self) -> bool:
        return bool(self._sinks)

    def add_sink(self, sink: SpanSink) -> SpanSink:
        """Register a callable receiving every finished span."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: SpanSink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    # -- span lifecycle ------------------------------------------------------

    def start(self, name: str, **attrs: Any) -> Span | _NullSpan:
        """Start a detached span (caller must :meth:`Span.end` it)."""
        if not self._sinks:
            return NULL_SPAN
        current = self.current()
        span = Span(self, name, next(self._ids),
                    current.span_id if current is not None else None, attrs)
        with self._lock:
            self._open[span.span_id] = span
        self._active.inc()
        self._started.inc()
        return span

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span | _NullSpan]:
        """Scoped span: joins the thread's context stack for its extent."""
        span = self.start(name, **attrs)
        if span is NULL_SPAN:
            yield span
            return
        stack = self._stack()
        stack.append(span)
        try:
            yield span
            span.end("ok")
        except BaseException:
            # BaseException on purpose: CrashSignal must close spans too.
            span.end("error")
            raise
        finally:
            stack.remove(span)

    def current(self) -> Span | None:
        """The innermost scoped span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
        self._active.dec()
        for sink in self._sinks:
            sink(span)

    # -- introspection -------------------------------------------------------

    def open_spans(self) -> list[Span]:
        """Snapshot of started-but-not-ended spans (leak detection)."""
        with self._lock:
            return list(self._open.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tracer(sinks={len(self._sinks)}, "
                f"open={len(self.open_spans())})")
