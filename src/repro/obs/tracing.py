"""Lightweight trace spans with context propagation.

A :class:`Span` is one timed unit of engine work — a transaction, a
collab operation dispatch, a search — with a name, attributes, a status
and a parent.  The :class:`Tracer` hands spans out and routes finished
spans to registered sinks.

Two usage shapes:

* ``with tracer.span("search.query"):`` — scoped work on one thread.
  The span joins the thread's context stack, so spans started inside it
  (either shape) get it as their parent.
* ``span = tracer.start("txn"); ...; span.end("commit")`` — *detached*
  spans for work whose begin and end live in different calls (a
  transaction's lifetime).  Detached spans take the current context span
  as parent but do not occupy the stack.

**Causal traces**: every span carries a ``trace_id``.  A root span (no
parent) mints a fresh one; children inherit their parent's, so all the
work one keystroke causes — editor op, transaction, WAL fsync, dispatch,
remote delivery — shares a single trace id.  The link crosses session
and thread boundaries explicitly: :attr:`Span.ctx` is a ``(trace_id,
span_id)`` pair that can ride on a message envelope, and
``tracer.span(..., parent_ctx=ctx)`` resumes the trace on the receiving
side (held/reordered delivery included).  :meth:`Tracer.scope` pushes an
existing detached span onto the context stack, so work performed *inside*
a transaction's commit (fsync, commit fan-out) parents under the
transaction span.

**No-op fast path**: with no sink registered, :meth:`Tracer.start`
returns the shared :data:`NULL_SPAN` and records nothing — the hot
paths stay instrumented at the cost of one attribute check.
:attr:`_NullSpan.ctx` is ``None``, which is what keeps message-envelope
trace fields ``None`` when tracing is off.

**Balance**: every started span must be ended exactly once; the tracer
tracks open spans (``trace.active_spans`` gauge) so the test suite can
assert none leak, including across injected crashes (a transaction
killed by a :class:`~repro.faults.plan.CrashSignal` ends its span with
status ``"crash"``).
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from time import perf_counter
from typing import Any, Callable, Iterator

SpanSink = Callable[["Span"], None]

#: A span's address as carried on message envelopes: (trace_id, span_id).
TraceContext = tuple[int, int]


class Span:
    """One timed, named, attributed unit of work."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "attrs",
                 "started", "ended", "status", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, trace_id: int,
                 attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attrs = attrs
        self.started = perf_counter()
        self.ended: float | None = None
        self.status: str | None = None

    @property
    def ctx(self) -> TraceContext:
        """This span's ``(trace_id, span_id)`` for envelope propagation."""
        return (self.trace_id, self.span_id)

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, status: str = "ok") -> None:
        """Finish the span (idempotent: only the first end counts)."""
        if self.ended is not None:
            return
        self.ended = perf_counter()
        self.status = status
        self._tracer._finish(self)

    @property
    def duration(self) -> float | None:
        if self.ended is None:
            return None
        return self.ended - self.started

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = self.status if self.ended is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan:
    """Shared inert span returned when no sink is listening."""

    __slots__ = ()
    name = "null"
    span_id = 0
    parent_id = None
    trace_id = 0
    #: ``None`` on purpose: envelope trace fields stay unset when off.
    ctx = None
    attrs: dict = {}
    status = None
    duration = None
    ended = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, status: str = "ok") -> None:
        pass


#: The tracer's no-op fast path target.
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, tracks open ones, fans finished spans to sinks."""

    def __init__(self, registry=None) -> None:
        from .metrics import NULL_REGISTRY
        reg = registry if registry is not None else NULL_REGISTRY
        self._sinks: list[SpanSink] = []
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._open: dict[int, Span] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._active = reg.gauge("trace.active_spans")
        self._started = reg.counter("trace.spans_started")

    # -- sinks ---------------------------------------------------------------

    @property
    def recording(self) -> bool:
        return bool(self._sinks)

    def add_sink(self, sink: SpanSink) -> SpanSink:
        """Register a callable receiving every finished span."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: SpanSink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    # -- span lifecycle ------------------------------------------------------

    def start(self, name: str,
              parent_ctx: TraceContext | None = None,
              **attrs: Any) -> Span | _NullSpan:
        """Start a detached span (caller must :meth:`Span.end` it).

        ``parent_ctx`` is an explicit ``(trace_id, span_id)`` parent —
        the cross-session/cross-thread link a message envelope carries.
        Without it, the parent is the thread's innermost scoped span; a
        parentless span roots a fresh trace.
        """
        if not self._sinks:
            return NULL_SPAN
        if parent_ctx is not None:
            trace_id, parent_id = parent_ctx
        else:
            current = self.current()
            if current is not None:
                trace_id, parent_id = current.trace_id, current.span_id
            else:
                trace_id, parent_id = next(self._trace_ids), None
        span = Span(self, name, next(self._ids), parent_id, trace_id, attrs)
        with self._lock:
            self._open[span.span_id] = span
        self._active.inc()
        self._started.inc()
        return span

    @contextlib.contextmanager
    def span(self, name: str,
             parent_ctx: TraceContext | None = None,
             **attrs: Any) -> Iterator[Span | _NullSpan]:
        """Scoped span: joins the thread's context stack for its extent."""
        span = self.start(name, parent_ctx, **attrs)
        if span is NULL_SPAN:
            yield span
            return
        stack = self._stack()
        stack.append(span)
        try:
            yield span
            span.end("ok")
        except BaseException:
            # BaseException on purpose: CrashSignal must close spans too.
            span.end("error")
            raise
        finally:
            stack.remove(span)

    @contextlib.contextmanager
    def scope(self, span: "Span | _NullSpan") -> Iterator["Span | _NullSpan"]:
        """Push an existing (detached, open) span onto the context stack.

        Lets work done inside another call chain parent under a detached
        span — e.g. a transaction's commit puts its own span in scope so
        the WAL fsync and the commit fan-out trace as its children.  The
        span is *not* ended on exit; its owner still does that.
        """
        if span is NULL_SPAN or span.ended is not None:
            yield span
            return
        stack = self._stack()
        stack.append(span)  # type: ignore[arg-type]
        try:
            yield span
        finally:
            stack.remove(span)  # type: ignore[arg-type]

    def current(self) -> Span | None:
        """The innermost scoped span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
        self._active.dec()
        for sink in self._sinks:
            sink(span)

    # -- introspection -------------------------------------------------------

    def open_spans(self) -> list[Span]:
        """Snapshot of started-but-not-ended spans (leak detection)."""
        with self._lock:
            return list(self._open.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tracer(sinks={len(self._sinks)}, "
                f"open={len(self.open_spans())})")


#: Shared sink-less tracer: the default wiring for components built
#: without a database (every start() returns :data:`NULL_SPAN`).
NULL_TRACER = Tracer()
