"""Human-readable rendering of metrics snapshots (``repro stats``)."""

from __future__ import annotations

from typing import Mapping

from .catalogue import METRIC_CATALOGUE


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1e-6:
        return f"{value * 1e9:.0f}ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _fmt_value(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def render_snapshot(snapshot: Mapping[str, dict]) -> str:
    """Render a registry snapshot as an aligned, prefix-grouped table.

    Histograms named ``*_seconds`` format their quantiles as latencies;
    other histograms (e.g. ``txn.ops``) as plain numbers.
    """
    if not snapshot:
        return "(no metrics recorded)"
    rows: list[tuple[str, str]] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            rows.append((name, _fmt_value(entry.get("value"))))
        elif kind == "histogram":
            fmt = _fmt_seconds if name.endswith("_seconds") else _fmt_value
            rows.append((
                name,
                f"n={entry.get('count', 0)}  "
                f"p50={fmt(entry.get('p50'))}  "
                f"p95={fmt(entry.get('p95'))}  "
                f"p99={fmt(entry.get('p99'))}  "
                f"max={fmt(entry.get('max'))}",
            ))
        else:
            rows.append((name, repr(entry)))
    width = max(len(name) for name, __ in rows)
    lines = []
    previous_prefix = None
    for name, value in rows:
        prefix = name.split(".", 1)[0]
        if previous_prefix is not None and prefix != previous_prefix:
            lines.append("")
        previous_prefix = prefix
        lines.append(f"  {name.ljust(width)}  {value}")
    return "\n".join(lines)


def describe(name: str) -> str:
    """One-line description of a catalogued metric name."""
    kind, text = METRIC_CATALOGUE.get(name, ("?", "(uncatalogued)"))
    return f"{name} ({kind}): {text}"
