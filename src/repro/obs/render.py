"""Human-readable rendering of metrics snapshots (``repro stats``)."""

from __future__ import annotations

from typing import Mapping

from .catalogue import METRIC_CATALOGUE


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1e-6:
        return f"{value * 1e9:.0f}ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _fmt_value(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def render_snapshot(snapshot: Mapping[str, dict]) -> str:
    """Render a registry snapshot as an aligned, prefix-grouped table.

    Histograms named ``*_seconds`` format their quantiles as latencies;
    other histograms (e.g. ``txn.ops``) as plain numbers.
    """
    if not snapshot:
        return "(no metrics recorded)"
    rows: list[tuple[str, str]] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            rows.append((name, _fmt_value(entry.get("value"))))
        elif kind == "histogram":
            fmt = _fmt_seconds if name.endswith("_seconds") else _fmt_value
            rows.append((
                name,
                f"n={entry.get('count', 0)}  "
                f"p50={fmt(entry.get('p50'))}  "
                f"p95={fmt(entry.get('p95'))}  "
                f"p99={fmt(entry.get('p99'))}  "
                f"max={fmt(entry.get('max'))}",
            ))
        else:
            rows.append((name, repr(entry)))
    width = max(len(name) for name, __ in rows)
    lines = []
    previous_prefix = None
    for name, value in rows:
        prefix = name.split(".", 1)[0]
        if previous_prefix is not None and prefix != previous_prefix:
            lines.append("")
        previous_prefix = prefix
        lines.append(f"  {name.ljust(width)}  {value}")
    return "\n".join(lines)


def describe(name: str) -> str:
    """One-line description of a catalogued metric name."""
    from .labels import split_labelled

    base, __ = split_labelled(name)
    kind, text = METRIC_CATALOGUE.get(base, ("?", "(uncatalogued)"))
    return f"{name} ({kind}): {text}"


def render_health(health: Mapping) -> str:
    """The HEALTH verdict as a status line plus one line per check."""
    lines = [f"health: {health.get('status', '?').upper()}"]
    for check in health.get("checks", []):
        marker = {"ok": " ", "degraded": "!", "unhealthy": "X"}.get(
            check.get("status"), "?")
        lines.append(f"  [{marker}] {check.get('check', '?'):<18} "
                     f"{check.get('detail', '')}")
    return "\n".join(lines)


def render_trends(windows: Mapping[str, Mapping], *,
                  limit: int = 12) -> str:
    """Windowed aggregates as one row per metric (10s / 1m / 5m columns).

    ``windows`` is ``TelemetryStore.snapshot()["windows"]``: metric name
    -> window label -> aggregate dict.  Histograms show rate + p99 per
    window; counters show rate; gauges show the in-window mean.
    """
    if not windows:
        return "(no telemetry sampled)"

    def cell(agg: Mapping | None, fmt) -> str:
        if not agg:
            return "-"
        kind = agg.get("kind")
        if kind == "counter":
            rate = agg.get("rate")
            return f"{rate:,.1f}/s" if rate is not None else "-"
        if kind == "gauge":
            return _fmt_value(agg.get("mean"))
        rate = agg.get("rate")
        left = f"{rate:,.1f}/s" if rate is not None else "-"
        return f"{left} p99={fmt(agg.get('p99'))}"

    labels: list[str] = []
    for aggs in windows.values():
        for label in aggs:
            if label not in labels:
                labels.append(label)
    names = sorted(windows)[:limit]
    width = max(len(n) for n in names)
    head = "  " + "metric".ljust(width) + "".join(
        f"  {label:>22}" for label in labels)
    lines = [head]
    for name in names:
        aggs = windows[name]
        fmt = _fmt_seconds if "_seconds" in name else _fmt_value
        row = "  " + name.ljust(width) + "".join(
            f"  {cell(aggs.get(label), fmt):>22}" for label in labels)
        lines.append(row)
    return "\n".join(lines)


def render_dash(stats: Mapping, health: Mapping | None = None, *,
                limit: int = 12) -> str:
    """The ``repro dash`` frame: health verdict + windowed trend table."""
    lines = []
    node = stats.get("node")
    at = stats.get("at")
    header = "== repro dash =="
    if node is not None:
        header += f"  node={node}"
    if at is not None:
        header += f"  at={at:.3f}"
    lines.append(header)
    if health is not None:
        lines.append(render_health(health))
    telemetry = stats.get("telemetry") or {}
    lines.append("")
    lines.append(render_trends(telemetry.get("windows", {}), limit=limit))
    return "\n".join(lines)
