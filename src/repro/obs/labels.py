"""Labelled metric families: dimensioned series with bounded cardinality.

A :class:`MetricFamily` is one catalogue name (``collab.op_seconds``)
fanned out into per-label-set children (``collab.op_seconds{verb=insert}``)
— the zero-dependency analogue of Prometheus labels.  Children are real
:class:`~repro.obs.metrics.Counter`/``Gauge``/``Histogram`` instances
registered in the owning registry under their decorated name, so
snapshots, merging and rendering need no special cases.

Cardinality is **bounded**: each family keeps at most ``max_series``
live label sets in an LRU.  Creating a new set beyond the cap evicts the
least-recently-used child, unregisters it from the registry and bumps
the :data:`LABEL_EVICTIONS` counter — a runaway dimension (per-request
ids as labels, say) shows up as a hot ``obs.label_evictions`` instead of
an unbounded snapshot.  Hot paths should pre-resolve the family once and
call :meth:`MetricFamily.labels` per event; the label lookup is one
``OrderedDict`` hit under the family lock.

The decorated-name grammar is ``base{k=v,k2=v2}`` with keys sorted and
the characters ``{ } , = "`` (and newlines) replaced by ``_`` in values,
so :func:`split_labelled` can always recover the base name for catalogue
validation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping

from .metrics import DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram

#: Default per-family cap on live label sets.
DEFAULT_MAX_SERIES = 64

#: Catalogue name of the shared eviction counter.
LABEL_EVICTIONS = "obs.label_evictions"

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

_FORBIDDEN = str.maketrans({c: "_" for c in '{},="\n\r'})


def _clean(value: object) -> str:
    return str(value).translate(_FORBIDDEN)


def labelled_name(base: str, labels: Mapping[str, object]) -> str:
    """``("a.b", {"k": "v"})`` -> ``"a.b{k=v}"`` (keys sorted, values cleaned)."""
    pairs = ",".join(f"{k}={_clean(v)}" for k, v in sorted(labels.items()))
    return f"{base}{{{pairs}}}"


def split_labelled(name: str) -> tuple[str, dict[str, str] | None]:
    """Inverse of :func:`labelled_name`; plain names give ``(name, None)``."""
    if "{" not in name or not name.endswith("}"):
        return name, None
    base, _, rest = name.partition("{")
    labels: dict[str, str] = {}
    body = rest[:-1]
    if body:
        for pair in body.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key:
                return name, None
            labels[key] = value
    return base, labels


class MetricFamily:
    """One metric name dimensioned by label sets, LRU-capped.

    Created through :meth:`MetricsRegistry.family` (or implicitly by the
    ``labels=`` keyword on ``registry.counter/gauge/histogram``); not
    constructed directly by instrumented code.
    """

    __slots__ = ("name", "kind", "max_series", "_registry", "_buckets",
                 "_children", "_evictions", "_lock")

    def __init__(self, registry, name: str, kind: str, *,
                 buckets=None, max_series: int = DEFAULT_MAX_SERIES,
                 evictions: Counter | None = None) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if max_series < 1:
            raise ValueError("max_series must be at least 1")
        self.name = name
        self.kind = kind
        self.max_series = max_series
        self._registry = registry
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: OrderedDict[tuple, object] = OrderedDict()
        self._evictions = evictions
        self._lock = threading.Lock()

    def labels(self, **labels):
        """The child metric for this label set (created on first use)."""
        if not labels:
            raise ValueError(
                f"family {self.name!r} needs at least one label; use the "
                f"unlabelled registry accessor for the base series")
        key = tuple(sorted((k, _clean(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                self._children.move_to_end(key)
                return child
            child = self._make(dict(key))
            self._children[key] = child
            self._registry._register_series(child.name, child)
            while len(self._children) > self.max_series:
                __, evicted = self._children.popitem(last=False)
                self._registry._unregister_series(evicted.name)
                if self._evictions is not None:
                    self._evictions.inc()
            return child

    def _make(self, labels: dict[str, str]):
        name = labelled_name(self.name, labels)
        cls = _KINDS[self.kind]
        if cls is Histogram:
            return Histogram(name, self._buckets or DEFAULT_LATENCY_BUCKETS)
        return cls(name)

    def series_count(self) -> int:
        """Live (non-evicted) label sets in this family."""
        with self._lock:
            return len(self._children)


class _NullFamily:
    """Inert family handed out by :class:`NullRegistry`."""

    __slots__ = ("_child",)

    def __init__(self, child) -> None:
        self._child = child

    def labels(self, **labels):
        return self._child

    def series_count(self) -> int:
        return 0
