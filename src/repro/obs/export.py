"""Trace collection and export: buffer, JSONL, Chrome trace-event, top.

The tracer (:mod:`repro.obs.tracing`) fans finished spans to sinks; this
module is the sink that turns them into something a human or a tool can
look at:

* :class:`TraceBuffer` — a bounded in-memory sink grouping finished
  spans by ``trace_id`` (one trace per keystroke), with an integrated
  *slow-op log*: any trace whose end-to-end extent exceeds a threshold
  is captured with its full span tree;
* :func:`spans_to_jsonl` — one JSON object per span, the neutral wire
  format;
* :func:`chrome_trace` — Chrome trace-event JSON (open in
  ``chrome://tracing`` or Perfetto; each trace renders as its own track,
  so a keystroke's editor-op → txn → fsync → dispatch → remote-apply
  cascade reads left to right);
* :func:`render_trace` — one trace as an ASCII span tree
  (``repro trace``);
* :func:`render_top` — hottest metrics + slowest recent traces
  (``repro top``).

Everything here consumes *finished* spans only and never touches the
hot paths: with no sink registered the tracer short-circuits to
``NULL_SPAN`` and this module never runs.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Iterable, Mapping

from .metrics import NULL_REGISTRY
from .render import _fmt_seconds
from .tracing import Span


class Trace:
    """All finished spans sharing one ``trace_id`` — one causal story."""

    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: int, spans: list[Span]) -> None:
        self.trace_id = trace_id
        #: Finish order as received; :meth:`tree` orders causally.
        self.spans = spans

    @property
    def started(self) -> float:
        return min(s.started for s in self.spans)

    @property
    def ended(self) -> float:
        return max(s.ended for s in self.spans if s.ended is not None)

    @property
    def duration(self) -> float:
        """End-to-end extent: first span start to last span end.

        Under held delivery this spans the hold too — exactly the
        keystroke→remote-visibility number the slow-op log thresholds.
        """
        return self.ended - self.started

    @property
    def root(self) -> Span | None:
        """The causally first root span (usually the editor op)."""
        roots = [s for s, depth in self.tree() if depth == 0]
        return roots[0] if roots else None

    def tree(self) -> list[tuple[Span, int]]:
        """Spans in causal pre-order as ``(span, depth)`` pairs.

        A span whose parent is absent from the trace (still open, or
        evicted) becomes a root.  Siblings order by start time.
        """
        by_id = {s.span_id: s for s in self.spans}
        children: dict[int | None, list[Span]] = {}
        for span in sorted(self.spans, key=lambda s: (s.started, s.span_id)):
            parent = span.parent_id if span.parent_id in by_id else None
            children.setdefault(parent, []).append(span)
        out: list[tuple[Span, int]] = []

        def walk(parent: int | None, depth: int) -> None:
            for span in children.get(parent, ()):
                out.append((span, depth))
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return out

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Trace(id={self.trace_id}, spans={len(self.spans)}, "
                f"duration={self.duration:.6f})")


class TraceBuffer:
    """Bounded span sink grouping finished spans into traces.

    Register with ``tracer.add_sink(buffer)``.  Keeps the most recent
    ``max_traces`` traces (evicting whole traces oldest-first) so a
    long-running server cannot grow without bound.  With
    ``slow_threshold`` set (seconds), any trace whose end-to-end extent
    exceeds it is copied into the slow-op log — late spans (a held
    notification delivered on drain) re-capture the trace, so the log
    always holds the completed tree.
    """

    def __init__(self, *, max_traces: int = 256,
                 slow_threshold: float | None = None,
                 max_slow: int = 64,
                 registry=None) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self.slow_threshold = slow_threshold
        self.max_slow = max_slow
        reg = registry if registry is not None else NULL_REGISTRY
        self._m_slow = reg.counter("trace.slow_ops")
        self._traces: "OrderedDict[int, list[Span]]" = OrderedDict()
        self._slow: "OrderedDict[int, Trace]" = OrderedDict()
        self._evicted = 0
        self._lock = threading.Lock()

    # -- sink protocol -------------------------------------------------------

    def __call__(self, span: Span) -> None:
        """Receive one finished span (the tracer sink contract)."""
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                spans = self._traces[span.trace_id] = []
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
                    self._evicted += 1
            spans.append(span)
            if self.slow_threshold is None:
                return
            extent = (max(s.ended for s in spans if s.ended is not None)
                      - min(s.started for s in spans))
            if extent >= self.slow_threshold:
                if span.trace_id not in self._slow:
                    self._m_slow.inc()
                    while len(self._slow) >= self.max_slow:
                        self._slow.popitem(last=False)
                # Re-capture: the latest (largest) tree wins.
                self._slow[span.trace_id] = Trace(span.trace_id, list(spans))

    # -- reads ---------------------------------------------------------------

    def traces(self) -> list[Trace]:
        """Buffered traces, oldest first."""
        with self._lock:
            return [Trace(tid, list(spans))
                    for tid, spans in self._traces.items()]

    def get(self, trace_id: int) -> Trace | None:
        with self._lock:
            spans = self._traces.get(trace_id)
            return Trace(trace_id, list(spans)) if spans else None

    def slow_ops(self) -> list[Trace]:
        """Slow-trace captures, oldest first (full span trees)."""
        with self._lock:
            return list(self._slow.values())

    def slowest(self, n: int = 5) -> list[Trace]:
        """The ``n`` buffered traces with the largest end-to-end extent."""
        return sorted(self.traces(), key=lambda t: t.duration,
                      reverse=True)[:n]

    @property
    def evicted(self) -> int:
        """Whole traces dropped to honour ``max_traces``."""
        return self._evicted

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._slow.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceBuffer(traces={len(self)}, "
                f"slow={len(self._slow)}, evicted={self._evicted})")


# ---------------------------------------------------------------------------
# Span serialisation
# ---------------------------------------------------------------------------

def span_to_dict(span: Span) -> dict:
    """One span as a plain JSON-serialisable dict."""
    return {
        "trace": span.trace_id,
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "status": span.status,
        "start": span.started,
        "end": span.ended,
        "duration": span.duration,
        "attrs": {k: _plain(v) for k, v in span.attrs.items()},
    }


def _plain(value) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Spans as JSON-lines (one object per line, finish order)."""
    return "\n".join(json.dumps(span_to_dict(s), sort_keys=True)
                     for s in spans)


def chrome_trace(traces: Iterable[Trace]) -> dict:
    """Traces as a Chrome trace-event payload (``chrome://tracing``).

    Each trace becomes one track (``tid`` = trace id, with a
    ``thread_name`` metadata event naming its root span), every span one
    complete (``"ph": "X"``) event.  Timestamps are microseconds
    relative to the earliest span start across all exported traces, so
    the payload is self-contained and viewer-friendly.
    """
    traces = [t for t in traces if t.spans]
    events: list[dict] = []
    if not traces:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    zero = min(t.started for t in traces)
    for trace in sorted(traces, key=lambda t: t.trace_id):
        root = trace.root
        events.append({
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": trace.trace_id,
            "args": {"name": f"trace {trace.trace_id}"
                             + (f" · {root.name}" if root else "")},
        })
        for span, __ in trace.tree():
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": 1,
                "tid": trace.trace_id,
                "ts": (span.started - zero) * 1e6,
                "dur": (span.duration or 0.0) * 1e6,
                "args": dict(
                    {k: _plain(v) for k, v in span.attrs.items()},
                    trace=span.trace_id,
                    span=span.span_id,
                    parent=span.parent_id,
                    status=span.status,
                ),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload) -> list[str]:
    """Structural validation of a Chrome trace payload; returns problems.

    The contract the CI trace-export check enforces: a well-formed
    envelope, well-formed events, and causal consistency (every ``X``
    event's ``args.parent`` resolves to a span in the same trace or is
    null).
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    spans_by_trace: dict[object, set] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where} must be an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"{where}.ph is {ph!r}, expected 'X' or 'M'")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                errors.append(f"{where} is missing {field!r}")
        if ph != "X":
            continue
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"{where}.{field} must be a number >= 0")
        args = event.get("args")
        if not isinstance(args, dict) or "span" not in args:
            errors.append(f"{where}.args must carry a 'span' id")
            continue
        spans_by_trace.setdefault(args.get("trace"), set()).add(args["span"])
    for i, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        parent = args.get("parent")
        if parent is not None and \
                parent not in spans_by_trace.get(args.get("trace"), ()):
            errors.append(
                f"traceEvents[{i}]: parent span {parent} not in trace "
                f"{args.get('trace')} (broken causal link)")
    return errors


# ---------------------------------------------------------------------------
# Terminal rendering
# ---------------------------------------------------------------------------

def render_trace(trace: Trace) -> str:
    """One trace as an ASCII span tree with durations and attributes."""
    lines = [f"trace {trace.trace_id} · {_fmt_seconds(trace.duration)} "
             f"end-to-end · {len(trace)} spans"]
    tree = trace.tree()
    for i, (span, depth) in enumerate(tree):
        branch = "└─ " if _is_last_sibling(tree, i) else "├─ "
        attrs = " ".join(f"{k}={_plain(v)}"
                         for k, v in sorted(span.attrs.items()))
        lines.append(
            "   " * depth + branch
            + f"{span.name} {_fmt_seconds(span.duration)} [{span.status}]"
            + (f"  {attrs}" if attrs else "")
        )
    return "\n".join(lines)


def _is_last_sibling(tree: list[tuple[Span, int]], index: int) -> bool:
    """Is ``tree[index]`` the last entry at its depth under its parent?"""
    depth = tree[index][1]
    for span, d in tree[index + 1:]:
        if d < depth:
            return True
        if d == depth:
            return False
    return True


def render_top(snapshot: Mapping[str, dict],
               traces: list[Trace] | None = None,
               *, limit: int = 8) -> str:
    """The ``repro top`` view: hottest metrics + slowest recent traces.

    Histograms rank by total recorded time (``sum``) — where the engine
    actually spends it — counters/gauges by value.  Count-shaped
    histograms (``txn.ops``, ``wal.group_commit_size``) sort below the
    ``*_seconds`` ones: their sums are incommensurable with time.
    """
    lines: list[str] = []
    hists = [(name, m) for name, m in snapshot.items()
             if m.get("type") == "histogram" and m.get("count")]
    hists.sort(key=lambda kv: (kv[0].endswith("_seconds"),
                               kv[1].get("sum", 0.0)), reverse=True)
    lines.append("hot paths (by total recorded time)")
    if not hists:
        lines.append("  (no histogram samples recorded)")
    for name, m in hists[:limit]:
        fmt = _fmt_seconds if name.endswith("_seconds") \
            else lambda v: f"{v:,.1f}"
        lines.append(
            f"  {name:<28} n={m.get('count', 0):<7} "
            f"sum={fmt(m.get('sum', 0.0)):>9} "
            f"p50={fmt(m.get('p50')) if m.get('p50') is not None else '-':>9} "
            f"p95={fmt(m.get('p95')) if m.get('p95') is not None else '-':>9}")
    counters = [(name, m) for name, m in snapshot.items()
                if m.get("type") in ("counter", "gauge") and m.get("value")]
    counters.sort(key=lambda kv: kv[1]["value"], reverse=True)
    lines.append("")
    lines.append("busiest counters")
    if not counters:
        lines.append("  (no counts recorded)")
    for name, m in counters[:limit]:
        lines.append(f"  {name:<28} {m['value']:,.0f}".rstrip())
    if traces is not None:
        lines.append("")
        lines.append("slowest recent traces (keystroke → remote visibility)")
        slowest = sorted(traces, key=lambda t: t.duration,
                         reverse=True)[:limit]
        if not slowest:
            lines.append("  (no traces recorded)")
        for trace in slowest:
            root = trace.root
            label = root.name if root else "?"
            detail = " ".join(f"{k}={_plain(v)}" for k, v in
                              sorted(root.attrs.items())) if root else ""
            lines.append(
                f"  trace {trace.trace_id:<6} "
                f"{_fmt_seconds(trace.duration):>9}  "
                f"{len(trace):>2} spans  {label}"
                + (f"  {detail}" if detail else ""))
    return "\n".join(lines)


def _prom_escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _prom_labels(labels: Mapping[str, str] | None, extra: str = "") -> str:
    parts = [f'{k}="{_prom_escape(v)}"' for k, v in (labels or {}).items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: Mapping[str, dict], *,
                    prefix: str = "tendax_") -> str:
    """Registry snapshot as Prometheus text exposition (version 0.0.4).

    Metric names swap ``.`` for ``_`` under a ``tendax_`` prefix;
    labelled children of one family render as label sets on a single
    ``# TYPE``'d metric.  Histograms expose cumulative ``_bucket{le=}``
    series (including ``+Inf``) plus ``_sum`` and ``_count``, matching
    the native Prometheus histogram contract.
    """
    from .catalogue import METRIC_CATALOGUE
    from .labels import split_labelled

    families: "OrderedDict[str, list]" = OrderedDict()
    for name in sorted(snapshot):
        base, labels = split_labelled(name)
        families.setdefault(base, []).append((labels, snapshot[name]))
    lines: list[str] = []
    for base, series in families.items():
        prom = prefix + base.replace(".", "_").replace("-", "_")
        kind = series[0][1].get("type", "untyped")
        desc = METRIC_CATALOGUE.get(base, (None, None))[1]
        if desc:
            lines.append(f"# HELP {prom} {_prom_escape(desc)}")
        lines.append(f"# TYPE {prom} {kind}")
        for labels, entry in series:
            body = _prom_labels(labels)
            if entry.get("type") in ("counter", "gauge"):
                value = _prom_number(entry.get("value", 0))
                lines.append(f"{prom}{body} {value}")
                continue
            cumulative = 0
            for bound, n in entry.get("buckets", []):
                cumulative += n
                le = 'le="%s"' % _prom_number(float(bound))
                lines.append(f"{prom}_bucket{_prom_labels(labels, le)}"
                             f" {cumulative}")
            cumulative += entry.get("overflow", 0)
            inf = 'le="+Inf"'
            lines.append(f"{prom}_bucket{_prom_labels(labels, inf)}"
                         f" {cumulative}")
            total = _prom_number(float(entry.get("sum", 0.0)))
            lines.append(f"{prom}_sum{body} {total}")
            lines.append(f"{prom}_count{body} {entry.get('count', 0)}")
    return "\n".join(lines) + "\n"


def _prom_number(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)
