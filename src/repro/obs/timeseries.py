"""Time-series ring buffers over a metrics registry.

A :class:`TelemetryStore` turns the registry's point-in-time snapshots
into *history*: :meth:`~TelemetryStore.sample` records one point per
metric into a fixed-size ring (``deque(maxlen=capacity)``), and windowed
aggregates — rate, p50/p99, mean — are computed over the rings on
demand.  Sampling is driven by a :class:`~repro.clock.Clock`, so tests
(and the smoke-bench SLO gate) drive the whole pipeline with a
:class:`~repro.clock.SimulatedClock` while ``repro serve`` samples on an
asyncio timer.

Points are cumulative registry values; window aggregates are *deltas*
between the newest in-window point and a base point at (or just before)
the window start.  Histogram windows difference the sparse per-bucket
counts and feed them to the shared bounded-error quantile core, so a
windowed p99 carries the same bucket-width error contract as a lifetime
one.  The only approximation: a window's min/max clamp comes from the
cumulative extremes, since per-window extremes are not recorded.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Mapping

from ..clock import Clock, SystemClock
from .metrics import _bucket_quantile

#: Snapshot schema identifier for the wire / JSON form.
TELEMETRY_SCHEMA = "tendax.telemetry.v1"

#: Default aggregate windows (seconds): 10s / 1m / 5m.
DEFAULT_WINDOWS: tuple[float, ...] = (10.0, 60.0, 300.0)


def window_label(seconds: float) -> str:
    """``10 -> "10s"``, ``60 -> "1m"``, ``300 -> "5m"``."""
    seconds = float(seconds)
    if seconds >= 60 and seconds % 60 == 0:
        return f"{int(seconds // 60)}m"
    return f"{seconds:g}s"


class TelemetryStore:
    """Fixed-size per-metric rings sampled from a registry on a clock."""

    def __init__(self, registry, clock: Clock | None = None, *,
                 interval: float = 1.0, capacity: int = 512) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (windows need deltas)")
        self.registry = registry
        self.clock = clock if clock is not None else SystemClock()
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._rings: dict[str, deque] = {}
        self._kinds: dict[str, str] = {}
        self._last: float | None = None
        self._samples = registry.counter("obs.samples")
        self._lock = threading.Lock()

    # -- sampling -----------------------------------------------------------

    def sample(self, now: float | None = None) -> float:
        """Record one point per registry metric; returns the sample time."""
        if now is None:
            now = self.clock.now()
        snap = self.registry.snapshot()
        with self._lock:
            for name, entry in snap.items():
                ring = self._rings.get(name)
                if ring is None:
                    ring = self._rings[name] = deque(maxlen=self.capacity)
                    self._kinds[name] = entry["type"]
                if entry["type"] == "histogram":
                    ring.append((
                        now,
                        entry.get("count", 0),
                        entry.get("sum", 0.0),
                        tuple((b, n) for b, n in entry.get("buckets", [])),
                        entry.get("overflow", 0),
                        entry.get("min"),
                        entry.get("max"),
                    ))
                else:
                    ring.append((now, entry.get("value", 0)))
            self._last = now
        self._samples.inc()
        return now

    def maybe_sample(self) -> bool:
        """Sample iff at least ``interval`` has elapsed since the last one."""
        now = self.clock.now()
        with self._lock:
            due = self._last is None or now - self._last >= self.interval
        if due:
            self.sample(now=now)
        return due

    # -- introspection ------------------------------------------------------

    @property
    def last_sample(self) -> float | None:
        return self._last

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._rings)

    def kind(self, name: str) -> str | None:
        return self._kinds.get(name)

    def points(self, name: str) -> list[tuple]:
        with self._lock:
            ring = self._rings.get(name)
            return list(ring) if ring is not None else []

    # -- windowed aggregates ------------------------------------------------

    def _bracket(self, name: str, seconds: float,
                 now: float | None) -> tuple[tuple, tuple] | None:
        """(base, head) points spanning the window, or ``None``."""
        with self._lock:
            ring = self._rings.get(name)
            if ring is None or len(ring) < 1:
                return None
            pts = list(ring)
            if now is None:
                now = self._last
        if now is None:
            return None
        start = now - seconds
        head = None
        for pt in reversed(pts):
            if pt[0] <= now:
                head = pt
                break
        if head is None:
            return None
        # Base: the newest point at or before the window start, so the
        # delta covers the whole window; fall back to the oldest point.
        base = pts[0]
        for pt in pts:
            if pt[0] <= start:
                base = pt
            else:
                break
        return base, head

    def window(self, name: str, seconds: float, *,
               now: float | None = None) -> dict | None:
        """Aggregate over the trailing window; ``None`` without data."""
        kind = self._kinds.get(name)
        if kind is None:
            return None
        bracket = self._bracket(name, seconds, now)
        if bracket is None:
            return None
        base, head = bracket
        span = head[0] - base[0]
        if kind == "counter":
            delta = head[1] - base[1]
            return {"kind": "counter", "delta": delta, "span": span,
                    "rate": (delta / span) if span > 0 else None}
        if kind == "gauge":
            # Gauges aggregate over every in-window point, not a delta.
            start = head[0] - seconds
            values = [pt[1] for pt in self.points(name)
                      if start <= pt[0] <= head[0]]
            if not values:
                values = [head[1]]
            return {"kind": "gauge", "last": head[1],
                    "min": min(values), "max": max(values),
                    "mean": sum(values) / len(values), "span": span}
        delta = self.histogram_delta(name, seconds, now=now)
        if delta is None:
            return None
        out = {"kind": "histogram", "count": delta["count"], "span": span,
               "rate": (delta["count"] / span) if span > 0 else None,
               "mean": (delta["sum"] / delta["count"])
               if delta["count"] else None}
        for label, q in (("p50", 0.5), ("p99", 0.99)):
            out[label] = _delta_quantile(q, delta)
        return out

    def histogram_delta(self, name: str, seconds: float, *,
                        now: float | None = None) -> dict | None:
        """Per-bucket count deltas over the window (SLO evaluation core)."""
        if self._kinds.get(name) != "histogram":
            return None
        bracket = self._bracket(name, seconds, now)
        if bracket is None:
            return None
        base, head = bracket
        by_bound = {b: n for b, n in head[3]}
        for bound, n in base[3]:
            by_bound[bound] = by_bound.get(bound, 0) - n
        buckets = {b: n for b, n in by_bound.items() if n > 0}
        return {
            "count": max(0, head[1] - base[1]),
            "sum": head[2] - base[2],
            "buckets": buckets,
            "overflow": max(0, head[4] - base[4]),
            "min": head[5],
            "max": head[6],
            "span": head[0] - base[0],
        }

    def windows(self, name: str,
                spans: Iterable[float] = DEFAULT_WINDOWS, *,
                now: float | None = None) -> dict[str, dict]:
        out = {}
        for span in spans:
            agg = self.window(name, span, now=now)
            if agg is not None:
                out[window_label(span)] = agg
        return out

    def rate(self, name: str, seconds: float, *,
             now: float | None = None) -> float | None:
        """Events per second over the window (counters and histograms)."""
        agg = self.window(name, seconds, now=now)
        if agg is None:
            return None
        return agg.get("rate")

    # -- JSON form ----------------------------------------------------------

    def snapshot(self, *, max_points: int = 16,
                 spans: Iterable[float] = DEFAULT_WINDOWS,
                 names: Iterable[str] | None = None) -> dict:
        """JSON-able time-series snapshot (trimmed points + windows)."""
        wanted = sorted(names) if names is not None else self.names()
        series = {}
        windows = {}
        for name in wanted:
            pts = self.points(name)
            if not pts:
                continue
            series[name] = {
                "kind": self._kinds.get(name),
                "points": [list(pt[:3]) if len(pt) > 2 else list(pt)
                           for pt in pts[-max_points:]],
            }
            aggs = self.windows(name, spans)
            if aggs:
                windows[name] = aggs
        return {
            "schema": TELEMETRY_SCHEMA,
            "interval": self.interval,
            "capacity": self.capacity,
            "at": self._last,
            "series": series,
            "windows": windows,
        }


def _delta_quantile(q: float, delta: Mapping) -> float | None:
    total = delta["count"]
    if not total:
        return None
    bounds = tuple(sorted(delta["buckets"]))
    counts = [delta["buckets"][b] for b in bounds]
    overflow = delta["overflow"]
    lo = delta["min"] if delta["min"] is not None else (
        bounds[0] if bounds else 0.0)
    hi = delta["max"] if delta["max"] is not None else (
        bounds[-1] if bounds else 0.0)
    if not bounds:
        if not overflow:
            return None
        return hi
    return _bucket_quantile(q, bounds, counts, overflow, total, lo, hi)
