"""Zero-dependency metrics: counters, gauges, fixed-bucket histograms.

The observability layer the engine's hot paths report into.  Three metric
kinds, all thread-safe behind one small lock per metric:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a value that goes up and down (active transactions,
  notification queue depth);
* :class:`Histogram` — fixed-bucket distribution with quantile
  *estimation*: an estimated quantile is always inside the bucket the
  true quantile falls in, so its error is bounded by that bucket's width
  (the property the test suite states with hypothesis).

A :class:`MetricsRegistry` owns metrics by name; snapshots are plain
JSON-serialisable dicts so they can ride along in benchmark
``extra_info`` and ``BENCH_obs.json`` without any wire format.  The
:data:`NULL_REGISTRY` hands out shared no-op metrics — the fast path for
code instrumented unconditionally but running without observability
(e.g. overhead baselines, standalone components).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from time import perf_counter
from typing import Iterable, Mapping

#: Default latency buckets: exponential from 1µs to ~16.8s.  25 buckets
#: plus overflow keeps the relative quantile error at 2x worst case.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * 2 ** i for i in range(25)
)

#: Buckets for small-count distributions (rows per transaction, ...).
COUNT_BUCKETS: tuple[float, ...] = tuple(float(2 ** i) for i in range(11))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that moves both ways (depths, active counts)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class _Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: "Histogram") -> None:
        self._hist = hist

    def __enter__(self) -> "_Timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(perf_counter() - self._t0)


class Histogram:
    """Fixed-bucket histogram with rank-based quantile estimation.

    ``buckets`` are the inclusive upper bounds of each bucket, strictly
    increasing; an implicit overflow bucket catches everything above the
    last bound.  Bucket membership: value ``v`` lands in the first bucket
    whose bound is ``>= v`` — i.e. bucket *i* covers
    ``(bound[i-1], bound[i]]``.

    :meth:`quantile` locates the bucket containing the rank
    ``max(1, ceil(q * count))`` (exact, because per-bucket counts are
    exact) and linearly interpolates inside it, clamped to the observed
    min/max.  Estimate and true quantile therefore share a bucket: the
    error is bounded by the bucket width.
    """

    __slots__ = ("name", "bounds", "_counts", "_overflow", "_count",
                 "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str,
                 buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            i = bisect_left(self.bounds, value)
            if i == len(self.bounds):
                self._overflow += 1
            else:
                self._counts[i] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> _Timer:
        """``with hist.time(): ...`` — observe the block's duration."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float | None:
        return None if self._count == 0 else self._min

    @property
    def max(self) -> float | None:
        return None if self._count == 0 else self._max

    def quantile(self, q: float) -> float | None:
        """Estimate the q-quantile (0 <= q <= 1); ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            return _bucket_quantile(
                q, self.bounds, self._counts, self._overflow,
                self._count, self._min, self._max,
            )

    def snapshot(self) -> dict:
        with self._lock:
            entry = {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                # Sparse (bound, count) pairs: only occupied buckets.
                "buckets": [
                    [bound, n]
                    for bound, n in zip(self.bounds, self._counts) if n
                ],
                "overflow": self._overflow,
            }
            for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                entry[label] = (
                    _bucket_quantile(q, self.bounds, self._counts,
                                     self._overflow, self._count,
                                     self._min, self._max)
                    if self._count else None
                )
            return entry

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.bounds)
            self._overflow = 0
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


def _bucket_quantile(q: float, bounds: tuple[float, ...],
                     counts: list[int], overflow: int, total: int,
                     lo_obs: float, hi_obs: float) -> float:
    """Shared quantile core (histogram internals and merged snapshots)."""
    rank = max(1, math.ceil(q * total))
    cumulative = 0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= rank:
            hi = bounds[i]
            lo = bounds[i - 1] if i > 0 else lo_obs
            lo = max(lo, lo_obs)
            hi = min(hi, hi_obs)
            if hi <= lo:
                return lo
            fraction = (rank - cumulative) / n
            return lo + (hi - lo) * fraction
        cumulative += n
    # Rank fell into the overflow bucket (last_bound, +inf), clamped by
    # the observed extremes to (max(last_bound, min), max].  Interpolate
    # by remaining rank just like a finite bucket, so q=0.0 on
    # overflow-only data does not collapse to the maximum; q=1.0 still
    # returns exactly the observed max.
    # Merged snapshots carry sparse buckets: overflow-only data arrives
    # with no finite buckets at all, so the lower clamp falls back to
    # the observed minimum.
    lo = max(bounds[-1], lo_obs) if bounds else lo_obs
    hi = hi_obs
    if overflow <= 0 or hi <= lo:
        return hi
    fraction = (rank - cumulative) / overflow
    return lo + (hi - lo) * fraction


class MetricsRegistry:
    """Named metrics, created on first use, snapshotted as plain dicts.

    Passing ``labels={...}`` to :meth:`counter`/:meth:`gauge`/
    :meth:`histogram` routes through a :class:`~repro.obs.labels.MetricFamily`
    and returns the per-label-set child instead of the base metric; hot
    paths should pre-resolve the family via :meth:`family` once and call
    ``fam.labels(...)`` per event.
    """

    #: Real registries record; the null registry overrides this.
    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._families: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, *, labels: Mapping | None = None) -> Counter:
        if labels is not None:
            return self.family(name, "counter").labels(**dict(labels))
        return self._get(name, Counter)

    def gauge(self, name: str, *, labels: Mapping | None = None) -> Gauge:
        if labels is not None:
            return self.family(name, "gauge").labels(**dict(labels))
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                  *, labels: Mapping | None = None) -> Histogram:
        if labels is not None:
            return self.family(
                name, "histogram", buckets=buckets).labels(**dict(labels))
        return self._get(name, Histogram, buckets)

    def family(self, name: str, kind: str, *, buckets=None,
               max_series: int | None = None):
        """The labelled :class:`~repro.obs.labels.MetricFamily` for ``name``."""
        from .labels import DEFAULT_MAX_SERIES, LABEL_EVICTIONS, MetricFamily
        evictions = self._get(LABEL_EVICTIONS, Counter)
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(
                    self, name, kind, buckets=buckets,
                    max_series=max_series or DEFAULT_MAX_SERIES,
                    evictions=evictions)
                self._families[name] = fam
            elif fam.kind != kind:
                raise TypeError(
                    f"family {name!r} already registered as {fam.kind}, "
                    f"not {kind}")
            return fam

    def _register_series(self, name: str, metric) -> None:
        with self._lock:
            self._metrics[name] = metric

    def _unregister_series(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict]:
        """All metrics as ``{name: {"type": ..., ...}}`` (sorted keys)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


class _NullCounter:
    name = "null"

    def inc(self, n: int = 1) -> None:
        pass

    value = 0

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0}

    def reset(self) -> None:
        pass


class _NullGauge:
    name = "null"

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    value = 0.0

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": 0.0}

    def reset(self) -> None:
        pass


class _NullTimer:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


class _NullHistogram:
    name = "null"
    count = 0
    sum = 0.0
    min = None
    max = None
    _timer = _NullTimer()

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return self._timer

    def quantile(self, q: float) -> None:
        return None

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": 0, "sum": 0.0}

    def reset(self) -> None:
        pass


class NullRegistry:
    """No-op registry: shared inert metrics, empty snapshots.

    The analogue of :data:`repro.faults.injector.NO_FAULTS` — hot paths
    are instrumented unconditionally and this keeps them cheap when
    observability is switched off (overhead baselines).
    """

    enabled = False
    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str, *, labels=None) -> _NullCounter:
        return self._counter

    def gauge(self, name: str, *, labels=None) -> _NullGauge:
        return self._gauge

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS,
                  *, labels=None) -> _NullHistogram:
        return self._histogram

    def family(self, name: str, kind: str, *, buckets=None,
               max_series=None):
        from .labels import _NullFamily
        child = {"counter": self._counter, "gauge": self._gauge,
                 "histogram": self._histogram}[kind]
        return _NullFamily(child)

    def names(self) -> list[str]:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


#: Shared null registry; safe because its metrics hold no state.
NULL_REGISTRY = NullRegistry()


def merge_snapshots(snapshots: Iterable[Mapping[str, dict]]) -> dict:
    """Merge registry snapshots from several databases into one.

    Counters and histogram bucket counts add; gauges add too (a summed
    queue depth over engines is the fleet depth); histogram quantiles
    are recomputed from the merged buckets.  Used by the benchmark
    pipeline, where one bench may create several engines.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            current = merged.get(name)
            if current is None:
                merged[name] = _copy_entry(entry)
            else:
                _merge_entry(current, entry)
    for entry in merged.values():
        if entry["type"] == "histogram" and entry.get("count"):
            bounds = [b for b, __ in entry["buckets"]]
            counts = [n for __, n in entry["buckets"]]
            for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                entry[label] = _bucket_quantile(
                    q, tuple(bounds), counts, entry.get("overflow", 0),
                    entry["count"], entry["min"], entry["max"],
                )
    return dict(sorted(merged.items()))


def _copy_entry(entry: Mapping) -> dict:
    copy = dict(entry)
    if copy.get("type") == "histogram":
        copy["buckets"] = [list(pair) for pair in copy.get("buckets", [])]
    return copy


def _merge_entry(current: dict, entry: Mapping) -> None:
    kind = current["type"]
    if kind != entry["type"]:
        raise ValueError(
            f"cannot merge metric kinds {kind!r} and {entry['type']!r}"
        )
    if kind in ("counter", "gauge"):
        current["value"] += entry["value"]
        return
    current["count"] = current.get("count", 0) + entry.get("count", 0)
    current["sum"] = current.get("sum", 0.0) + entry.get("sum", 0.0)
    for key, pick in (("min", min), ("max", max)):
        ours, theirs = current.get(key), entry.get(key)
        if ours is None:
            current[key] = theirs
        elif theirs is not None:
            current[key] = pick(ours, theirs)
    by_bound = {bound: n for bound, n in current.get("buckets", [])}
    for bound, n in entry.get("buckets", []):
        by_bound[bound] = by_bound.get(bound, 0) + n
    current["buckets"] = [list(p) for p in sorted(by_bound.items())]
    current["overflow"] = current.get("overflow", 0) + entry.get("overflow", 0)


def compact_snapshot(snapshot: Mapping[str, dict]) -> dict:
    """Shrink a snapshot for benchmark ``extra_info`` (no bucket arrays)."""
    compact = {}
    for name, entry in snapshot.items():
        if entry["type"] == "histogram":
            compact[name] = {
                "type": "histogram",
                "count": entry.get("count", 0),
                "p50": entry.get("p50"),
                "p95": entry.get("p95"),
            }
        else:
            compact[name] = {"type": entry["type"], "value": entry["value"]}
    return compact
