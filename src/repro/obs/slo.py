"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLOSpec` states an objective over one latency histogram —
"99% of durable keystrokes fsync within 65ms" — and the
:class:`SLOEvaluator` measures it over the telemetry rings using the
standard multi-window burn-rate method: the *bad-event fraction* in a
trailing window, divided by the error budget (``1 - target``), is the
**burn rate** — 1.0 means the budget is being spent exactly at the
sustainable pace, higher means it runs out early.  A spec *breaches*
when **both** its fast and slow windows burn above ``burn_threshold``:
the slow window proves the problem is real, the fast window proves it is
still happening.

Results are exported as labelled ``slo.*`` gauges
(``slo.burn_rate{slo=...,window=fast}``, ``slo.breached{slo=...}``) so
scrapes and dashboards see them like any other metric, and
``tools/smoke_bench.py`` gates CI on a deterministic synthetic scenario.

Objectives should sit on a histogram bucket bound (the default latency
buckets are ``1e-6 * 2**i``), making the good/bad split exact; off-bound
objectives are rounded down to the nearest bound by construction of the
cumulative bucket sum, i.e. evaluated conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: ~65ms / ~33ms: DEFAULT_LATENCY_BUCKETS bounds (1e-6 * 2**16, 2**15).
_KEYSTROKE_BOUND = 1e-6 * 2 ** 16
_REPLICATION_BOUND = 1e-6 * 2 ** 15
#: ~262ms: a follower may trail its leader by a few shipping round
#: trips, but reads served from a replica must stay near-real-time.
_APPLY_LAG_BOUND = 1e-6 * 2 ** 18
#: ~2.1s: the paper promises derived data (dynamic folders, search)
#: fresh "within seconds"; commit-to-absorption age must stay under it.
_STALENESS_BOUND = 1e-6 * 2 ** 21


@dataclass(frozen=True)
class SLOSpec:
    """One latency objective over a histogram metric."""

    name: str                    # gauge label value, e.g. "durable_keystroke"
    metric: str                  # histogram to evaluate, e.g. "wal.fsync_seconds"
    objective: float             # good means value <= objective (seconds)
    target: float = 0.99         # required good fraction
    fast_window: float = 60.0    # seconds
    slow_window: float = 300.0   # seconds
    burn_threshold: float = 2.0  # both windows above this => breach

    @property
    def budget(self) -> float:
        return 1.0 - self.target


#: Shipped objectives: the paper's two headline latencies, the
#: WAL-shipping lag bound, and derived-data freshness (no-data specs —
#: e.g. apply lag on a non-follower, staleness with no feed consumers —
#: never burn or breach).
DEFAULT_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec("durable_keystroke", "wal.fsync_seconds",
            objective=_KEYSTROKE_BOUND),
    SLOSpec("replication_visibility", "collab.replication_seconds",
            objective=_REPLICATION_BOUND),
    SLOSpec("replica_apply_lag", "repl.apply_lag_seconds",
            objective=_APPLY_LAG_BOUND),
    SLOSpec("derived_staleness", "feed.staleness_seconds",
            objective=_STALENESS_BOUND),
)


class SLOEvaluator:
    """Evaluates specs over a :class:`~repro.obs.timeseries.TelemetryStore`
    and mirrors the results into labelled ``slo.*`` gauges."""

    def __init__(self, store, specs: Iterable[SLOSpec] = DEFAULT_SLOS, *,
                 registry=None) -> None:
        self.store = store
        self.specs = tuple(specs)
        registry = registry if registry is not None else store.registry
        self._burn = registry.family("slo.burn_rate", "gauge")
        self._error = registry.family("slo.error_rate", "gauge")
        self._breached = registry.family("slo.breached", "gauge")

    def evaluate(self, *, now: float | None = None) -> list[dict]:
        """One result dict per spec; gauges updated as a side effect."""
        results = []
        for spec in self.specs:
            fast = self._window_burn(spec, spec.fast_window, now)
            slow = self._window_burn(spec, spec.slow_window, now)
            breached = bool(
                fast is not None and slow is not None
                and fast["burn"] > spec.burn_threshold
                and slow["burn"] > spec.burn_threshold)
            self._burn.labels(slo=spec.name, window="fast").set(
                fast["burn"] if fast else 0.0)
            self._burn.labels(slo=spec.name, window="slow").set(
                slow["burn"] if slow else 0.0)
            self._error.labels(slo=spec.name).set(
                slow["error_rate"] if slow else 0.0)
            self._breached.labels(slo=spec.name).set(1.0 if breached else 0.0)
            results.append({
                "slo": spec.name,
                "metric": spec.metric,
                "objective": spec.objective,
                "target": spec.target,
                "burn_threshold": spec.burn_threshold,
                "fast": fast,
                "slow": slow,
                "breached": breached,
            })
        return results

    def _window_burn(self, spec: SLOSpec, window: float,
                     now: float | None) -> dict | None:
        delta = self.store.histogram_delta(spec.metric, window, now=now)
        if delta is None or not delta["count"]:
            return None
        good = sum(n for bound, n in delta["buckets"].items()
                   if bound <= spec.objective)
        bad = max(0, delta["count"] - good)
        error_rate = bad / delta["count"]
        return {
            "window": window,
            "count": delta["count"],
            "bad": bad,
            "error_rate": error_rate,
            "burn": error_rate / spec.budget if spec.budget > 0 else 0.0,
        }
