"""Engine-wide observability: metrics registry + trace spans.

The paper's performance story ("very fast transactions for all editing
tasks", §2) needs to be measurable from inside the system.  This package
is the zero-dependency instrumentation layer every subsystem reports
into:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  with bounded-error quantile estimation;
* :mod:`repro.obs.tracing` — spans with context propagation (including
  explicit cross-session trace contexts) and a no-op fast path when
  nobody listens;
* :mod:`repro.obs.export` — bounded trace buffer, JSONL / Chrome
  trace-event export, slow-op log, and the ``repro trace`` /
  ``repro top`` renderings;
* :mod:`repro.obs.catalogue` — the closed set of metric names, the
  contract the bench snapshot validator enforces.

One :class:`Observability` instance rides on each
:class:`~repro.db.engine.Database`; the collab server and search engine
share the database's, so ``Database.metrics_snapshot()`` covers
txn/WAL/lock/collab/search in one call.  ``Observability(enabled=False)``
swaps in inert metrics for overhead baselines.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterator

from .catalogue import (
    LABELLED_FAMILIES,
    METRIC_CATALOGUE,
    REQUIRED_METRICS,
    missing_required,
    unknown_names,
)
from .labels import (
    DEFAULT_MAX_SERIES,
    LABEL_EVICTIONS,
    MetricFamily,
    labelled_name,
    split_labelled,
)
from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    compact_snapshot,
    merge_snapshots,
)
from .export import (
    Trace,
    TraceBuffer,
    chrome_trace,
    prometheus_text,
    render_top,
    render_trace,
    span_to_dict,
    spans_to_jsonl,
    validate_chrome_trace,
)
from .health import (
    DEFAULT_THRESHOLDS,
    HealthThresholds,
    evaluate_health,
)
from .render import (
    describe,
    render_dash,
    render_health,
    render_snapshot,
    render_trends,
)
from .slo import DEFAULT_SLOS, SLOEvaluator, SLOSpec
from .timeseries import (
    DEFAULT_WINDOWS,
    TELEMETRY_SCHEMA,
    TelemetryStore,
    window_label,
)
from .tracing import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "DEFAULT_SLOS",
    "DEFAULT_THRESHOLDS",
    "DEFAULT_WINDOWS",
    "LABELLED_FAMILIES",
    "LABEL_EVICTIONS",
    "METRIC_CATALOGUE",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "HealthThresholds",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "Observability",
    "REQUIRED_METRICS",
    "SLOEvaluator",
    "SLOSpec",
    "Span",
    "TELEMETRY_SCHEMA",
    "TelemetryStore",
    "Trace",
    "TraceBuffer",
    "Tracer",
    "chrome_trace",
    "collecting",
    "compact_snapshot",
    "describe",
    "evaluate_health",
    "labelled_name",
    "merge_snapshots",
    "missing_required",
    "prometheus_text",
    "render_dash",
    "render_health",
    "render_snapshot",
    "render_top",
    "render_trace",
    "render_trends",
    "span_to_dict",
    "spans_to_jsonl",
    "split_labelled",
    "unknown_names",
    "validate_chrome_trace",
    "window_label",
]


#: Callbacks invoked with every new enabled Observability (see
#: :func:`collecting`); guarded by a lock for threaded creators.
_collectors: list[Callable[["Observability"], None]] = []
_collectors_lock = threading.Lock()


class Observability:
    """One registry + one tracer, shared by everything on a database."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry() if enabled else NULL_REGISTRY
        self.tracer = Tracer(self.registry)
        if enabled:
            with _collectors_lock:
                collectors = list(_collectors)
            for collector in collectors:
                collector(self)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Observability(enabled={self.enabled}, "
                f"metrics={len(self.registry.names())})")


@contextlib.contextmanager
def collecting() -> Iterator[list[Observability]]:
    """Collect every enabled :class:`Observability` created in the block.

    The benchmark harness wraps each bench in this so snapshots from
    every engine the bench creates — fixtures and inline — can be merged
    into its ``extra_info`` and the ``BENCH_obs.json`` trajectory.
    """
    created: list[Observability] = []
    with _collectors_lock:
        _collectors.append(created.append)
    try:
        yield created
    finally:
        with _collectors_lock:
            _collectors.remove(created.append)
