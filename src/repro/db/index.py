"""Secondary indexes.

Two kinds, both mapping a single column value to row ids:

* :class:`HashIndex` — dict-backed, O(1) equality probes.  This is what the
  TeNDaX schema uses for character-id and document-id lookups, the hot path
  of every keystroke transaction.
* :class:`OrderedIndex` — a blocked sorted list (see
  :mod:`repro.db.sortedlist`), supporting range probes (timestamps,
  sizes) and ordered iteration with ~O(√n) maintenance.

Indexes reflect *committed* data only; uncommitted changes are overlaid by
the query executor for the owning transaction (see :mod:`repro.db.query`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..errors import UniqueViolation


class Index:
    """Interface shared by both index kinds."""

    kind = "abstract"

    def __init__(self, name: str, column: str, *, unique: bool = False) -> None:
        self.name = name
        self.column = column
        self.unique = unique

    def add(self, key: Any, rowid: int) -> None:
        """Index ``rowid`` under ``key`` (``None`` keys are skipped)."""
        raise NotImplementedError

    def remove(self, key: Any, rowid: int) -> None:
        """Drop the ``(key, rowid)`` entry if present."""
        raise NotImplementedError

    def probe_eq(self, key: Any) -> Iterator[int]:
        """Row ids whose key equals ``key``."""
        raise NotImplementedError

    def probe_in(self, keys: Iterable[Any]) -> Iterator[int]:
        """Row ids whose key is any of ``keys`` (deduplicated)."""
        seen: set[int] = set()
        for key in keys:
            for rowid in self.probe_eq(key):
                if rowid not in seen:
                    seen.add(rowid)
                    yield rowid

    def supports_range(self) -> bool:
        """Whether :meth:`probe_range` is available."""
        return False

    def __len__(self) -> int:
        raise NotImplementedError


class HashIndex(Index):
    """Equality-only index: ``value -> set of row ids``.

    ``None`` keys are never indexed (NULL never matches an equality probe
    with a non-null constant, and explicit IS NULL queries fall back to a
    scan).
    """

    kind = "hash"

    def __init__(self, name: str, column: str, *, unique: bool = False) -> None:
        super().__init__(name, column, unique=unique)
        self._map: dict[Any, set[int]] = {}
        self._size = 0

    def add(self, key: Any, rowid: int) -> None:
        """Index ``rowid`` under ``key``; enforces uniqueness."""
        if key is None:
            return
        bucket = self._map.get(key)
        if bucket is None:
            self._map[key] = {rowid}
            self._size += 1
        else:
            if self.unique and bucket:
                raise UniqueViolation(
                    f"index {self.name!r}: duplicate key {key!r}"
                )
            if rowid not in bucket:
                bucket.add(rowid)
                self._size += 1

    def remove(self, key: Any, rowid: int) -> None:
        """Drop the entry if present (absent entries are a no-op)."""
        if key is None:
            return
        bucket = self._map.get(key)
        if bucket is not None and rowid in bucket:
            bucket.remove(rowid)
            self._size -= 1
            if not bucket:
                del self._map[key]

    def probe_eq(self, key: Any) -> Iterator[int]:
        """Row ids stored under exactly ``key``."""
        if key is None:
            return iter(())
        return iter(self._map.get(key, ()))

    def keys(self) -> Iterator[Any]:
        """Iterate the distinct indexed keys."""
        return iter(self._map.keys())

    def __len__(self) -> int:
        return self._size


class OrderedIndex(Index):
    """Sorted index supporting range probes and ordered iteration.

    Entries are ``(key, rowid)`` pairs kept in a
    :class:`~repro.db.sortedlist.BlockedSortedList`, so inserts/removals
    cost ~O(√n) instead of the O(n) memmove of a flat sorted array — this
    matters because ordered indexes (e.g. on the access-log timestamp)
    are maintained on the keystroke path.  All keys of one index must be
    mutually comparable (the schema's typing guarantees this per column).
    """

    kind = "ordered"

    def __init__(self, name: str, column: str, *, unique: bool = False) -> None:
        super().__init__(name, column, unique=unique)
        from .sortedlist import BlockedSortedList
        self._entries = BlockedSortedList()

    def add(self, key: Any, rowid: int) -> None:
        """Index ``rowid`` under ``key``; enforces uniqueness."""
        if key is None:
            return
        if self.unique and next(self.probe_eq(key), None) is not None:
            raise UniqueViolation(
                f"index {self.name!r}: duplicate key {key!r}"
            )
        self._entries.add((key, rowid))

    def remove(self, key: Any, rowid: int) -> None:
        """Drop the ``(key, rowid)`` entry if present."""
        if key is None:
            return
        self._entries.remove((key, rowid))

    def probe_eq(self, key: Any) -> Iterator[int]:
        """Row ids whose key equals ``key``, in entry order."""
        if key is None:
            return
        for k, rowid in self._entries.irange(low=(key,)):
            if k != key:
                break
            yield rowid

    def probe_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield row ids whose key lies in the given (possibly open) range."""
        start = None if low is None else (low,)
        for k, rowid in self._entries.irange(low=start):
            if (low is not None and not low_inclusive and k == low):
                continue
            if high is not None:
                if high_inclusive:
                    if k > high:
                        break
                elif k >= high:
                    break
            yield rowid

    def supports_range(self) -> bool:
        """Ordered indexes answer range probes."""
        return True

    def iter_ordered(self, *, reverse: bool = False) -> Iterator[tuple[Any, int]]:
        """Iterate ``(key, rowid)`` in key order."""
        if reverse:
            return iter(reversed(self._entries))
        return iter(self._entries)

    def min_key(self) -> Any:
        """Smallest indexed key (``None`` when empty)."""
        entry = self._entries.min()
        return None if entry is None else entry[0]

    def max_key(self) -> Any:
        """Largest indexed key (``None`` when empty)."""
        entry = self._entries.max()
        return None if entry is None else entry[0]

    def __len__(self) -> int:
        return len(self._entries)
