"""Table schemas and typed values.

The engine is typed: every column declares one of the :class:`ColumnType`
members and values are validated on insert/update.  Types are deliberately
the small set the TeNDaX schema needs — integers, floats, strings, booleans,
bytes, timestamps, OIDs and JSON-ish blobs for user-defined properties.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..errors import (
    NotNullViolation,
    SchemaError,
    TypeMismatchError,
    UnknownColumnError,
)
from ..ids import Oid


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    BYTES = "bytes"
    TIMESTAMP = "timestamp"
    OID = "oid"
    JSON = "json"

    def validate(self, value: Any) -> Any:
        """Validate (and lightly coerce) ``value`` for this type.

        Returns the stored representation.  Raises
        :class:`~repro.errors.TypeMismatchError` on mismatch.  ``None`` is
        handled by the caller (nullability is a column property).
        """
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(f"expected int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"expected float, got {value!r}")
            return float(value)
        if self is ColumnType.STR:
            if not isinstance(value, str):
                raise TypeMismatchError(f"expected str, got {value!r}")
            return value
        if self is ColumnType.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(f"expected bool, got {value!r}")
            return value
        if self is ColumnType.BYTES:
            if not isinstance(value, (bytes, bytearray)):
                raise TypeMismatchError(f"expected bytes, got {value!r}")
            return bytes(value)
        if self is ColumnType.TIMESTAMP:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"expected timestamp, got {value!r}")
            return float(value)
        if self is ColumnType.OID:
            if isinstance(value, Oid):
                return value
            if isinstance(value, str):
                return Oid.parse(value)
            raise TypeMismatchError(f"expected Oid, got {value!r}")
        if self is ColumnType.JSON:
            _check_jsonish(value)
            return value
        raise AssertionError(f"unhandled type {self}")  # pragma: no cover


def _check_jsonish(value: Any, _depth: int = 0) -> None:
    """Ensure ``value`` is composed only of JSON-compatible pieces."""
    if _depth > 32:
        raise TypeMismatchError("json value nested too deeply")
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check_jsonish(item, _depth + 1)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeMismatchError(f"json object keys must be str, got {key!r}")
            _check_jsonish(item, _depth + 1)
        return
    raise TypeMismatchError(f"not a json-compatible value: {value!r}")


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: ColumnType
    nullable: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.default is not None:
            object.__setattr__(self, "default", self.type.validate(self.default))

    def validate(self, value: Any) -> Any:
        """Validate ``value`` for this column, applying default/null rules."""
        if value is None:
            if self.default is not None:
                return self.default
            if self.nullable:
                return None
            raise NotNullViolation(f"column {self.name!r} is not nullable")
        try:
            return self.type.validate(value)
        except TypeMismatchError as exc:
            raise TypeMismatchError(f"column {self.name!r}: {exc}") from None


class TableSchema:
    """An ordered collection of columns plus key/index declarations.

    Parameters
    ----------
    name:
        Table name (an identifier).
    columns:
        Column definitions in storage order.
    key:
        Name of the column serving as the (unique, non-null) logical key.
        Optional; tables always also have an engine-assigned integer row id.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        key: str | None = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [col.name for col in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        if key is not None and key not in self._by_name:
            raise UnknownColumnError(f"key column {key!r} not in table {name!r}")
        self.key = key
        if key is not None and self.columns[self._by_name[key]].nullable:
            raise SchemaError(f"key column {key!r} must not be nullable")

    # -- introspection ------------------------------------------------------

    def column_names(self) -> tuple[str, ...]:
        """Column names in storage order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """Whether the schema defines ``name``."""
        return name in self._by_name

    def column_index(self, name: str) -> int:
        """Return the storage position of ``name`` or raise."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column(self, name: str) -> Column:
        """The :class:`Column` definition for ``name``."""
        return self.columns[self.column_index(name)]

    # -- value handling -----------------------------------------------------

    def make_row(self, values: Mapping[str, Any]) -> tuple:
        """Validate a mapping of column values into a storage tuple.

        Missing columns receive their default (or ``None`` if nullable);
        unknown keys raise.
        """
        for key in values:
            if key not in self._by_name:
                raise UnknownColumnError(
                    f"no column {key!r} in table {self.name!r}"
                )
        return tuple(
            col.validate(values.get(col.name)) for col in self.columns
        )

    def merge_row(self, row: tuple, updates: Mapping[str, Any]) -> tuple:
        """Return ``row`` with ``updates`` applied and validated."""
        out = list(row)
        for key, value in updates.items():
            idx = self.column_index(key)
            col = self.columns[idx]
            if value is None and not col.nullable:
                raise NotNullViolation(f"column {key!r} is not nullable")
            out[idx] = None if value is None else col.type.validate(value)
        return tuple(out)

    def row_dict(self, row: tuple) -> dict[str, Any]:
        """Convert a storage tuple into a column-name mapping."""
        return {col.name: row[i] for i, col in enumerate(self.columns)}

    def key_of(self, row: tuple) -> Any:
        """Return the logical key value of ``row`` (requires ``key``)."""
        if self.key is None:
            raise SchemaError(f"table {self.name!r} has no key column")
        return row[self._by_name[self.key]]

    def project(self, row: tuple, names: Iterable[str]) -> tuple:
        """Return the values of ``names`` from ``row`` in the given order."""
        return tuple(row[self.column_index(n)] for n in names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{c.name}:{c.type.value}" for c in self.columns)
        return f"TableSchema({self.name!r}, [{cols}], key={self.key!r})"


def column(name: str, type_: ColumnType | str, *, nullable: bool = False,
           default: Any = None) -> Column:
    """Convenience factory accepting the type as a string (``"int"`` ...)."""
    if isinstance(type_, str):
        type_ = ColumnType(type_)
    return Column(name, type_, nullable=nullable, default=default)
