"""System catalog: metadata about tables and indexes.

A lightweight, queryable description of the engine's schema objects —
enough for tools (and tests) to introspect what exists, mirroring a DBMS's
``information_schema``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Database


@dataclass(frozen=True)
class TableInfo:
    name: str
    columns: tuple[str, ...]
    column_types: tuple[str, ...]
    key: str | None
    row_count: int
    index_names: tuple[str, ...]


@dataclass(frozen=True)
class IndexInfo:
    name: str
    table: str
    column: str
    kind: str
    unique: bool
    entries: int


class Catalog:
    """Read-only view over a database's schema objects."""

    def __init__(self, db: "Database") -> None:
        self._db = db

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._db.tables())

    def table_info(self, name: str) -> TableInfo:
        """Schema + row count + indexes of one table."""
        table = self._db.table(name)
        schema = table.schema
        return TableInfo(
            name=schema.name,
            columns=schema.column_names(),
            column_types=tuple(c.type.value for c in schema.columns),
            key=schema.key,
            row_count=table.row_count(),
            index_names=tuple(sorted(table.indexes())),
        )

    def iter_tables(self) -> Iterator[TableInfo]:
        """Iterate :class:`TableInfo` for every table."""
        for name in self.table_names():
            yield self.table_info(name)

    def iter_indexes(self, table: str | None = None) -> Iterator[IndexInfo]:
        """Iterate :class:`IndexInfo`, optionally for one table."""
        names = [table] if table is not None else self.table_names()
        for table_name in names:
            table_obj = self._db.table(table_name)
            for index in table_obj.indexes().values():
                yield IndexInfo(
                    name=index.name,
                    table=table_name,
                    column=index.column,
                    kind=index.kind,
                    unique=index.unique,
                    entries=len(index),
                )

    def total_rows(self) -> int:
        """Committed rows across all tables (a cheap size metric)."""
        return sum(self._db.table(n).row_count() for n in self._db.tables())
