"""Heap tables with versioned rows (committed chain + one pending image).

Writers run read-committed isolation.  Each row has:

* a *committed* image — what every transaction except the writer sees,
* at most one *pending* image owned by the transaction currently holding the
  row's exclusive lock (a new row, an updated row, or a delete tombstone),
* and a small *version chain*: superseded committed images stamped with the
  commit LSN that replaced them, kept so snapshot (read-only) transactions
  can read the newest version ``<=`` their pinned LSN without any locks
  (see ``docs/INTERNALS.md``, "MVCC & snapshots").

The chain is lazy: a row that was only ever inserted carries no history at
all — only rows that have actually been updated or deleted while older
snapshots may still need them pay any memory.  The engine's GC watermark
(:meth:`gc_versions`) truncates chains below the oldest live snapshot.

Indexes cover committed data only; the query executor overlays the owning
transaction's pending changes (:mod:`repro.db.query`).  Lock acquisition is
the transaction layer's job — the table itself is mechanical and trusts its
callers to hold the right locks.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from ..errors import (
    DatabaseError,
    RowNotFoundError,
    SchemaError,
    UniqueViolation,
)
from .index import HashIndex, Index, OrderedIndex
from .schema import TableSchema


class _Tombstone:
    """Sentinel pending image meaning "this row is deleted"."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


@dataclass
class Pending:
    """A staged, uncommitted change to one row."""

    owner: int                 # transaction id
    image: Any                 # tuple (new row) or TOMBSTONE
    was_insert: bool           # row did not exist in committed state


class Table:
    """One table: schema, rows, and secondary indexes."""

    def __init__(self, schema: TableSchema, metrics=None) -> None:
        self.schema = schema
        self._committed: dict[int, tuple] = {}
        self._pending: dict[int, Pending] = {}
        #: rowid -> commit LSN of the *current* committed image.  Absent
        #: means "since before version tracking" and compares as 0, so
        #: loaded/recovered rows are visible to every snapshot.
        self._version_lsn: dict[int, int] = {}
        #: rowid -> older versions only, ``[(commit_lsn, image), ...]``
        #: ascending by LSN.  A deleted row keeps its chain here with a
        #: trailing ``(delete_lsn, TOMBSTONE)`` entry until GC.
        self._history: dict[int, list[tuple[int, Any]]] = {}
        #: Duck-typed metric bundle (``TxnMetrics``); only
        #: ``versions_live`` is used here.  None when unobserved.
        self._metrics = metrics
        #: (unique column, value) -> rowid of the pending row claiming it.
        #: Keeps uniqueness checks O(1) instead of scanning all pending
        #: rows (which made bulk loads quadratic).
        self._pending_keys: dict[tuple, int] = {}
        self._indexes: dict[str, Index] = {}
        self._rowid_counter = itertools.count(1)
        self._lock = threading.RLock()
        if schema.key is not None:
            self.create_index(f"{schema.name}_key", schema.key,
                              kind="hash", unique=True)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_index(self, name: str, column: str, *, kind: str = "hash",
                     unique: bool = False) -> Index:
        """Create a secondary index over committed rows.

        ``kind`` is ``"hash"`` or ``"ordered"``.
        """
        with self._lock:
            if name in self._indexes:
                raise SchemaError(f"index {name!r} already exists")
            self.schema.column_index(column)  # validates the column
            if kind == "hash":
                index: Index = HashIndex(name, column, unique=unique)
            elif kind == "ordered":
                index = OrderedIndex(name, column, unique=unique)
            else:
                raise SchemaError(f"unknown index kind {kind!r}")
            pos = self.schema.column_index(column)
            for rowid, row in self._committed.items():
                index.add(row[pos], rowid)
            self._indexes[name] = index
            return index

    def drop_index(self, name: str) -> None:
        """Remove a secondary index by name."""
        with self._lock:
            if name not in self._indexes:
                raise SchemaError(f"no index {name!r}")
            del self._indexes[name]

    def indexes(self) -> dict[str, Index]:
        """Snapshot of the table's indexes by name."""
        with self._lock:
            return dict(self._indexes)

    def index_on(self, column: str, *, need_range: bool = False) -> Index | None:
        """Return some index over ``column`` (preferring ordered if asked)."""
        with self._lock:
            best: Index | None = None
            for index in self._indexes.values():
                if index.column != column:
                    continue
                if need_range and not index.supports_range():
                    continue
                if best is None or (index.supports_range() and
                                    not best.supports_range()):
                    best = index
            return best

    # ------------------------------------------------------------------
    # Staging (called by Transaction with locks held)
    # ------------------------------------------------------------------

    def next_rowid(self) -> int:
        """Allocate a fresh row id."""
        return next(self._rowid_counter)

    def stage_insert(self, txn_id: int, values: Mapping[str, Any],
                     rowid: int | None = None) -> tuple[int, tuple]:
        """Stage a new row; returns ``(rowid, stored_row)``."""
        row = self.schema.make_row(values)
        with self._lock:
            if rowid is None:
                rowid = self.next_rowid()
            elif rowid in self._committed or rowid in self._pending:
                raise DatabaseError(f"rowid {rowid} already in use")
            self._check_unique(txn_id, row, exclude_rowid=rowid)
            self._pending[rowid] = Pending(txn_id, row, was_insert=True)
            self._register_pending_keys(rowid, row)
        return rowid, row

    def stage_update(self, txn_id: int, rowid: int,
                     updates: Mapping[str, Any]) -> tuple:
        """Stage an update; returns the full new row image."""
        with self._lock:
            base = self._visible_for_write(txn_id, rowid)
            row = self.schema.merge_row(base, updates)
            self._check_unique(txn_id, row, exclude_rowid=rowid)
            pending = self._pending.get(rowid)
            was_insert = pending.was_insert if pending else False
            if pending is not None and pending.image is not TOMBSTONE:
                self._unregister_pending_keys(rowid, pending.image)
            self._pending[rowid] = Pending(txn_id, row, was_insert)
            self._register_pending_keys(rowid, row)
        return row

    def stage_delete(self, txn_id: int, rowid: int) -> tuple:
        """Stage a delete; returns the row image being deleted."""
        with self._lock:
            base = self._visible_for_write(txn_id, rowid)
            pending = self._pending.get(rowid)
            was_insert = pending.was_insert if pending else False
            if pending is not None and pending.image is not TOMBSTONE:
                self._unregister_pending_keys(rowid, pending.image)
            self._pending[rowid] = Pending(txn_id, TOMBSTONE, was_insert)
        return base

    def _visible_for_write(self, txn_id: int, rowid: int) -> tuple:
        pending = self._pending.get(rowid)
        if pending is not None:
            if pending.owner != txn_id:
                # The transaction layer should have blocked on the lock.
                raise DatabaseError(
                    f"row {rowid} has a pending change from txn "
                    f"{pending.owner}; lock protocol violated"
                )
            if pending.image is TOMBSTONE:
                raise RowNotFoundError(
                    f"row {rowid} deleted in this transaction"
                )
            return pending.image
        try:
            return self._committed[rowid]
        except KeyError:
            raise RowNotFoundError(
                f"no row {rowid} in table {self.schema.name!r}"
            ) from None

    def _check_unique(self, txn_id: int, row: tuple, *,
                      exclude_rowid: int) -> None:
        """Pre-commit uniqueness check against committed + pending rows.

        Cross-transaction races on the same key are prevented by the key
        lock the transaction layer takes before staging; pending claims
        are tracked in ``_pending_keys`` so this check is O(1) per index.
        """
        with self._lock:
            for index in self._indexes.values():
                if not index.unique:
                    continue
                pos = self.schema.column_index(index.column)
                key = row[pos]
                if key is None:
                    continue
                claimer = self._pending_keys.get((index.column, key))
                if claimer is not None and claimer != exclude_rowid:
                    raise UniqueViolation(
                        f"table {self.schema.name!r}: duplicate value "
                        f"{key!r} for unique column {index.column!r}"
                    )
                for rowid in index.probe_eq(key):
                    if rowid == exclude_rowid:
                        continue
                    pending = self._pending.get(rowid)
                    if pending is not None and (
                            pending.image is TOMBSTONE
                            or pending.image[pos] != key):
                        continue  # deleted / moved away: key being freed
                    raise UniqueViolation(
                        f"table {self.schema.name!r}: duplicate value "
                        f"{key!r} for unique column {index.column!r}"
                    )

    def _register_pending_keys(self, rowid: int, row: tuple) -> None:
        for index in self._indexes.values():
            if index.unique:
                key = row[self.schema.column_index(index.column)]
                if key is not None:
                    self._pending_keys[(index.column, key)] = rowid

    def _unregister_pending_keys(self, rowid: int, row: tuple) -> None:
        for index in self._indexes.values():
            if index.unique:
                key = row[self.schema.column_index(index.column)]
                if key is not None:
                    entry = (index.column, key)
                    if self._pending_keys.get(entry) == rowid:
                        del self._pending_keys[entry]

    # ------------------------------------------------------------------
    # Commit / rollback (called by Transaction)
    # ------------------------------------------------------------------

    def commit_row(self, txn_id: int, rowid: int,
                   commit_lsn: int = 0
                   ) -> tuple[str, tuple | None, tuple | None]:
        """Promote the pending image of ``rowid`` to committed.

        ``commit_lsn`` stamps the new version (the committing
        transaction's COMMIT record LSN); the superseded image, if any,
        is pushed onto the row's version chain so open snapshots keep
        reading it.  Returns ``(change_kind, new_row, old_row)`` where
        kind is ``"insert"``, ``"update"`` or ``"delete"`` for the
        commit notification; ``old_row`` is the superseded committed
        image (the *before-image* carried by changefeed delete/update
        events), ``None`` on insert.
        """
        with self._lock:
            pending = self._pending.pop(rowid, None)
            if pending is None or pending.owner != txn_id:
                raise DatabaseError(
                    f"txn {txn_id} has no pending change on row {rowid}"
                )
            if pending.image is not TOMBSTONE:
                self._unregister_pending_keys(rowid, pending.image)
            old = self._committed.get(rowid)
            if pending.image is TOMBSTONE:
                if old is not None:
                    self._unindex_row(rowid, old)
                    del self._committed[rowid]
                    self._push_version(rowid, self._version_lsn.pop(rowid, 0),
                                       old)
                    self._push_version(rowid, commit_lsn, TOMBSTONE)
                    return "delete", None, old
                return "noop", None, None  # insert+delete inside one txn
            if old is not None:
                self._unindex_row(rowid, old)
                self._push_version(rowid, self._version_lsn.get(rowid, 0),
                                   old)
                kind = "update"
            else:
                kind = "insert"
            self._committed[rowid] = pending.image
            self._version_lsn[rowid] = commit_lsn
            self._index_row(rowid, pending.image)
            return kind, pending.image, old

    def _push_version(self, rowid: int, lsn: int, image: Any) -> None:
        """Append one superseded version (caller holds ``_lock``)."""
        self._history.setdefault(rowid, []).append((lsn, image))
        if self._metrics is not None:
            self._metrics.versions_live.inc()

    def apply_replica_row(self, rowid: int, values: Mapping[str, Any],
                          commit_lsn: int) -> tuple[str, tuple, tuple | None]:
        """Install a committed row shipped from a leader (replication).

        Like :meth:`commit_row` without the pending stage — the follower
        never staged anything, it applies the leader's committed image
        directly.  The superseded image (if any) is pushed onto the
        version chain stamped with its old commit LSN, so replica
        snapshot readers pinned below ``commit_lsn`` keep their
        consistent view while the apply races past them.  Returns
        ``(kind, row, old_row)`` for the change notification.
        """
        row = self.schema.make_row(values)
        with self._lock:
            old = self._committed.get(rowid)
            if old is not None:
                self._unindex_row(rowid, old)
                self._push_version(rowid, self._version_lsn.get(rowid, 0),
                                   old)
                kind = "update"
            else:
                kind = "insert"
            self._committed[rowid] = row
            self._version_lsn[rowid] = commit_lsn
            self._index_row(rowid, row)
            # Promotion makes this table writable: keep rowid allocation
            # ahead of everything the leader ever assigned.
            self._bump_rowid(rowid)
            return kind, row, old

    def apply_replica_delete(self, rowid: int, commit_lsn: int
                             ) -> tuple[str, tuple | None, tuple | None]:
        """Remove a committed row shipped from a leader (replication).

        The deleted image stays on the version chain under its old LSN
        with a ``commit_lsn``-stamped tombstone after it, exactly as
        :meth:`commit_row` leaves a local delete.
        """
        with self._lock:
            old = self._committed.pop(rowid, None)
            if old is None:
                # insert+delete within one shipped txn
                return "noop", None, None
            self._unindex_row(rowid, old)
            self._push_version(rowid, self._version_lsn.pop(rowid, 0), old)
            self._push_version(rowid, commit_lsn, TOMBSTONE)
            return "delete", None, old

    def rollback_row(self, txn_id: int, rowid: int) -> None:
        """Discard the pending image of ``rowid`` (abort path)."""
        with self._lock:
            pending = self._pending.get(rowid)
            if pending is not None and pending.owner == txn_id:
                if pending.image is not TOMBSTONE:
                    self._unregister_pending_keys(rowid, pending.image)
                del self._pending[rowid]

    def _index_row(self, rowid: int, row: tuple) -> None:
        for index in self._indexes.values():
            pos = self.schema.column_index(index.column)
            index.add(row[pos], rowid)

    def _unindex_row(self, rowid: int, row: tuple) -> None:
        for index in self._indexes.values():
            pos = self.schema.column_index(index.column)
            index.remove(row[pos], rowid)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read(self, rowid: int, txn_id: int | None = None) -> tuple | None:
        """Return the row visible to ``txn_id`` (or committed state)."""
        with self._lock:
            pending = self._pending.get(rowid)
            if pending is not None and pending.owner == txn_id:
                return None if pending.image is TOMBSTONE else pending.image
            return self._committed.get(rowid)

    def get(self, rowid: int, txn_id: int | None = None) -> tuple:
        """Like :meth:`read` but raises when the row is absent."""
        row = self.read(rowid, txn_id)
        if row is None:
            raise RowNotFoundError(
                f"no row {rowid} in table {self.schema.name!r}"
            )
        return row

    def committed_items(self) -> Iterator[tuple[int, tuple]]:
        """Iterate ``(rowid, row)`` over committed rows (snapshot)."""
        with self._lock:
            return iter(list(self._committed.items()))

    # ------------------------------------------------------------------
    # Snapshot (MVCC) reads — no LockManager involvement, ever
    # ------------------------------------------------------------------

    def snapshot_read(self, rowid: int, snapshot_lsn: int) -> tuple | None:
        """The newest version of ``rowid`` committed at or before
        ``snapshot_lsn`` (``None`` if the row did not exist then)."""
        with self._lock:
            return self._snapshot_read_locked(rowid, snapshot_lsn)

    def _snapshot_read_locked(self, rowid: int,
                              snapshot_lsn: int) -> tuple | None:
        row = self._committed.get(rowid)
        if row is not None and self._version_lsn.get(rowid, 0) <= snapshot_lsn:
            return row
        for lsn, image in reversed(self._history.get(rowid, ())):
            if lsn <= snapshot_lsn:
                return None if image is TOMBSTONE else image
        return None

    def snapshot_items(self, snapshot_lsn: int) -> Iterator[tuple[int, tuple]]:
        """Iterate ``(rowid, row)`` as of ``snapshot_lsn`` (full scan)."""
        with self._lock:
            out = []
            for rowid in self._committed.keys() | self._history.keys():
                row = self._snapshot_read_locked(rowid, snapshot_lsn)
                if row is not None:
                    out.append((rowid, row))
            return iter(out)

    def snapshot_history_rows(self, snapshot_lsn: int) -> dict[int, tuple]:
        """Visible-at-``snapshot_lsn`` images of every row *with history*.

        The index-probe overlay: committed indexes only know the current
        image, so any row whose visible version may differ from its
        committed one (exactly the rows carrying a version chain) is
        resolved here and re-checked against the predicate by the
        executor — mirroring how pending overlays work for writers.
        """
        with self._lock:
            out: dict[int, tuple] = {}
            for rowid in self._history:
                row = self._snapshot_read_locked(rowid, snapshot_lsn)
                if row is not None:
                    out[rowid] = row
            return out

    def gc_versions(self, watermark: int) -> int:
        """Drop chain entries no snapshot at or above ``watermark`` needs.

        Keeps, per row, every version newer than the watermark plus the
        newest one at or below it (the image a watermark-pinned snapshot
        reads).  A chain whose current committed image (or tombstone) is
        already visible at the watermark vanishes entirely.  Returns the
        number of versions dropped.
        """
        dropped = 0
        with self._lock:
            for rowid in list(self._history):
                chain = self._history[rowid]
                if rowid in self._committed:
                    if self._version_lsn.get(rowid, 0) <= watermark:
                        dropped += len(chain)
                        del self._history[rowid]
                        continue
                elif chain[-1][0] <= watermark:
                    # Row is deleted and the delete is visible to every
                    # live snapshot: nobody can see it anymore.
                    dropped += len(chain)
                    del self._history[rowid]
                    continue
                newest_le = -1
                for i, (lsn, __) in enumerate(chain):
                    if lsn > watermark:
                        break
                    newest_le = i
                if newest_le > 0:
                    dropped += newest_le
                    self._history[rowid] = chain[newest_le:]
        if dropped and self._metrics is not None:
            self._metrics.versions_live.dec(dropped)
        return dropped

    def live_versions(self) -> int:
        """Number of superseded versions currently retained."""
        with self._lock:
            return sum(len(chain) for chain in self._history.values())

    def pending_of(self, txn_id: int) -> dict[int, Any]:
        """Snapshot of ``rowid -> image-or-TOMBSTONE`` for one transaction."""
        with self._lock:
            return {
                rowid: p.image for rowid, p in self._pending.items()
                if p.owner == txn_id
            }

    def row_count(self) -> int:
        """Number of committed rows."""
        with self._lock:
            return len(self._committed)

    # ------------------------------------------------------------------
    # Bulk load (recovery / checkpoint restore; bypasses transactions)
    # ------------------------------------------------------------------

    def load_row(self, rowid: int, values: Mapping[str, Any]) -> None:
        """Directly install a committed row (recovery only).

        Version chains collapse on load: a freshly recovered engine has
        no live snapshots, so every row starts over as a single committed
        version visible to all future snapshots (LSN 0).
        """
        row = self.schema.make_row(values)
        with self._lock:
            old = self._committed.get(rowid)
            if old is not None:
                self._unindex_row(rowid, old)
            self._committed[rowid] = row
            self._index_row(rowid, row)
            self._version_lsn.pop(rowid, None)
            self._drop_history(rowid)
            # Keep rowid allocation ahead of everything loaded.
            self._bump_rowid(rowid)

    def load_delete(self, rowid: int) -> None:
        """Directly remove a committed row (recovery only)."""
        with self._lock:
            old = self._committed.pop(rowid, None)
            if old is not None:
                self._unindex_row(rowid, old)
            self._version_lsn.pop(rowid, None)
            self._drop_history(rowid)

    def _drop_history(self, rowid: int) -> None:
        chain = self._history.pop(rowid, None)
        if chain and self._metrics is not None:
            self._metrics.versions_live.dec(len(chain))

    def _bump_rowid(self, seen: int) -> None:
        current = next(self._rowid_counter)
        target = max(current, seen + 1)
        self._rowid_counter = itertools.count(target)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Table({self.schema.name!r}, rows={len(self._committed)}, "
                f"pending={len(self._pending)})")
