"""Crash recovery: rebuild a database from its write-ahead log.

Recovery is redo-only: starting from the latest CHECKPOINT (or from an
empty engine), records of *committed* transactions are replayed in LSN
order; records of transactions without a COMMIT are discarded.  This gives
the paper's promise — a crash mid-keystroke loses at most the uncommitted
keystroke, never an acknowledged one.

Under group commit the acknowledgement point is the *group fsync*, not the
COMMIT append: ``power_off(lose_unsynced=True)`` truncates the file back
to the last fsync boundary, so an unacknowledged commit's records never
reach recovery after power loss.  After a plain process crash the page
cache survives and unacknowledged COMMIT records may be replayed — that is
correct, durability is a lower bound, never an upper one.

Version chains (MVCC snapshots, see :mod:`repro.db.table`) do not survive
recovery and need no log records of their own: a fresh process has no live
snapshots, so :meth:`~repro.db.table.Table.load_row` collapses every row
back to a single committed version visible to all future snapshots.

Use :func:`recover` with an in-memory record list (tests) or
:func:`recover_file` with a mirrored WAL file (process-crash simulation).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..clock import Clock
from ..errors import RecoveryError
from . import wal as walmod
from .engine import Database
from .schema import Column, ColumnType
from .wal import WalRecord, committed_txn_ids, decode_value


def _columns_from_payload(raw_columns: Sequence[dict]) -> list[Column]:
    return [
        Column(
            name=c["name"],
            type=ColumnType(c["type"]),
            nullable=c["nullable"],
            default=decode_value(c.get("default")),
        )
        for c in raw_columns
    ]


def _find_checkpoint(records: Sequence[WalRecord]) -> int | None:
    """Index of the last CHECKPOINT record, or None."""
    last = None
    for i, record in enumerate(records):
        if record.type == walmod.CHECKPOINT:
            last = i
    return last


def _restore_checkpoint(db: Database, record: WalRecord) -> None:
    tables = decode_value(record.payload.get("tables", {}))
    for name, spec in tables.items():
        columns = _columns_from_payload(spec["schema"]["columns"])
        table = db.create_table(name, columns, key=spec["schema"]["key"],
                                log=False)
        key_index = f"{name}_key"
        for idx in spec.get("indexes", ()):
            if idx["name"] == key_index:
                continue  # created automatically with the table
            table.create_index(idx["name"], idx["column"], kind=idx["kind"],
                               unique=idx["unique"])
        for rowid_str, values in spec.get("rows", {}).items():
            table.load_row(int(rowid_str), values)


def recover(
    records: Iterable[WalRecord],
    *,
    node: str = "db",
    clock: Clock | None = None,
    wal_path: str | None = None,
    faults=None,
    obs=None,
    wal_group_commit: bool = True,
    wal_group_window: float = 0.0,
    wal_group_max: int = 64,
) -> Database:
    """Build a fresh :class:`Database` from WAL records.

    Only effects of committed transactions survive.  DDL records
    (txn id 0) are always applied — the engine logs them after the fact,
    so they describe objects that really existed.

    The ``wal_group_*`` knobs carry the crashed engine's commit policy
    onto the recovered one, so a configured group window or group-size
    bound is not silently reset to defaults by the crash.  ``faults``
    and ``obs`` thread an injector / observability into the rebuilt
    engine (a resumed replication follower keeps its torture plan and
    metric registry across restarts).
    """
    records = list(records)
    db = Database(node, clock=clock, wal_path=wal_path,
                  faults=faults, obs=obs,
                  wal_group_commit=wal_group_commit,
                  wal_group_window=wal_group_window,
                  wal_group_max=wal_group_max)
    committed = committed_txn_ids(records)

    start = 0
    checkpoint_idx = _find_checkpoint(records)
    if checkpoint_idx is not None:
        _restore_checkpoint(db, records[checkpoint_idx])
        start = checkpoint_idx + 1

    for record in records[start:]:
        payload = record.payload
        if record.type == walmod.CREATE_TABLE:
            if db.has_table(payload["table"]):
                continue  # checkpoint overlap: the table already exists
            columns = _columns_from_payload(decode_value(payload["columns"]))
            db.create_table(payload["table"], columns,
                            key=payload.get("key"), log=False)
        elif record.type == walmod.DROP_TABLE:
            if db.has_table(payload["table"]):
                db.drop_table(payload["table"], log=False)
        elif record.type == walmod.CREATE_INDEX:
            table = db.table(payload["table"])
            if payload["name"] not in table.indexes():
                table.create_index(
                    payload["name"], payload["column"],
                    kind=payload["kind"], unique=payload["unique"],
                )
        elif record.type in (walmod.INSERT, walmod.UPDATE):
            if record.txn_id not in committed:
                continue
            table_name = payload["table"]
            if not db.has_table(table_name):
                raise RecoveryError(
                    f"WAL references unknown table {table_name!r} "
                    f"at LSN {record.lsn}"
                )
            values = decode_value(payload["values"])
            db.table(table_name).load_row(payload["rowid"], values)
        elif record.type == walmod.DELETE:
            if record.txn_id not in committed:
                continue
            table_name = payload["table"]
            if db.has_table(table_name):
                db.table(table_name).load_delete(payload["rowid"])
        # BEGIN/COMMIT/ABORT/CHECKPOINT need no replay action here.
    return db


def recover_file(
    path: str,
    *,
    node: str = "db",
    clock: Clock | None = None,
    wal_path: str | None = None,
    wal_group_commit: bool = True,
    wal_group_window: float = 0.0,
    wal_group_max: int = 64,
) -> Database:
    """Recover from a WAL file written by a (crashed) engine.

    A torn trailing record (the signature of a crash mid-append) is
    skipped with a warning — crash recovery must get past the crash's
    own debris — and counted on the recovered database as
    ``wal.torn_tail_recoveries``.  Corruption *before* the tail still
    raises, via :meth:`~repro.db.wal.WriteAheadLog.load_file`.
    """
    torn = []
    records = walmod.WriteAheadLog.load_file(path, on_torn=lambda: torn.append(1))
    db = recover(records, node=node, clock=clock, wal_path=wal_path,
                 wal_group_commit=wal_group_commit,
                 wal_group_window=wal_group_window,
                 wal_group_max=wal_group_max)
    if torn:
        db.obs.registry.counter("wal.torn_tail_recoveries").inc(len(torn))
    return db
