"""Lock manager: shared/exclusive locks with deadlock detection.

Writers run read-committed isolation with exclusive row locks held until
commit or abort (strict two-phase locking); plain reads see the last
committed version without blocking.  MVCC snapshot transactions
(``db.begin(read_only=True)``) bypass this manager entirely — their reads
resolve from version chains (:mod:`repro.db.table`) and never touch a
lock.  SHARED mode is used only by the 2PL-reader baseline kept for
interference benchmarks (``locking_reads=True``).  Table-level locks
protect DDL.

Blocking waits are supported for multi-threaded use; a wait-for graph is
checked before every wait so deadlocks are detected immediately and the
requesting transaction is chosen as the victim (it raises
:class:`~repro.errors.DeadlockError`).  Single-threaded cooperative callers
can pass ``timeout=0`` to get immediate ``LockTimeoutError`` on conflict.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Hashable

from ..errors import DeadlockError, LockTimeoutError
from ..obs.metrics import NULL_REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector

SHARED = "S"
EXCLUSIVE = "X"

#: Lock compatibility: can a new request of mode *row* join holders of
#: mode *col*?
_COMPATIBLE = {
    (SHARED, SHARED): True,
    (SHARED, EXCLUSIVE): False,
    (EXCLUSIVE, SHARED): False,
    (EXCLUSIVE, EXCLUSIVE): False,
}


@dataclass
class _LockState:
    """Holders and waiters for one lockable resource."""

    holders: dict[int, str] = field(default_factory=dict)  # txn id -> mode
    waiters: list[tuple[int, str]] = field(default_factory=list)

    def compatible(self, txn_id: int, mode: str) -> bool:
        """Would granting (txn_id, mode) conflict with current holders?"""
        for holder, held in self.holders.items():
            if holder == txn_id:
                continue
            if not _COMPATIBLE[(mode, held)]:
                return False
        return True


class LockManager:
    """Grants S/X locks on hashable resource keys to transaction ids.

    An optional :class:`~repro.faults.injector.FaultInjector` is
    consulted before every acquire: it can force an immediate timeout
    (as if the wait expired under contention) or inject latency to widen
    race windows — the torture suite's handle on lock-failure paths.
    """

    def __init__(self, default_timeout: float = 5.0,
                 faults: "FaultInjector | None" = None,
                 registry=None, tracer=None) -> None:
        from ..faults.injector import NO_FAULTS
        from ..obs.tracing import NULL_TRACER
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._states: dict[Hashable, _LockState] = {}
        self._held_by_txn: dict[int, set[Hashable]] = {}
        self._cond = threading.Condition()
        self.default_timeout = default_timeout
        self.faults = faults if faults is not None else NO_FAULTS
        #: Counters for observability / benchmarks (kept as a plain dict
        #: for backwards compatibility; mirrored into the registry).
        self.stats = {"acquired": 0, "waited": 0, "deadlocks": 0,
                      "timeouts": 0, "injected": 0}
        reg = registry if registry is not None else NULL_REGISTRY
        self._m_acquired = reg.counter("lock.acquired")
        self._m_waits = reg.counter("lock.waits")
        self._m_wait_seconds = reg.histogram("lock.wait_seconds")
        self._m_timeouts = reg.counter("lock.timeouts")
        self._m_deadlocks = reg.counter("lock.deadlocks")
        self._m_injected = reg.counter("lock.injected")

    # -- public API ---------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        resource: Hashable,
        mode: str = EXCLUSIVE,
        timeout: float | None = None,
    ) -> None:
        """Acquire ``resource`` in ``mode`` for ``txn_id``.

        Upgrades S->X in place when possible.  Raises
        :class:`~repro.errors.DeadlockError` if waiting would deadlock and
        :class:`~repro.errors.LockTimeoutError` on timeout.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        fault = self.faults.lock_action(txn_id, resource, mode)
        if fault is not None:
            self.stats["injected"] += 1
            self._m_injected.inc()
            if fault.kind == "timeout":
                self.stats["timeouts"] += 1
                self._m_timeouts.inc()
                raise LockTimeoutError(
                    f"injected timeout: txn {txn_id} on {resource!r} ({mode})"
                )
            time.sleep(fault.delay)
        deadline_timeout = self.default_timeout if timeout is None else timeout
        with self._cond:
            state = self._states.setdefault(resource, _LockState())
            held = state.holders.get(txn_id)
            if held == EXCLUSIVE or held == mode:
                return  # already strong enough
            if state.compatible(txn_id, mode):
                self._grant(txn_id, resource, state, mode)
                return
            # Must wait.
            if deadline_timeout == 0:
                self.stats["timeouts"] += 1
                self._m_timeouts.inc()
                raise LockTimeoutError(
                    f"txn {txn_id} would block on {resource!r} ({mode})"
                )
            if self._would_deadlock(txn_id, state):
                self.stats["deadlocks"] += 1
                self._m_deadlocks.inc()
                raise DeadlockError(
                    f"txn {txn_id} deadlocks waiting for {resource!r}"
                )
            entry = (txn_id, mode)
            state.waiters.append(entry)
            self.stats["waited"] += 1
            self._m_waits.inc()
            wait_started = perf_counter()
            # Contended waits are cold and interesting: traced, so a
            # keystroke trace shows where it stalled (and on what).
            wait_span = self._tracer.start("lock.wait", txn=txn_id,
                                           resource=str(resource),
                                           mode=mode)
            try:
                remaining = deadline_timeout
                step = 0.05
                while not state.compatible(txn_id, mode):
                    if remaining <= 0:
                        self.stats["timeouts"] += 1
                        self._m_timeouts.inc()
                        wait_span.end("timeout")
                        raise LockTimeoutError(
                            f"txn {txn_id} timed out on {resource!r} ({mode})"
                        )
                    wait = min(step, remaining)
                    self._cond.wait(wait)
                    remaining -= wait
                    if self._would_deadlock(txn_id, state):
                        self.stats["deadlocks"] += 1
                        self._m_deadlocks.inc()
                        wait_span.end("deadlock")
                        raise DeadlockError(
                            f"txn {txn_id} deadlocks waiting for {resource!r}"
                        )
                self._grant(txn_id, resource, state, mode)
            finally:
                # Wait time is recorded however the wait ends: grant,
                # timeout or deadlock victimhood all contribute.  The
                # span end is idempotent, so the error paths above
                # keep their specific statuses.
                wait_span.end("ok")
                self._m_wait_seconds.observe(perf_counter() - wait_started)
                if entry in state.waiters:
                    state.waiters.remove(entry)

    def acquire_many(
        self,
        txn_id: int,
        resources: list,
        mode: str = EXCLUSIVE,
        timeout: float | None = None,
    ) -> None:
        """Acquire several resources for ``txn_id`` with amortised cost.

        The batched edit path locks a whole range of rows at once;
        grabbing every uncontended resource under a single condition
        acquisition avoids one manager round-trip per row.  Fault
        injection is still consulted per resource — torture plans keep
        their handle on every logical acquire — and any resource that
        turns out to be contended falls back to the blocking
        per-resource :meth:`acquire` path (waiting, deadlock detection
        and timeouts behave exactly as for single acquires).
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        for resource in resources:
            fault = self.faults.lock_action(txn_id, resource, mode)
            if fault is not None:
                self.stats["injected"] += 1
                self._m_injected.inc()
                if fault.kind == "timeout":
                    self.stats["timeouts"] += 1
                    self._m_timeouts.inc()
                    raise LockTimeoutError(
                        f"injected timeout: txn {txn_id} on {resource!r} "
                        f"({mode})"
                    )
                time.sleep(fault.delay)
        contended: list = []
        with self._cond:
            for resource in resources:
                state = self._states.setdefault(resource, _LockState())
                held = state.holders.get(txn_id)
                if held == EXCLUSIVE or held == mode:
                    continue
                if state.compatible(txn_id, mode):
                    self._grant(txn_id, resource, state, mode)
                else:
                    contended.append(resource)
        for resource in contended:
            self.acquire(txn_id, resource, mode, timeout)

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/abort)."""
        with self._cond:
            resources = self._held_by_txn.pop(txn_id, set())
            for resource in resources:
                state = self._states.get(resource)
                if state is None:
                    continue
                state.holders.pop(txn_id, None)
                if not state.holders and not state.waiters:
                    del self._states[resource]
            if resources:
                self._cond.notify_all()

    def holders(self, resource: Hashable) -> dict[int, str]:
        """Snapshot of current holders of ``resource`` (txn id -> mode)."""
        with self._cond:
            state = self._states.get(resource)
            return dict(state.holders) if state else {}

    def locks_held(self, txn_id: int) -> set[Hashable]:
        """Snapshot of resources currently held by ``txn_id``."""
        with self._cond:
            return set(self._held_by_txn.get(txn_id, ()))

    # -- internals ----------------------------------------------------------

    def _grant(self, txn_id: int, resource: Hashable, state: _LockState,
               mode: str) -> None:
        prior = state.holders.get(txn_id)
        if prior == SHARED and mode == EXCLUSIVE:
            state.holders[txn_id] = EXCLUSIVE
        else:
            state.holders[txn_id] = mode
        self._held_by_txn.setdefault(txn_id, set()).add(resource)
        self.stats["acquired"] += 1
        self._m_acquired.inc()

    def _would_deadlock(self, requester: int, wanted: _LockState) -> bool:
        """Check the wait-for graph for a cycle through ``requester``.

        Called with the condition lock held.  Edges: requester waits for
        each conflicting holder of the wanted resource; recursively, those
        holders may themselves be waiting.
        """
        # Build txn -> set of txns it waits for, from all resources.
        waits_for: dict[int, set[int]] = {}
        for state in self._states.values():
            for waiter, mode in state.waiters:
                blockers = {
                    holder for holder, held in state.holders.items()
                    if holder != waiter and not _COMPATIBLE[(mode, held)]
                }
                if blockers:
                    waits_for.setdefault(waiter, set()).update(blockers)
        # Add the hypothetical edge for the new request.
        blockers = {
            holder for holder, held in wanted.holders.items()
            if holder != requester
        }
        waits_for.setdefault(requester, set()).update(blockers)
        # DFS from requester looking for a path back to requester.
        stack = list(waits_for.get(requester, ()))
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == requester:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(waits_for.get(node, ()))
        return False
