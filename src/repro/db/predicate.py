"""Composable query predicates.

A predicate is a small expression tree over column values.  Besides
evaluating rows, predicates expose enough structure for the query planner to
recognise index-friendly shapes (equality and range conditions on a single
column) via :meth:`Predicate.index_hints`.

Use the :func:`col` factory for a fluent style::

    from repro.db.predicate import col

    pred = (col("author") == "ana") & (col("when") >= t0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class IndexHint:
    """A single-column condition usable for an index probe.

    ``op`` is one of ``"eq"``, ``"in"``, ``"range"``.  For ``eq`` the payload
    is ``value``; for ``in`` it is ``values`` (a tuple); for ``range`` it is
    ``(low, high, low_inclusive, high_inclusive)`` with ``None`` for an open
    bound.
    """

    column: str
    op: str
    value: Any = None
    values: tuple = ()
    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True


class Predicate:
    """Base class: evaluates a row mapping to bool, supports ``& | ~``."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Evaluate this predicate against a row mapping."""
        raise NotImplementedError

    def index_hints(self) -> Iterator[IndexHint]:
        """Yield conditions that must *all* hold (conjunctive hints only).

        The planner may satisfy the query by probing an index on any one
        hint and re-checking the full predicate on the candidates.
        """
        return iter(())

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """Matches every row; the default WHERE clause."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Always true."""
        return True

    def __repr__(self) -> str:
        return "TRUE"


ALWAYS = TruePredicate()


@dataclass(frozen=True)
class Comparison(Predicate):
    """A binary comparison between a column and a constant."""

    column: str
    op: str  # eq, ne, lt, le, gt, ge
    value: Any

    _OPS: "dict[str, Callable[[Any, Any], bool]]" = None  # set below

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Compare the row's column value against the constant."""
        have = row.get(self.column)
        if have is None:
            # SQL-ish semantics: NULL compares false to everything except
            # an explicit eq/ne against None.
            if self.op == "eq":
                return self.value is None
            if self.op == "ne":
                return self.value is not None
            return False
        if self.value is None:
            return self.op == "ne"
        return _COMPARATORS[self.op](have, self.value)

    def index_hints(self) -> Iterator[IndexHint]:
        """Equality/range hints an index probe can serve."""
        if self.value is None:
            return
        if self.op == "eq":
            yield IndexHint(self.column, "eq", value=self.value)
        elif self.op in ("lt", "le"):
            yield IndexHint(self.column, "range", high=self.value,
                            high_inclusive=self.op == "le")
        elif self.op in ("gt", "ge"):
            yield IndexHint(self.column, "range", low=self.value,
                            low_inclusive=self.op == "ge")

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class InSet(Predicate):
    """``column IN (values)``."""

    column: str
    values: frozenset

    def matches(self, row: Mapping[str, Any]) -> bool:
        """True when the column value is one of the set."""
        have = row.get(self.column)
        if have is None:
            return False
        try:
            return have in self.values
        except TypeError:
            return False

    def index_hints(self) -> Iterator[IndexHint]:
        """An ``in`` hint over the member values."""
        yield IndexHint(self.column, "in", values=tuple(self.values))

    def __repr__(self) -> str:
        return f"({self.column} in {sorted(map(repr, self.values))})"


@dataclass(frozen=True)
class Contains(Predicate):
    """Substring match on a string column (case-insensitive optional)."""

    column: str
    needle: str
    case_sensitive: bool = True

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Substring test on a string column."""
        have = row.get(self.column)
        if not isinstance(have, str):
            return False
        if self.case_sensitive:
            return self.needle in have
        return self.needle.lower() in have.lower()

    def __repr__(self) -> str:
        return f"({self.column} contains {self.needle!r})"


@dataclass(frozen=True)
class Lambda(Predicate):
    """Escape hatch: an arbitrary row predicate (never index-assisted)."""

    fn: Callable[[Mapping[str, Any]], bool]
    label: str = "<lambda>"

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Delegate to the wrapped callable."""
        return bool(self.fn(row))

    def __repr__(self) -> str:
        return f"({self.label})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple

    def matches(self, row: Mapping[str, Any]) -> bool:
        """True when every part matches."""
        return all(p.matches(row) for p in self.parts)

    def index_hints(self) -> Iterator[IndexHint]:
        """Hints of all conjuncts (any one may be probed)."""
        for part in self.parts:
            yield from part.index_hints()

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates.  Yields no hints (probe cannot cover it)."""

    parts: tuple

    def matches(self, row: Mapping[str, Any]) -> bool:
        """True when any part matches."""
        return any(p.matches(row) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation.  Yields no hints."""

    part: Predicate

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Invert the wrapped predicate."""
        return not self.part.matches(row)

    def __repr__(self) -> str:
        return f"(NOT {self.part!r})"


class ColumnRef:
    """Fluent builder: ``col("x") == 3`` produces a :class:`Comparison`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: Any) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "eq", other)

    def __ne__(self, other: Any) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "ne", other)

    def __lt__(self, other: Any) -> Comparison:
        return Comparison(self.name, "lt", other)

    def __le__(self, other: Any) -> Comparison:
        return Comparison(self.name, "le", other)

    def __gt__(self, other: Any) -> Comparison:
        return Comparison(self.name, "gt", other)

    def __ge__(self, other: Any) -> Comparison:
        return Comparison(self.name, "ge", other)

    def isin(self, values: Sequence[Any]) -> InSet:
        """Build a ``column IN (values)`` predicate."""
        return InSet(self.name, frozenset(values))

    def contains(self, needle: str, *, case_sensitive: bool = True) -> Contains:
        """Build a substring-match predicate."""
        return Contains(self.name, needle, case_sensitive)

    def between(self, low: Any, high: Any) -> Predicate:
        """Inclusive range ``low <= column <= high``."""
        return And((Comparison(self.name, "ge", low),
                    Comparison(self.name, "le", high)))

    __hash__ = None  # type: ignore[assignment]


def col(name: str) -> ColumnRef:
    """Create a fluent column reference for building predicates."""
    return ColumnRef(name)
