"""A blocked sorted list: the storage behind ordered indexes.

A flat ``bisect.insort`` list costs O(n) per insert (the memmove); with
an ordered index on e.g. the access-log timestamp that cost rides on
every keystroke.  ``BlockedSortedList`` keeps items in a list of sorted
blocks of bounded size (the classic ``sortedcontainers`` layout): inserts
and deletes touch one block (O(block + #blocks)), giving roughly O(√n)
behaviour with excellent constants, while in-order iteration and
bisection stay simple.

Items must be mutually comparable.  Duplicates are allowed.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator


class BlockedSortedList:
    """A sorted multiset of comparable items in size-bounded blocks."""

    #: Target block size; blocks split at 2x and merge below 1/4.
    BLOCK = 512

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._blocks: list[list[Any]] = []
        self._maxes: list[Any] = []     # last (max) item of each block
        self._len = 0
        initial = sorted(items)
        for start in range(0, len(initial), self.BLOCK):
            block = initial[start:start + self.BLOCK]
            self._blocks.append(block)
            self._maxes.append(block[-1])
        self._len = len(initial)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, item: Any) -> None:
        """Insert ``item`` keeping order; O(block) amortised."""
        if not self._blocks:
            self._blocks.append([item])
            self._maxes.append(item)
            self._len = 1
            return
        index = bisect.bisect_left(self._maxes, item)
        if index == len(self._blocks):
            index -= 1
        block = self._blocks[index]
        bisect.insort(block, item)
        self._maxes[index] = block[-1]
        self._len += 1
        if len(block) > 2 * self.BLOCK:
            self._split(index)

    def remove(self, item: Any) -> bool:
        """Remove one occurrence of ``item``; returns False if absent."""
        index = self._block_of(item)
        if index is None:
            return False
        block = self._blocks[index]
        pos = bisect.bisect_left(block, item)
        if pos >= len(block) or block[pos] != item:
            return False
        del block[pos]
        self._len -= 1
        if not block:
            del self._blocks[index]
            del self._maxes[index]
        else:
            self._maxes[index] = block[-1]
            if len(block) < self.BLOCK // 4:
                self._maybe_merge(index)
        return True

    def _split(self, index: int) -> None:
        block = self._blocks[index]
        half = len(block) // 2
        left, right = block[:half], block[half:]
        self._blocks[index:index + 1] = [left, right]
        self._maxes[index:index + 1] = [left[-1], right[-1]]

    def _maybe_merge(self, index: int) -> None:
        """Merge a small block into a neighbour if the pair stays small."""
        for neighbour in (index - 1, index + 1):
            if 0 <= neighbour < len(self._blocks):
                combined = (len(self._blocks[index])
                            + len(self._blocks[neighbour]))
                if combined <= self.BLOCK:
                    lo, hi = sorted((index, neighbour))
                    merged = self._blocks[lo] + self._blocks[hi]
                    self._blocks[lo:hi + 1] = [merged]
                    self._maxes[lo:hi + 1] = [merged[-1]]
                    return

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _block_of(self, item: Any) -> int | None:
        """Index of the first block that could contain ``item``."""
        index = bisect.bisect_left(self._maxes, item)
        return index if index < len(self._blocks) else None

    def __contains__(self, item: Any) -> bool:
        index = self._block_of(item)
        if index is None:
            return False
        block = self._blocks[index]
        pos = bisect.bisect_left(block, item)
        return pos < len(block) and block[pos] == item

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[Any]:
        for block in self._blocks:
            yield from block

    def __reversed__(self) -> Iterator[Any]:
        for block in reversed(self._blocks):
            yield from reversed(block)

    def min(self) -> Any:
        """Smallest item (``None`` when empty)."""
        return self._blocks[0][0] if self._blocks else None

    def max(self) -> Any:
        """Largest item (``None`` when empty)."""
        return self._maxes[-1] if self._maxes else None

    # ------------------------------------------------------------------
    # Range iteration
    # ------------------------------------------------------------------

    def irange(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Any]:
        """Iterate items within the (possibly open) range, in order."""
        if not self._blocks:
            return
        if low is None:
            block_index, pos = 0, 0
        else:
            block_index = bisect.bisect_left(self._maxes, low)
            if block_index == len(self._blocks):
                return
            block = self._blocks[block_index]
            if low_inclusive:
                pos = bisect.bisect_left(block, low)
            else:
                pos = bisect.bisect_right(block, low)
        while block_index < len(self._blocks):
            block = self._blocks[block_index]
            while pos < len(block):
                item = block[pos]
                if (low is not None and not low_inclusive
                        and not item > low):
                    # Duplicates of an exclusive bound can spill across a
                    # block boundary; skip them here too.
                    pos += 1
                    continue
                if high is not None:
                    if high_inclusive:
                        if item > high:
                            return
                    elif item >= high:
                        return
                yield item
                pos += 1
            block_index += 1
            pos = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BlockedSortedList(len={self._len}, "
                f"blocks={len(self._blocks)})")
