"""Write-ahead log.

Every mutating operation appends a redo record tagged with its transaction
id; a COMMIT record makes the transaction's records durable-and-effective.
Recovery (:mod:`repro.db.recovery`) replays records of committed
transactions in LSN order and discards the rest — which is exactly what the
paper leans on when it promises DBMS-grade recovery for word processing
("everything which is typed appears ... as soon as these objects are stored
persistently").

The log lives in memory and can optionally be mirrored to a JSON-lines file
so a "crashed" engine can be rebuilt by a fresh process.  DDL (create table
/ index) is logged too, so recovery can start from an empty engine.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from ..errors import WalError
from ..ids import Oid
from ..obs.metrics import NULL_REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector

# Record types.
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
INSERT = "INSERT"
UPDATE = "UPDATE"
DELETE = "DELETE"
CREATE_TABLE = "CREATE_TABLE"
DROP_TABLE = "DROP_TABLE"
CREATE_INDEX = "CREATE_INDEX"
CHECKPOINT = "CHECKPOINT"

_TYPES = {
    BEGIN, COMMIT, ABORT, INSERT, UPDATE, DELETE,
    CREATE_TABLE, DROP_TABLE, CREATE_INDEX, CHECKPOINT,
}


@dataclass(frozen=True)
class WalRecord:
    """One log record.

    ``payload`` carries the record-type specific data:

    * INSERT: ``table``, ``rowid``, ``values`` (column mapping)
    * UPDATE: ``table``, ``rowid``, ``values`` (full new row mapping)
    * DELETE: ``table``, ``rowid``
    * CREATE_TABLE: ``table``, ``columns``, ``key``
    * CREATE_INDEX: ``table``, ``name``, ``column``, ``kind``, ``unique``
    * DROP_TABLE: ``table``
    * CHECKPOINT: ``tables`` (full table snapshots)
    """

    lsn: int
    type: str
    txn_id: int
    payload: dict = field(default_factory=dict)


def encode_value(value: Any) -> Any:
    """Make a stored value JSON-serialisable (Oid and bytes get wrapped)."""
    if isinstance(value, Oid):
        return {"__oid__": str(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__oid__"}:
            return Oid.parse(value["__oid__"])
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


class WriteAheadLog:
    """Append-only log with optional file mirroring.

    Parameters
    ----------
    path:
        Optional file path.  When given, every appended record is written
        as one JSON line and flushed on commit boundaries, so a crash loses
        at most the in-flight (uncommitted) tail — never a committed
        transaction.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`.  The WAL
        passes three crash points — ``wal.before_append`` (record never
        lands anywhere), ``wal.mid_record`` (a torn prefix of the JSON
        line reaches the file, then death) and ``wal.before_fsync``
        (record written, the commit-boundary fsync never happens) — and
        supports :meth:`power_off` so a simulated power loss drops every
        byte since the last fsync.
    """

    def __init__(self, path: str | None = None,
                 faults: "FaultInjector | None" = None,
                 registry=None, tracer=None) -> None:
        from ..faults.injector import NO_FAULTS
        from ..obs.tracing import NULL_TRACER
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._records: list[WalRecord] = []
        self._lock = threading.RLock()
        self._next_lsn = 1
        self._path = path
        self._file = open(path, "a", encoding="utf-8") if path else None
        #: File size at the last fsync: what survives a power loss.
        self._durable_size = (os.path.getsize(path)
                              if path and os.path.exists(path) else 0)
        self.faults = faults if faults is not None else NO_FAULTS
        self.faults.attach_wal(self)
        reg = registry if registry is not None else NULL_REGISTRY
        self._m_appends = reg.counter("wal.appends")
        self._m_append_seconds = reg.histogram("wal.append_seconds")
        self._m_bytes = reg.counter("wal.appended_bytes")
        self._m_fsyncs = reg.counter("wal.fsyncs")
        self._m_fsync_seconds = reg.histogram("wal.fsync_seconds")

    @property
    def path(self) -> str | None:
        return self._path

    def append(self, type_: str, txn_id: int, **payload: Any) -> WalRecord:
        """Append one record and return it (with its assigned LSN)."""
        if type_ not in _TYPES:
            raise WalError(f"unknown WAL record type {type_!r}")
        started = perf_counter()
        self.faults.fire("wal.before_append", type=type_, txn=txn_id)
        with self._lock:
            record = WalRecord(self._next_lsn, type_, txn_id,
                               encode_value(payload))
            self._next_lsn += 1
            if self._file is not None:
                line = json.dumps({
                    "lsn": record.lsn,
                    "type": record.type,
                    "txn": record.txn_id,
                    "payload": record.payload,
                })
                torn = self.faults.check("wal.mid_record")
                if torn is not None:
                    # Torn write: a prefix of the line (never the whole
                    # line) reaches the file, then the process dies.
                    keep = max(1, min(len(line) - 1,
                                      int(len(line) * torn.tear)))
                    self._file.write(line[:keep])
                    self.faults.crash(torn, type=type_, txn=txn_id)
                self._file.write(line + "\n")
                self._m_bytes.inc(len(line) + 1)
                if type_ in (COMMIT, ABORT, CHECKPOINT):
                    # Traced as well as timed: the fsync span is the
                    # durability leg of the keystroke's causal trace
                    # (child of the txn span in scope during commit).
                    with self._tracer.span("wal.fsync", txn=txn_id):
                        self.faults.fire("wal.before_fsync", type=type_,
                                         txn=txn_id)
                        fsync_started = perf_counter()
                        self._file.flush()
                        os.fsync(self._file.fileno())
                        self._durable_size = self._file.tell()
                        self._m_fsyncs.inc()
                        self._m_fsync_seconds.observe(
                            perf_counter() - fsync_started)
            self._records.append(record)
            self._m_appends.inc()
            self._m_append_seconds.observe(perf_counter() - started)
            return record

    def records(self) -> Iterator[WalRecord]:
        """Iterate records in LSN order (snapshot)."""
        with self._lock:
            return iter(list(self._records))

    def last_lsn(self) -> int:
        """The LSN of the most recently appended record."""
        with self._lock:
            return self._next_lsn - 1

    def truncate_before(self, lsn: int) -> int:
        """Drop in-memory records with LSN < ``lsn`` (after a checkpoint).

        Returns the number of records dropped.  The file, if any, is left
        untouched (files are append-only; compaction is checkpoint+new file,
        handled by the engine).
        """
        with self._lock:
            keep = [r for r in self._records if r.lsn >= lsn]
            dropped = len(self._records) - len(keep)
            self._records = keep
            return dropped

    def close(self) -> None:
        """Flush and close the mirror file, if any."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    def power_off(self, *, lose_unsynced: bool = False) -> None:
        """Simulate losing the process (or the machine) mid-flight.

        A *process* crash loses only user-space buffers — the OS page
        cache survives — so flushed-but-unsynced bytes are kept.  A
        *power loss* (``lose_unsynced=True``) truncates the file back to
        the last fsync boundary: only what :meth:`append` fsynced is
        durable.  Either way the file handle is dropped, so nothing the
        "dead" process does afterwards can reach disk.
        """
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            self._file.close()
            self._file = None
            if lose_unsynced and self._path is not None:
                with open(self._path, "r+b") as raw:
                    raw.truncate(self._durable_size)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @staticmethod
    def load_file(path: str,
                  on_torn: Callable[[], None] | None = None,
                  ) -> list[WalRecord]:
        """Read a mirrored log file back into records (for recovery).

        A torn *trailing* record — a crash mid-write leaves a partial
        JSON line, or one missing required fields — is skipped with a
        warning: that is the expected signature of process death and
        recovery must proceed past it.  ``on_torn`` (if given) is called
        when that happens, so recovery can count the event
        (``wal.torn_tail_recoveries``).  A malformed record *followed by
        valid ones* is a different story (real corruption, not a torn
        tail) and raises :class:`~repro.errors.WalError` rather than
        silently discarding committed history.
        """
        records: list[WalRecord] = []
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.strip() for line in handle]
        lines = [line for line in lines if line]
        for i, line in enumerate(lines):
            try:
                raw = json.loads(line)
                record = WalRecord(raw["lsn"], raw["type"], raw["txn"],
                                   raw.get("payload", {}))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    warnings.warn(
                        f"skipping torn trailing WAL record in {path!r} "
                        f"(crash mid-write): {exc!r}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    if on_torn is not None:
                        on_torn()
                    break
                raise WalError(
                    f"corrupt WAL record at line {i + 1} of {path!r} "
                    f"(not a torn tail — {len(lines) - i - 1} valid-looking "
                    f"records follow): {exc!r}"
                ) from exc
            records.append(record)
        return records


def committed_txn_ids(records: Iterable[WalRecord]) -> set[int]:
    """Return the ids of transactions with a COMMIT record."""
    return {r.txn_id for r in records if r.type == COMMIT}
