"""Write-ahead log.

Every mutating operation appends a redo record tagged with its transaction
id; a COMMIT record makes the transaction's records durable-and-effective.
Recovery (:mod:`repro.db.recovery`) replays records of committed
transactions in LSN order and discards the rest — which is exactly what the
paper leans on when it promises DBMS-grade recovery for word processing
("everything which is typed appears ... as soon as these objects are stored
persistently").

The log lives in memory and can optionally be mirrored to a JSON-lines file
so a "crashed" engine can be rebuilt by a fresh process.  DDL (create table
/ index) is logged too, so recovery can start from an empty engine.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..errors import WalError
from ..ids import Oid

# Record types.
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
INSERT = "INSERT"
UPDATE = "UPDATE"
DELETE = "DELETE"
CREATE_TABLE = "CREATE_TABLE"
DROP_TABLE = "DROP_TABLE"
CREATE_INDEX = "CREATE_INDEX"
CHECKPOINT = "CHECKPOINT"

_TYPES = {
    BEGIN, COMMIT, ABORT, INSERT, UPDATE, DELETE,
    CREATE_TABLE, DROP_TABLE, CREATE_INDEX, CHECKPOINT,
}


@dataclass(frozen=True)
class WalRecord:
    """One log record.

    ``payload`` carries the record-type specific data:

    * INSERT: ``table``, ``rowid``, ``values`` (column mapping)
    * UPDATE: ``table``, ``rowid``, ``values`` (full new row mapping)
    * DELETE: ``table``, ``rowid``
    * CREATE_TABLE: ``table``, ``columns``, ``key``
    * CREATE_INDEX: ``table``, ``name``, ``column``, ``kind``, ``unique``
    * DROP_TABLE: ``table``
    * CHECKPOINT: ``tables`` (full table snapshots)
    """

    lsn: int
    type: str
    txn_id: int
    payload: dict = field(default_factory=dict)


def encode_value(value: Any) -> Any:
    """Make a stored value JSON-serialisable (Oid and bytes get wrapped)."""
    if isinstance(value, Oid):
        return {"__oid__": str(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__oid__"}:
            return Oid.parse(value["__oid__"])
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


class WriteAheadLog:
    """Append-only log with optional file mirroring.

    Parameters
    ----------
    path:
        Optional file path.  When given, every appended record is written
        as one JSON line and flushed on commit boundaries, so a crash loses
        at most the in-flight (uncommitted) tail — never a committed
        transaction.
    """

    def __init__(self, path: str | None = None) -> None:
        self._records: list[WalRecord] = []
        self._lock = threading.Lock()
        self._next_lsn = 1
        self._path = path
        self._file = open(path, "a", encoding="utf-8") if path else None

    @property
    def path(self) -> str | None:
        return self._path

    def append(self, type_: str, txn_id: int, **payload: Any) -> WalRecord:
        """Append one record and return it (with its assigned LSN)."""
        if type_ not in _TYPES:
            raise WalError(f"unknown WAL record type {type_!r}")
        with self._lock:
            record = WalRecord(self._next_lsn, type_, txn_id,
                               encode_value(payload))
            self._next_lsn += 1
            self._records.append(record)
            if self._file is not None:
                line = json.dumps({
                    "lsn": record.lsn,
                    "type": record.type,
                    "txn": record.txn_id,
                    "payload": record.payload,
                })
                self._file.write(line + "\n")
                if type_ in (COMMIT, ABORT, CHECKPOINT):
                    self._file.flush()
                    os.fsync(self._file.fileno())
            return record

    def records(self) -> Iterator[WalRecord]:
        """Iterate records in LSN order (snapshot)."""
        with self._lock:
            return iter(list(self._records))

    def last_lsn(self) -> int:
        """The LSN of the most recently appended record."""
        with self._lock:
            return self._next_lsn - 1

    def truncate_before(self, lsn: int) -> int:
        """Drop in-memory records with LSN < ``lsn`` (after a checkpoint).

        Returns the number of records dropped.  The file, if any, is left
        untouched (files are append-only; compaction is checkpoint+new file,
        handled by the engine).
        """
        with self._lock:
            keep = [r for r in self._records if r.lsn >= lsn]
            dropped = len(self._records) - len(keep)
            self._records = keep
            return dropped

    def close(self) -> None:
        """Flush and close the mirror file, if any."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @staticmethod
    def load_file(path: str) -> list[WalRecord]:
        """Read a mirrored log file back into records (for recovery).

        A torn final line (crash mid-write) is tolerated and ignored.
        """
        records: list[WalRecord] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail record: everything after is suspect
                records.append(WalRecord(
                    raw["lsn"], raw["type"], raw["txn"], raw["payload"],
                ))
        return records


def committed_txn_ids(records: Iterable[WalRecord]) -> set[int]:
    """Return the ids of transactions with a COMMIT record."""
    return {r.txn_id for r in records if r.type == COMMIT}
