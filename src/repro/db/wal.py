"""Write-ahead log.

Every mutating operation appends a redo record tagged with its transaction
id; a COMMIT record makes the transaction's records durable-and-effective.
Recovery (:mod:`repro.db.recovery`) replays records of committed
transactions in LSN order and discards the rest — which is exactly what the
paper leans on when it promises DBMS-grade recovery for word processing
("everything which is typed appears ... as soon as these objects are stored
persistently").

The log lives in memory and can optionally be mirrored to a JSON-lines file
so a "crashed" engine can be rebuilt by a fresh process.  DDL (create table
/ index) is logged too, so recovery can start from an empty engine.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from ..errors import CrashSignal, WalError
from ..ids import Oid
from ..obs.metrics import COUNT_BUCKETS, NULL_REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector

# Record types.
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
INSERT = "INSERT"
UPDATE = "UPDATE"
DELETE = "DELETE"
CREATE_TABLE = "CREATE_TABLE"
DROP_TABLE = "DROP_TABLE"
CREATE_INDEX = "CREATE_INDEX"
CHECKPOINT = "CHECKPOINT"

_TYPES = {
    BEGIN, COMMIT, ABORT, INSERT, UPDATE, DELETE,
    CREATE_TABLE, DROP_TABLE, CREATE_INDEX, CHECKPOINT,
}


@dataclass(frozen=True)
class WalRecord:
    """One log record.

    ``payload`` carries the record-type specific data:

    * INSERT: ``table``, ``rowid``, ``values`` (column mapping)
    * UPDATE: ``table``, ``rowid``, ``values`` (full new row mapping)
    * DELETE: ``table``, ``rowid``
    * CREATE_TABLE: ``table``, ``columns``, ``key``
    * CREATE_INDEX: ``table``, ``name``, ``column``, ``kind``, ``unique``
    * DROP_TABLE: ``table``
    * CHECKPOINT: ``tables`` (full table snapshots)
    """

    lsn: int
    type: str
    txn_id: int
    payload: dict = field(default_factory=dict)


def encode_value(value: Any) -> Any:
    """Make a stored value JSON-serialisable (Oid and bytes get wrapped)."""
    # Fast path: the overwhelming majority of row values are plain
    # scalars (checked by exact class, so Oid/bool subtleties fall
    # through to the isinstance chain below).
    if value is None or value.__class__ in (str, int, float, bool):
        return value
    if isinstance(value, Oid):
        return {"__oid__": str(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__oid__"}:
            return Oid.parse(value["__oid__"])
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


class WriteAheadLog:
    """Append-only log with optional file mirroring.

    Parameters
    ----------
    path:
        Optional file path.  When given, every appended record is written
        as one JSON line and flushed on commit boundaries, so a crash loses
        at most the in-flight (uncommitted) tail — never a committed
        transaction.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`.  The WAL
        passes four crash points — ``wal.before_append`` (record never
        lands anywhere), ``wal.mid_record`` (a torn prefix of the JSON
        line reaches the file, then death), ``wal.after_write`` (a
        commit-boundary record reached the file buffer but the commit
        barrier was never entered) and ``wal.before_fsync`` (records
        written, the group's fsync never happens) — and supports
        :meth:`power_off` so a simulated power loss drops every byte
        since the last fsync.
    group_commit:
        When true (the default) commit-boundary appends go through a
        *group-commit barrier*: concurrent committers enqueue and block
        while one of them — the leader — performs a single flush+fsync
        for the whole group, then acknowledges every waiter whose LSN
        the fsync covered.  N concurrent keystrokes then cost one fsync
        instead of N.  Single-threaded behaviour is unchanged: a lone
        committer elects itself leader and fsyncs immediately.
    group_window:
        Seconds the leader lingers at the barrier for more committers
        to join before fsyncing (0.0 = fsync immediately; natural
        batching still occurs because committers that arrive during a
        leader's fsync pile up and are synced by the next leader).
    group_max:
        Size bound for one group: the leader stops waiting for joiners
        once this many commits are pending.
    """

    def __init__(self, path: str | None = None,
                 faults: "FaultInjector | None" = None,
                 registry=None, tracer=None, *,
                 group_commit: bool = True,
                 group_window: float = 0.0,
                 group_max: int = 64) -> None:
        from ..faults.injector import NO_FAULTS
        from ..obs.tracing import NULL_TRACER
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._records: list[WalRecord] = []
        self._lock = threading.RLock()
        self._next_lsn = 1
        self._path = path
        self._file = open(path, "a", encoding="utf-8") if path else None
        #: File size at the last fsync: what survives a power loss.
        self._durable_size = (os.path.getsize(path)
                              if path and os.path.exists(path) else 0)
        # Group-commit barrier state, guarded by ``_group_cond`` (never
        # nested inside ``_lock`` acquisition ordering is always
        # ``_lock`` -> ``_group_cond`` or one at a time).
        self._group_commit = group_commit
        self._group_window = group_window
        self._group_max = max(1, group_max)
        self._group_cond = threading.Condition()
        self._leader_busy = False
        self._pending_commits = 0
        #: Highest LSN known durable (covered by an fsync, or flushed on
        #: a clean close).  Commit waiters block until their LSN is <= it.
        self._synced_lsn = 0
        self.faults = faults if faults is not None else NO_FAULTS
        self.faults.attach_wal(self)
        reg = registry if registry is not None else NULL_REGISTRY
        self._m_appends = reg.counter("wal.appends")
        self._m_append_seconds = reg.histogram("wal.append_seconds")
        self._m_bytes = reg.counter("wal.appended_bytes")
        self._m_fsyncs = reg.counter("wal.fsyncs")
        self._m_fsync_seconds = reg.histogram("wal.fsync_seconds")
        self._f_group_size = reg.family("wal.group_commit_size",
                                        "histogram",
                                        buckets=COUNT_BUCKETS)
        self._m_group_size = reg.histogram("wal.group_commit_size",
                                           buckets=COUNT_BUCKETS)
        self._m_sync_wait = reg.histogram("wal.sync_wait_seconds")

    @property
    def path(self) -> str | None:
        return self._path

    @property
    def durable_lsn(self) -> int:
        """Highest LSN acknowledged durable by the commit barrier."""
        with self._group_cond:
            return self._synced_lsn

    def append(self, type_: str, txn_id: int, **payload: Any) -> WalRecord:
        """Append one record and return it (with its assigned LSN).

        Commit-boundary records (COMMIT / ABORT / CHECKPOINT) additionally
        block until the record is durable: the line is written to the
        file buffer under the append lock, then the caller enters the
        group-commit barrier *outside* it (see :meth:`_sync_to`), so
        concurrent committers share one fsync.
        """
        if type_ not in _TYPES:
            raise WalError(f"unknown WAL record type {type_!r}")
        started = perf_counter()
        self.faults.fire("wal.before_append", type=type_, txn=txn_id)
        needs_sync = False
        with self._lock:
            record = WalRecord(self._next_lsn, type_, txn_id,
                               encode_value(payload))
            self._next_lsn += 1
            if self._file is not None:
                line = json.dumps({
                    "lsn": record.lsn,
                    "type": record.type,
                    "txn": record.txn_id,
                    "payload": record.payload,
                }, separators=(",", ":"))
                torn = self.faults.check("wal.mid_record")
                if torn is not None:
                    # Torn write: a prefix of the line (never the whole
                    # line) reaches the file, then the process dies.
                    keep = max(1, min(len(line) - 1,
                                      int(len(line) * torn.tear)))
                    self._file.write(line[:keep])
                    self.faults.crash(torn, type=type_, txn=txn_id)
                self._file.write(line + "\n")
                self._m_bytes.inc(len(line) + 1)
                needs_sync = type_ in (COMMIT, ABORT, CHECKPOINT)
            self._records.append(record)
            self._m_appends.inc()
        if needs_sync:
            # Record is in the file buffer but not yet durable: death
            # here loses the commit without having acknowledged it.
            self.faults.fire("wal.after_write", type=type_, txn=txn_id)
            self._sync_to(record.lsn, type_, txn_id)
        self._m_append_seconds.observe(perf_counter() - started)
        return record

    def _fsync_locked(self, group: int, type_: str, txn_id: int) -> None:
        """Flush+fsync the file (caller holds ``_lock``; file is open).

        Traced as well as timed: the fsync span is the durability leg of
        every grouped keystroke's causal trace (child of the leader's txn
        span in scope during commit; followers link via their wait).
        """
        with self._tracer.span("wal.fsync", txn=txn_id, group_size=group):
            self.faults.fire("wal.before_fsync", type=type_, txn=txn_id,
                             group=group)
            fsync_started = perf_counter()
            self._file.flush()
            os.fsync(self._file.fileno())
            self._durable_size = self._file.tell()
            self._m_fsyncs.inc()
            self._m_fsync_seconds.observe(perf_counter() - fsync_started)
            self._m_group_size.observe(group)
            self._f_group_size.labels(role="solo").observe(group)

    def _sync_to(self, lsn: int, type_: str, txn_id: int) -> None:
        """Block until ``lsn`` is durable (group-commit barrier).

        One waiter at a time is elected *leader*; it optionally lingers
        ``group_window`` seconds for more committers (bounded by
        ``group_max``), snapshots the newest written LSN, performs a
        single flush+fsync, and publishes the synced LSN so every covered
        waiter returns.  Waiters whose WAL dies before their LSN is
        durable raise :class:`~repro.errors.CrashSignal` — an
        unacknowledged commit must never be reported as durable.
        """
        if not self._group_commit:
            with self._lock:
                if self._file is None:
                    raise CrashSignal("WAL died before commit fsync "
                                      f"(txn {txn_id})")
                self._fsync_locked(1, type_, txn_id)
            with self._group_cond:
                self._synced_lsn = max(self._synced_lsn, lsn)
            return
        waited_from = perf_counter()
        cond = self._group_cond
        with cond:
            self._pending_commits += 1
            if self._leader_busy and self._pending_commits >= self._group_max:
                # Wake a leader lingering in its group window: the group
                # is full, so it can fsync immediately instead of
                # sleeping the window out.  (Joins below the bound stay
                # silent — waking every follower per join is a wake
                # storm that costs more than the window saves.)
                cond.notify_all()
            try:
                while True:
                    if self._synced_lsn >= lsn:
                        self._m_sync_wait.observe(
                            perf_counter() - waited_from)
                        return
                    if self._file is None:
                        raise CrashSignal(
                            "WAL died before commit became durable "
                            f"(txn {txn_id}, lsn {lsn})")
                    if not self._leader_busy:
                        break  # become leader
                    cond.wait(0.05)
                self._leader_busy = True
                if self._group_window > 0.0:
                    deadline = waited_from + self._group_window
                    while (self._pending_commits < self._group_max
                           and self._file is not None):
                        remaining = deadline - perf_counter()
                        if remaining <= 0.0:
                            break
                        cond.wait(remaining)
                group = self._pending_commits
            finally:
                self._pending_commits -= 1
        # Leader: flush under the append lock (pinning the covered LSN
        # and byte position), then fsync *outside* it on a duped fd, so
        # other writers keep staging records while the disk syncs — the
        # overlap is where group commit's throughput comes from.
        try:
            with self._tracer.span("wal.fsync", txn=txn_id,
                                   group_size=group):
                with self._lock:
                    if self._file is None:
                        raise CrashSignal(
                            "WAL died before commit became durable "
                            f"(txn {txn_id}, lsn {lsn})")
                    self.faults.fire("wal.before_fsync", type=type_,
                                     txn=txn_id, group=group)
                    fsync_started = perf_counter()
                    self._file.flush()
                    flush_upto = self._next_lsn - 1
                    flush_pos = self._file.tell()
                    fd = os.dup(self._file.fileno())
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
                with self._lock:
                    if self._file is None:
                        # power_off raced the fsync: a power loss may
                        # have truncated below our flush point, so the
                        # group must die unacknowledged.
                        raise CrashSignal(
                            "WAL died during the group fsync "
                            f"(txn {txn_id}, lsn {lsn})")
                    if self._durable_size < flush_pos:
                        self._durable_size = flush_pos
                self._m_fsyncs.inc()
                self._m_fsync_seconds.observe(perf_counter() - fsync_started)
                self._m_group_size.observe(group)
                self._f_group_size.labels(role="leader").observe(group)
        except BaseException:
            with cond:
                self._leader_busy = False
                cond.notify_all()
            raise
        with cond:
            self._leader_busy = False
            self._synced_lsn = max(self._synced_lsn, flush_upto)
            cond.notify_all()
        self._m_sync_wait.observe(perf_counter() - waited_from)

    def append_shipped(self, record: WalRecord) -> WalRecord:
        """Append a record shipped from a leader, preserving its LSN.

        The replication apply path (:mod:`repro.repl`) writes the
        leader's records into the follower's own mirror file *verbatim*
        — same JSON line format, same LSN — so the follower's log is
        byte-equivalent to the shipped prefix of the leader's: recovery
        and promotion read it with the ordinary tooling.  No commit
        barrier is entered; durability is batched per shipped segment
        via :meth:`sync_shipped`.  The ``wal.mid_record`` crash point
        fires here too, so torture schedules can tear a record on the
        follower's disk mid-apply.
        """
        if record.type not in _TYPES:
            raise WalError(f"unknown WAL record type {record.type!r}")
        with self._lock:
            if record.lsn < self._next_lsn:
                raise WalError(
                    f"shipped record LSN {record.lsn} is behind the local "
                    f"tail {self._next_lsn - 1} (duplicates must be "
                    f"filtered by the applier)")
            if self._path is not None and self._file is None:
                raise CrashSignal("WAL died before shipped append "
                                  f"(lsn {record.lsn})")
            if self._file is not None:
                line = json.dumps({
                    "lsn": record.lsn,
                    "type": record.type,
                    "txn": record.txn_id,
                    "payload": record.payload,
                }, separators=(",", ":"))
                torn = self.faults.check("wal.mid_record")
                if torn is not None:
                    keep = max(1, min(len(line) - 1,
                                      int(len(line) * torn.tear)))
                    self._file.write(line[:keep])
                    self.faults.crash(torn, type=record.type,
                                      txn=record.txn_id)
                self._file.write(line + "\n")
                self._m_bytes.inc(len(line) + 1)
            self._records.append(record)
            self._next_lsn = record.lsn + 1
            self._m_appends.inc()
        return record

    def sync_shipped(self) -> int:
        """Make every shipped record durable; returns the covered LSN.

        Called at shipped-segment boundaries (and on promotion): one
        flush+fsync covers the whole batch of :meth:`append_shipped`
        writes, mirroring the leader's group-commit economics.  The
        in-memory log (no path) just advances the durable LSN.
        """
        with self._lock:
            if self._path is not None and self._file is None:
                raise CrashSignal("WAL died before the shipped-segment "
                                  "fsync")
            last = self._next_lsn - 1
            if self._file is not None:
                self._fsync_locked(1, "SEGMENT", 0)
        with self._group_cond:
            self._synced_lsn = max(self._synced_lsn, last)
            self._group_cond.notify_all()
        return last

    def records(self) -> Iterator[WalRecord]:
        """Iterate records in LSN order (snapshot)."""
        with self._lock:
            return iter(list(self._records))

    def records_from(self, lsn: int, limit: int | None = None
                     ) -> list[WalRecord]:
        """Records with LSN >= ``lsn`` in order, up to ``limit`` of them.

        The segment-shipping read path: in-memory records are sorted by
        LSN, so the start is found by bisection instead of copying the
        whole log per segment.
        """
        with self._lock:
            lo = bisect.bisect_left(self._records, lsn,
                                    key=lambda r: r.lsn)
            hi = len(self._records) if limit is None else lo + limit
            return self._records[lo:hi]

    def last_lsn(self) -> int:
        """The LSN of the most recently appended record."""
        with self._lock:
            return self._next_lsn - 1

    def advance_lsn(self, lsn: int) -> None:
        """Keep LSN allocation ahead of ``lsn`` (follower resume).

        A follower rebuilt from its local mirror file starts with an
        empty in-memory log; advancing the allocator past the recovered
        prefix keeps shipped and (post-promotion) locally appended
        records strictly increasing.
        """
        with self._lock:
            self._next_lsn = max(self._next_lsn, lsn + 1)

    def truncate_before(self, lsn: int) -> int:
        """Drop in-memory records with LSN < ``lsn`` (after a checkpoint).

        Returns the number of records dropped.  The file, if any, is left
        untouched (files are append-only; compaction is checkpoint+new file,
        handled by the engine).
        """
        with self._lock:
            keep = [r for r in self._records if r.lsn >= lsn]
            dropped = len(self._records) - len(keep)
            self._records = keep
            return dropped

    def close(self) -> None:
        """Flush and close the mirror file, if any.

        A clean close flushes every buffered record to the OS, so any
        commit still waiting at the group barrier is acknowledged: its
        record will be seen by recovery.
        """
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None
            last = self._next_lsn - 1
        with self._group_cond:
            self._synced_lsn = max(self._synced_lsn, last)
            self._group_cond.notify_all()

    def power_off(self, *, lose_unsynced: bool = False) -> None:
        """Simulate losing the process (or the machine) mid-flight.

        A *process* crash loses only user-space buffers — the OS page
        cache survives — so flushed-but-unsynced bytes are kept.  A
        *power loss* (``lose_unsynced=True``) truncates the file back to
        the last fsync boundary: only what :meth:`append` fsynced is
        durable.  Either way the file handle is dropped, so nothing the
        "dead" process does afterwards can reach disk.
        """
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            self._file.close()
            self._file = None
            if lose_unsynced and self._path is not None:
                with open(self._path, "r+b") as raw:
                    raw.truncate(self._durable_size)
        # Wake commit waiters: their next barrier check sees the dead
        # file and raises CrashSignal (never a false durability ack).
        with self._group_cond:
            self._group_cond.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @staticmethod
    def load_file(path: str,
                  on_torn: Callable[[], None] | None = None,
                  ) -> list[WalRecord]:
        """Read a mirrored log file back into records (for recovery).

        A torn *trailing* record — a crash mid-write leaves a partial
        JSON line, or one missing required fields — is skipped with a
        warning: that is the expected signature of process death and
        recovery must proceed past it.  ``on_torn`` (if given) is called
        when that happens, so recovery can count the event
        (``wal.torn_tail_recoveries``).  A malformed record *followed by
        valid ones* is a different story (real corruption, not a torn
        tail) and raises :class:`~repro.errors.WalError` rather than
        silently discarding committed history.
        """
        records: list[WalRecord] = []
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.strip() for line in handle]
        lines = [line for line in lines if line]
        for i, line in enumerate(lines):
            try:
                raw = json.loads(line)
                record = WalRecord(raw["lsn"], raw["type"], raw["txn"],
                                   raw.get("payload", {}))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    warnings.warn(
                        f"skipping torn trailing WAL record in {path!r} "
                        f"(crash mid-write): {exc!r}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    if on_torn is not None:
                        on_torn()
                    break
                raise WalError(
                    f"corrupt WAL record at line {i + 1} of {path!r} "
                    f"(not a torn tail — {len(lines) - i - 1} valid-looking "
                    f"records follow): {exc!r}"
                ) from exc
            records.append(record)
        return records


def committed_txn_ids(records: Iterable[WalRecord]) -> set[int]:
    """Return the ids of transactions with a COMMIT record."""
    return {r.txn_id for r in records if r.type == COMMIT}
