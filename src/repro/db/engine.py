"""The database engine facade.

:class:`Database` ties the pieces together: tables, the lock manager, the
write-ahead log, commit triggers and the event bus.  It is the "fully-
fledged database" substrate on which the TeNDaX text extension is built —
transactions here are the "real-time transactions" of the paper.

Typical use::

    db = Database()
    db.create_table("notes", [column("body", "str")])
    with db.transaction() as txn:
        txn.insert("notes", {"body": "hello"})
    rows = db.query("notes").run()
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterable, Mapping

from ..clock import Clock, SystemClock
from ..errors import DuplicateTableError, UnknownTableError
from ..events import EventBus
from ..ids import IdNamespace, Oid
from ..obs import Observability
from . import wal as walmod
from .catalog import Catalog
from .locks import LockManager
from .query import Query
from .schema import Column, TableSchema
from .table import Table
from .transaction import BatchJoin, Change, Transaction, TxnMetrics
from .triggers import TriggerRegistry
from .wal import WriteAheadLog


class Database:
    """An embedded, multi-user, transactional, in-memory database.

    Parameters
    ----------
    node:
        Name of this database instance; prefixes every generated OID, which
        keeps objects from different instances (e.g. the "external" sources
        of the lineage demo) globally distinguishable.
    wal_path:
        Optional file to mirror the write-ahead log to, enabling recovery
        by a fresh process (see :mod:`repro.db.recovery`).
    clock:
        Time source used for timestamps; inject a
        :class:`~repro.clock.SimulatedClock` for deterministic runs.
    lock_timeout:
        Default seconds a transaction waits for a contended lock.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` threaded
        through the WAL, transactions, checkpoints and the lock manager
        for deterministic crash/latency torture (see ``docs/FAULTS.md``).
    obs:
        Optional :class:`~repro.obs.Observability` to report metrics and
        trace spans into; a fresh enabled one is created by default.
        Pass ``Observability(enabled=False)`` for a no-op baseline (see
        ``docs/OBSERVABILITY.md``).
    wal_group_commit / wal_group_window / wal_group_max:
        Group-commit knobs forwarded to the
        :class:`~repro.db.wal.WriteAheadLog`: concurrent committers share
        one fsync via a commit barrier (see ``docs/INTERNALS.md``,
        "Group commit & batching").  Defaults keep single-threaded
        behaviour identical to per-commit fsync.
    """

    def __init__(
        self,
        node: str = "db",
        *,
        wal_path: str | None = None,
        clock: Clock | None = None,
        lock_timeout: float = 5.0,
        faults=None,
        obs: Observability | None = None,
        wal_group_commit: bool = True,
        wal_group_window: float = 0.0,
        wal_group_max: int = 64,
    ) -> None:
        from ..faults.injector import NO_FAULTS
        self.node = node
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.ids = IdNamespace(node)
        self.faults = faults if faults is not None else NO_FAULTS
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self.locks = LockManager(default_timeout=lock_timeout,
                                 faults=self.faults, registry=registry,
                                 tracer=self.obs.tracer)
        self.wal = WriteAheadLog(wal_path, faults=self.faults,
                                 registry=registry,
                                 tracer=self.obs.tracer,
                                 group_commit=wal_group_commit,
                                 group_window=wal_group_window,
                                 group_max=wal_group_max)
        self.bus = EventBus()
        self.triggers = TriggerRegistry()
        self.catalog = Catalog(self)
        self._tables: dict[str, Table] = {}
        self._txn_counter = itertools.count(1)
        self._ddl_lock = threading.RLock()
        #: Per-thread active batch transaction (see :meth:`batch`).
        self._batch_local = threading.local()
        self.stats = {"commits": 0, "aborts": 0, "transactions": 0}
        #: Metric handles resolved once; transactions are the hot path.
        self.txn_metrics = TxnMetrics(registry)
        self._m_checkpoints = registry.counter("db.checkpoints")
        self._m_checkpoint_seconds = registry.histogram(
            "db.checkpoint_seconds")
        # -- MVCC snapshot state (see docs/INTERNALS.md, "MVCC") --------
        # Ordering: ``_mvcc_lock`` may be held while taking the WAL's
        # append lock (``last_lsn``), never the other way around — the
        # WAL layer makes no engine calls.
        self._mvcc_lock = threading.Lock()
        #: txn_id -> highest LSN snapshots may pin while this commit is
        #: between its COMMIT append and its in-memory apply.
        self._applying: dict[int, int] = {}
        #: snapshot LSN -> number of live read-only txns pinned to it.
        self._live_snapshots: dict[int, int] = {}
        #: Version chains are truncated every N write commits (plus on
        #: explicit :meth:`gc_versions` calls).
        self.gc_interval = 512
        self._commits_since_gc = 0
        #: Post-commit changefeed, created lazily by :meth:`changefeed`
        #: so feed-less engines pay nothing on the commit path.
        self._feed = None

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable[Column],
        *,
        key: str | None = None,
        log: bool = True,
    ) -> Table:
        """Create a table.  ``key`` names a unique, indexed logical key."""
        schema = TableSchema(name, list(columns), key=key)
        with self._ddl_lock:
            if name in self._tables:
                raise DuplicateTableError(f"table {name!r} already exists")
            table = Table(schema, metrics=self.txn_metrics)
            self._tables[name] = table
        if log:
            self.wal.append(
                walmod.CREATE_TABLE, 0, table=name, key=key,
                columns=[
                    {
                        "name": c.name,
                        "type": c.type.value,
                        "nullable": c.nullable,
                        "default": walmod.encode_value(c.default),
                    }
                    for c in schema.columns
                ],
            )
        return table

    def drop_table(self, name: str, *, log: bool = True) -> None:
        """Remove a table (logged for recovery)."""
        with self._ddl_lock:
            if name not in self._tables:
                raise UnknownTableError(f"no table {name!r}")
            del self._tables[name]
        if log:
            self.wal.append(walmod.DROP_TABLE, 0, table=name)

    def create_index(self, table_name: str, column: str, *,
                     name: str | None = None, kind: str = "hash",
                     unique: bool = False, log: bool = True):
        """Create a secondary index on ``table_name.column``."""
        table = self.table(table_name)
        index_name = name or f"{table_name}_{column}_{kind}"
        index = table.create_index(index_name, column, kind=kind,
                                   unique=unique)
        if log:
            self.wal.append(
                walmod.CREATE_INDEX, 0, table=table_name, name=index_name,
                column=column, kind=kind, unique=unique,
            )
        return index

    def table(self, name: str) -> Table:
        """Look up a table object by name (raises if absent)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    def tables(self) -> list[str]:
        """Names of all tables, in creation order."""
        return list(self._tables)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self, *, lock_timeout: float | None = None,
              read_only: bool = False,
              locking_reads: bool = False) -> Transaction:
        """Start a new transaction.

        ``read_only=True`` starts an MVCC *snapshot* transaction: it pins
        the current visible LSN and every read resolves the newest
        version at or below it from the tables' version chains — no
        LockManager calls, no WAL records, DML raises
        :class:`~repro.errors.ReadOnlyTransactionError`.  Writers are
        never blocked by it and never block it.

        ``locking_reads=True`` (with ``read_only``) is the pre-MVCC
        2PL-reader baseline instead: reads take SHARED row locks held to
        the end.  Kept for interference benchmarks, not for real use.

        Inside an active :meth:`batch` on the same thread a *write*
        begin returns a :class:`~repro.db.transaction.BatchJoin` view of
        the batch transaction instead: code written per-operation ("one
        keystroke, one transaction") transparently coalesces into the
        batch.  Read-only begins never join a batch.
        """
        if read_only:
            txn_id = next(self._txn_counter)
            self.stats["transactions"] += 1
            snapshot_lsn = None if locking_reads else self.pin_snapshot()
            return Transaction(self, txn_id, lock_timeout=lock_timeout,
                               read_only=True, snapshot_lsn=snapshot_lsn,
                               locking_reads=locking_reads)
        batch = self.current_batch()
        if batch is not None and batch.is_active:
            batch.batched_ops += 1
            return BatchJoin(batch)  # type: ignore[return-value]
        txn_id = next(self._txn_counter)
        self.stats["transactions"] += 1
        return Transaction(self, txn_id, lock_timeout=lock_timeout)

    def transaction(self, *, lock_timeout: float | None = None) -> Transaction:
        """Alias of :meth:`begin`; reads well in ``with`` statements."""
        return self.begin(lock_timeout=lock_timeout)

    @contextmanager
    def snapshot(self):
        """A read-only snapshot transaction as a context manager.

        Everything read inside the block observes one consistent commit
        point — a multi-query analytics pass (search profiling, lineage
        walks, folder evaluation) cannot see a commit land between its
        queries.  Exiting releases the snapshot pin so GC can advance.
        """
        with self.begin(read_only=True) as txn:
            yield txn

    def current_batch(self) -> Transaction | None:
        """The batch transaction open on this thread, if any."""
        txn = getattr(self._batch_local, "txn", None)
        if txn is not None and not txn.is_active:
            # A crash/abort may have killed the batch under the context
            # manager's feet; never hand out a dead transaction.
            return None
        return txn

    @contextmanager
    def batch(self, *, lock_timeout: float | None = None):
        """Coalesce a burst of editing operations into one transaction.

        Every ``db.transaction()`` / ``db.begin()`` opened on this thread
        inside the ``with`` block joins a single underlying transaction:
        the burst stages all its row ops under amortised locks and
        commits once — one COMMIT record, one (group-committed) fsync —
        instead of paying the durability cost per keystroke.  On
        exception the whole batch rolls back; partial bursts never
        commit.  Nested calls join the outer batch.  The number of
        coalesced operations is observed as ``txn.batched_ops``.
        """
        existing = self.current_batch()
        if existing is not None:
            yield existing
            return
        txn = self.begin(lock_timeout=lock_timeout)
        self._batch_local.txn = txn
        try:
            yield txn
        except BaseException:
            self._batch_local.txn = None
            if txn.is_active:
                txn.abort()
            raise
        else:
            # Clear the thread-local *before* committing so commit
            # triggers that open their own transactions don't join a
            # batch that is already sealing.
            self._batch_local.txn = None
            if txn.is_active:
                self.txn_metrics.batched_ops.observe(txn.batched_ops)
                txn.commit()

    def on_commit(self, txn: Transaction, changes: list[Change]) -> None:
        """Called by a transaction after it applied its commit."""
        self.stats["commits"] += 1
        self._commits_since_gc += 1
        if self._commits_since_gc >= self.gc_interval:
            # Benign racy counter: a skipped or doubled GC pass is fine.
            self._commits_since_gc = 0
            self.gc_versions()
        self.triggers.dispatch(txn, changes)
        if self._feed is not None:
            self._feed.publish(txn, changes)
        self.bus.publish("db.commit", txn_id=txn.txn_id, changes=changes)

    def changefeed(self, *, retention: int = 512):
        """This database's post-commit changefeed (created on first use).

        The single ordered stream every derived-data consumer now rides
        (see :mod:`repro.feed`); ``retention`` applies only on the call
        that creates the feed.
        """
        if self._feed is None:
            from ..feed.changefeed import Changefeed
            self._feed = Changefeed(self, retention=retention)
        return self._feed

    def on_abort(self, txn: Transaction) -> None:
        """Called by a transaction after it rolled back."""
        self.stats["aborts"] += 1
        self.bus.publish("db.abort", txn_id=txn.txn_id)

    # ------------------------------------------------------------------
    # Autocommit conveniences
    # ------------------------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any]) -> int:
        """Insert one row in its own transaction; returns the rowid."""
        with self.transaction() as txn:
            return txn.insert(table_name, values)

    def update(self, table_name: str, rowid: int,
               updates: Mapping[str, Any]) -> dict:
        """Update one row in its own transaction."""
        with self.transaction() as txn:
            return txn.update(table_name, rowid, updates)

    def delete(self, table_name: str, rowid: int) -> None:
        """Delete one row in its own transaction."""
        with self.transaction() as txn:
            txn.delete(table_name, rowid)

    def get(self, table_name: str, rowid: int) -> dict:
        """Read one committed row (raises if absent)."""
        table = self.table(table_name)
        return table.schema.row_dict(table.get(rowid))

    def read(self, table_name: str, rowid: int) -> dict | None:
        """Read one committed row, or ``None`` if absent."""
        table = self.table(table_name)
        row = table.read(rowid)
        return None if row is None else table.schema.row_dict(row)

    def query(self, table_name: str) -> Query:
        """Start a query over committed data."""
        return Query(self, table_name)

    # ------------------------------------------------------------------
    # IDs / time
    # ------------------------------------------------------------------

    def new_oid(self, kind: str) -> Oid:
        """Fresh object id in this database's namespace."""
        return self.ids.next(kind)

    def advance_txn_ids(self, seen: int) -> None:
        """Keep transaction-id allocation ahead of ``seen``.

        Promotion turns a follower writable: its WAL already holds the
        leader's transaction ids, so new local transactions must start
        above the highest shipped one — two transactions sharing an id
        in one log would conflate under recovery's COMMIT matching.
        """
        current = next(self._txn_counter)
        self._txn_counter = itertools.count(max(current, seen + 1))

    def now(self) -> float:
        """Current time from the injected clock."""
        return self.clock.now()

    # ------------------------------------------------------------------
    # MVCC: snapshot pinning, commit intents, version GC
    # ------------------------------------------------------------------

    def visible_lsn(self) -> int:
        """The highest LSN a new snapshot may pin right now.

        Usually the last appended WAL LSN.  While any committer sits
        between its COMMIT append and its in-memory apply (a *commit
        intent*), the visible LSN is capped just below the oldest such
        commit — a pinned snapshot therefore always covers only commits
        whose table images are fully applied, never a torn one.
        """
        with self._mvcc_lock:
            return self._visible_lsn_locked()

    def _visible_lsn_locked(self) -> int:
        last = self.wal.last_lsn()
        if not self._applying:
            return last
        return min(last, min(self._applying.values()))

    def register_commit_intent(self, txn_id: int) -> None:
        """Open a commit-intent window before the COMMIT record exists.

        Until :meth:`raise_commit_floor` learns the record's LSN, cap
        snapshots at the log tail as of now: any LSN the COMMIT record
        can get is above it.
        """
        with self._mvcc_lock:
            self._applying[txn_id] = self.wal.last_lsn()

    def raise_commit_floor(self, txn_id: int, commit_lsn: int) -> None:
        """The COMMIT record has its LSN: snapshots may pin up to just
        below it while the apply is still in flight."""
        with self._mvcc_lock:
            if txn_id in self._applying:
                self._applying[txn_id] = commit_lsn - 1

    def clear_commit_intent(self, txn_id: int) -> None:
        """The commit is fully applied (or dead): stop capping."""
        with self._mvcc_lock:
            self._applying.pop(txn_id, None)

    def pin_snapshot(self) -> int:
        """Pin and return the current visible LSN (one reader ref)."""
        with self._mvcc_lock:
            lsn = self._visible_lsn_locked()
            self._live_snapshots[lsn] = self._live_snapshots.get(lsn, 0) + 1
            return lsn

    def unpin_snapshot(self, lsn: int) -> None:
        """Drop one reader ref from ``lsn`` (snapshot txn finished)."""
        with self._mvcc_lock:
            count = self._live_snapshots.get(lsn, 0) - 1
            if count > 0:
                self._live_snapshots[lsn] = count
            else:
                self._live_snapshots.pop(lsn, None)

    def gc_watermark(self) -> int:
        """Oldest LSN any live (or future) snapshot can still observe."""
        with self._mvcc_lock:
            lsn = self._visible_lsn_locked()
            if self._live_snapshots:
                lsn = min(lsn, min(self._live_snapshots))
            return lsn

    def gc_versions(self, watermark: int | None = None) -> int:
        """Truncate version chains below the oldest live snapshot.

        Runs automatically every :attr:`gc_interval` write commits;
        callers with bursty retention (e.g. after closing a long
        analytics snapshot) may invoke it directly.  Returns the number
        of versions dropped (also counted as
        ``txn.version_gc_truncated``).
        """
        if watermark is None:
            watermark = self.gc_watermark()
        dropped = 0
        for table in list(self._tables.values()):
            dropped += table.gc_versions(watermark)
        if dropped:
            self.txn_metrics.version_gc_truncated.inc(dropped)
        return dropped

    def live_versions(self) -> int:
        """Superseded row versions currently retained across all tables."""
        return sum(t.live_versions() for t in self._tables.values())

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a full snapshot into the WAL; returns the checkpoint LSN.

        Recovery can start from the latest checkpoint instead of replaying
        history from the beginning.  The ``checkpoint.mid_snapshot``
        crash point fires halfway through the table sweep: a crash there
        must leave recovery falling back to the previous checkpoint (or
        full history) — never a half-snapshot.
        """
        started = perf_counter()
        snapshot = {}
        tables = list(self._tables.items())
        for position, (name, table) in enumerate(tables, start=1):
            if position == (len(tables) + 1) // 2:
                self.faults.fire("checkpoint.mid_snapshot", table=name)
            snapshot[name] = {
                "schema": {
                    "key": table.schema.key,
                    "columns": [
                        {
                            "name": c.name,
                            "type": c.type.value,
                            "nullable": c.nullable,
                            "default": walmod.encode_value(c.default),
                        }
                        for c in table.schema.columns
                    ],
                },
                "indexes": [
                    {
                        "name": idx.name,
                        "column": idx.column,
                        "kind": idx.kind,
                        "unique": idx.unique,
                    }
                    for idx in table.indexes().values()
                ],
                "rows": {
                    str(rowid): table.schema.row_dict(row)
                    for rowid, row in table.committed_items()
                },
            }
        record = self.wal.append(walmod.CHECKPOINT, 0, tables=snapshot)
        self._m_checkpoints.inc()
        self._m_checkpoint_seconds.observe(perf_counter() - started)
        return record.lsn

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, dict]:
        """Snapshot of every metric recorded against this database.

        Covers the engine's own subsystems (``txn.*``, ``wal.*``,
        ``lock.*``, ``db.*``) plus anything else reporting into the same
        :class:`~repro.obs.Observability` — the collaboration server and
        the search engine register their ``collab.*`` / ``search.*``
        metrics here too.  Keys are catalogued metric names; values are
        plain JSON-serialisable dicts (see ``docs/OBSERVABILITY.md``).
        """
        return self.obs.registry.snapshot()

    def close(self) -> None:
        """Flush and close the WAL file (if any)."""
        self.wal.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Database(node={self.node!r}, tables={len(self._tables)}, "
                f"commits={self.stats['commits']})")
