"""Transactions: strict two-phase locking, WAL logging, commit triggers.

A transaction stages row images in the tables it touches (see
:mod:`repro.db.table`), holding exclusive row locks until commit or abort.
WAL records are appended as operations are staged; COMMIT makes them
effective.  On commit the engine publishes a ``db.commit`` event carrying
the full change list — this is the hook that drives real-time propagation
to editor clients, metadata capture and dynamic folder refresh.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..errors import (
    CrashSignal,
    ReadOnlyTransactionError,
    RowNotFoundError,
    TransactionStateError,
)
from ..obs.metrics import COUNT_BUCKETS
from . import wal as walmod
from .locks import SHARED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Database


class TxnMetrics:
    """Transaction metric handles, resolved once per database.

    Transactions are the hot path — one per keystroke — so the engine
    looks every metric up a single time at construction instead of by
    name per transaction.
    """

    __slots__ = ("begun", "committed", "aborted", "crashed", "active",
                 "duration", "commit_seconds", "ops", "batched_ops",
                 "snapshot_reads", "versions_live", "version_gc_truncated")

    def __init__(self, registry) -> None:
        self.begun = registry.counter("txn.begun")
        self.committed = registry.counter("txn.committed")
        self.aborted = registry.counter("txn.aborted")
        self.crashed = registry.counter("txn.crashed")
        self.active = registry.gauge("txn.active")
        self.duration = registry.histogram("txn.duration_seconds")
        self.commit_seconds = registry.histogram("txn.commit_seconds")
        self.ops = registry.histogram("txn.ops", buckets=COUNT_BUCKETS)
        self.batched_ops = registry.histogram("txn.batched_ops",
                                              buckets=COUNT_BUCKETS)
        self.snapshot_reads = registry.counter("txn.snapshot_reads")
        self.versions_live = registry.gauge("txn.versions_live")
        self.version_gc_truncated = registry.counter(
            "txn.version_gc_truncated")


class TxnState(enum.Enum):
    """Transaction lifecycle states."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class Change:
    """One committed row change, as delivered to commit subscribers.

    ``before`` is the committed image the change superseded: the full
    row a delete removed or an update overwrote (``None`` on insert).
    Delete subscribers must use it — ``row`` is ``None`` for them, and
    without the before-image a consumer cannot even tell which document
    a vanished row belonged to.
    """

    table: str
    kind: str                  # "insert" | "update" | "delete"
    rowid: int
    row: dict | None           # column mapping after the change (None=delete)
    before: dict | None = None  # column mapping before (None=insert)


class Transaction:
    """Handle for one unit of work against a :class:`~repro.db.engine.Database`.

    Usually obtained via ``db.transaction()`` (a context manager that
    commits on clean exit and aborts on exception) or ``db.begin()``.
    """

    def __init__(self, db: "Database", txn_id: int, *,
                 lock_timeout: float | None = None,
                 read_only: bool = False,
                 snapshot_lsn: int | None = None,
                 locking_reads: bool = False) -> None:
        self._db = db
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self.lock_timeout = lock_timeout
        #: Read-only transactions write no WAL records, stage nothing and
        #: raise :class:`~repro.errors.ReadOnlyTransactionError` on DML.
        self.read_only = read_only
        #: MVCC mode: when set, every read resolves the newest version
        #: ``<=`` this LSN from the version chains — zero LockManager
        #: calls on the whole read path (``None`` = read-committed).
        self.snapshot_lsn = snapshot_lsn
        #: 2PL-reader mode (the pre-MVCC baseline, kept for comparison
        #: benchmarks): reads take SHARED row locks held to the end, so
        #: scans block behind writers and vice versa.
        self.locking_reads = locking_reads
        #: (table_name, rowid) in staging order — commit applies in order.
        self._ops: list[tuple[str, int]] = []
        self._ops_seen: set[tuple[str, int]] = set()
        #: Resources already locked by this transaction (strict 2PL holds
        #: them until the end, so a local set is an exact fast path that
        #: spares repeat acquires the lock-manager round-trip — batched
        #: bursts touch the same document row once per keystroke).
        self._held_res: set = set()
        #: Editing operations that joined this transaction via
        #: ``Database.batch()`` (observed as ``txn.batched_ops``).
        self.batched_ops = 0
        #: LSN of this transaction's COMMIT record (set during commit;
        #: the changefeed stamps its commit batch with it).
        self.commit_lsn: int | None = None
        self._lock = threading.RLock()
        self._metrics = db.txn_metrics
        if read_only:
            # Tagged so an exported trace distinguishes a lock-free
            # snapshot scan from a write transaction at a glance.
            self._span = db.obs.tracer.start("txn", txn=txn_id,
                                             read_only=True)
        else:
            self._span = db.obs.tracer.start("txn", txn=txn_id)
        self._started = perf_counter()
        self._finished = False
        self._metrics.begun.inc()
        self._metrics.active.inc()
        if not read_only:
            # Read-only transactions leave no WAL trace at all: they can
            # never need recovery, and keeping them off the log keeps
            # crash-torture schedules byte-identical with or without
            # concurrent snapshot readers.
            try:
                db.wal.append(walmod.BEGIN, txn_id)
            except CrashSignal:
                self._finish("crash")
                raise

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    # -- state helpers ------------------------------------------------------

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def _require_writable(self) -> None:
        self._require_active()
        if self.read_only:
            raise ReadOnlyTransactionError(
                f"transaction {self.txn_id} is read-only"
            )

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def _finish(self, outcome: str) -> None:
        """Close the transaction's span and settle its lifecycle metrics.

        Idempotent, and exactly one outcome wins: a transaction killed by
        an injected crash records ``"crash"`` even though the post-mortem
        context manager still calls :meth:`abort` afterwards.
        """
        if self._finished:
            return
        self._finished = True
        if self.snapshot_lsn is not None:
            self._db.unpin_snapshot(self.snapshot_lsn)
        metrics = self._metrics
        metrics.active.dec()
        metrics.duration.observe(perf_counter() - self._started)
        if outcome == "commit":
            metrics.committed.inc()
        elif outcome == "abort":
            metrics.aborted.inc()
        else:
            metrics.crashed.inc()
        self._span.end(outcome)

    @property
    def span(self):
        """The transaction's trace span (for cross-layer parenting)."""
        return self._span

    # -- locking ------------------------------------------------------------

    def _lock_row(self, table: str, rowid: int) -> None:
        resource = ("row", table, rowid)
        if resource in self._held_res:
            return
        self._db.locks.acquire(self.txn_id, resource,
                               timeout=self.lock_timeout)
        self._held_res.add(resource)

    def lock_shared(self, table: str, rowid: int) -> None:
        """Take a SHARED row lock (2PL-reader baseline mode only)."""
        resource = ("row", table, rowid)
        if resource in self._held_res:
            return
        self._db.locks.acquire(self.txn_id, resource, SHARED,
                               timeout=self.lock_timeout)
        self._held_res.add(resource)

    def _lock_key(self, table: str, column: str, value: Any) -> None:
        """Serialise claims on a unique key value across transactions."""
        if value is None:
            return
        resource = ("key", table, column, value)
        if resource in self._held_res:
            return
        self._db.locks.acquire(self.txn_id, resource,
                               timeout=self.lock_timeout)
        self._held_res.add(resource)

    def lock_rows(self, table_name: str, rowids: Iterable[int]) -> None:
        """Pre-acquire exclusive locks on a batch of rows at once.

        Range operations (styling, deleting a selection) know every row
        they will touch up front; one
        :meth:`~repro.db.locks.LockManager.acquire_many` call amortises
        the lock-manager round-trip across the whole range instead of
        paying it per row.
        """
        self._require_writable()
        fresh = [("row", table_name, rowid) for rowid in rowids
                 if ("row", table_name, rowid) not in self._held_res]
        if not fresh:
            return
        self._db.locks.acquire_many(self.txn_id, fresh,
                                    timeout=self.lock_timeout)
        self._held_res.update(fresh)

    def _record_op(self, table: str, rowid: int) -> None:
        marker = (table, rowid)
        if marker not in self._ops_seen:
            self._ops_seen.add(marker)
            self._ops.append(marker)

    # -- DML ----------------------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any]) -> int:
        """Insert a row; returns its rowid."""
        self._require_writable()
        table = self._db.table(table_name)
        try:
            with self._lock:
                for index in table.indexes().values():
                    if index.unique and index.column in values:
                        self._lock_key(table_name, index.column,
                                       values[index.column])
                rowid, row = table.stage_insert(self.txn_id, values)
                self._lock_row(table_name, rowid)
                self._record_op(table_name, rowid)
                self._db.wal.append(
                    walmod.INSERT, self.txn_id, table=table_name,
                    rowid=rowid, values=table.schema.row_dict(row),
                )
                return rowid
        except CrashSignal:
            self._finish("crash")
            raise

    def update(self, table_name: str, rowid: int,
               updates: Mapping[str, Any]) -> dict:
        """Update a row; returns the new full row mapping."""
        self._require_writable()
        table = self._db.table(table_name)
        try:
            with self._lock:
                self._lock_row(table_name, rowid)
                for index in table.indexes().values():
                    if index.unique and index.column in updates:
                        self._lock_key(table_name, index.column,
                                       updates[index.column])
                row = table.stage_update(self.txn_id, rowid, updates)
                self._record_op(table_name, rowid)
                row_map = table.schema.row_dict(row)
                self._db.wal.append(
                    walmod.UPDATE, self.txn_id, table=table_name,
                    rowid=rowid, values=row_map,
                )
                return row_map
        except CrashSignal:
            self._finish("crash")
            raise

    def delete(self, table_name: str, rowid: int) -> None:
        """Delete a row."""
        self._require_writable()
        table = self._db.table(table_name)
        try:
            with self._lock:
                self._lock_row(table_name, rowid)
                base = table.stage_delete(self.txn_id, rowid)
                self._record_op(table_name, rowid)
                # The before-image rides in the DELETE record so the
                # changefeed's WAL catch-up can hand delete events the
                # vanished row (recovery itself ignores the payload).
                self._db.wal.append(
                    walmod.DELETE, self.txn_id, table=table_name,
                    rowid=rowid, values=table.schema.row_dict(base),
                )
        except CrashSignal:
            self._finish("crash")
            raise

    # -- reads (own-writes visible; snapshot txns read their pinned LSN) -----

    def _read_row(self, table, table_name: str, rowid: int) -> tuple | None:
        """One row under this transaction's visibility mode."""
        if self.snapshot_lsn is not None:
            self._metrics.snapshot_reads.inc()
            return table.snapshot_read(rowid, self.snapshot_lsn)
        if self.locking_reads:
            self.lock_shared(table_name, rowid)
        return table.read(rowid, self.txn_id)

    def read(self, table_name: str, rowid: int) -> dict | None:
        """Read one row as visible to this transaction, or ``None``."""
        self._require_active()
        table = self._db.table(table_name)
        row = self._read_row(table, table_name, rowid)
        return None if row is None else table.schema.row_dict(row)

    def get(self, table_name: str, rowid: int) -> dict:
        """Like :meth:`read` but raises if the row is absent."""
        row = self.read(table_name, rowid)
        if row is None:
            raise RowNotFoundError(
                f"no row {rowid} in table {table_name!r}"
            )
        return row

    def get_for_update(self, table_name: str, rowid: int) -> dict:
        """Read a row under its exclusive lock (``SELECT FOR UPDATE``).

        Acquires the row's write lock *before* reading, so a subsequent
        :meth:`update` in this transaction cannot suffer a lost update:
        no other transaction can change the row between the read and the
        write.  Use this for read-modify-write cycles.
        """
        self._require_writable()
        table = self._db.table(table_name)
        self._lock_row(table_name, rowid)
        return table.schema.row_dict(table.get(rowid, self.txn_id))

    def query(self, table_name: str):
        """Start a query that sees this transaction's uncommitted writes."""
        from .query import Query
        return Query(self._db, table_name, txn=self)

    # -- lifecycle ------------------------------------------------------------

    def commit(self) -> list[Change]:
        """Commit: log, apply staged images, release locks, fire triggers.

        Crash points: ``txn.pre_commit`` fires before the COMMIT record
        is appended (a crash here loses the transaction), and
        ``txn.post_commit`` fires right after it is durable but before
        the staged images are applied (a crash here must still surface
        the transaction after recovery — the commit point is the WAL
        append, not the in-memory apply).

        A read-only transaction has nothing to log or apply: commit just
        settles its lifecycle (and releases its snapshot pin / shared
        locks).  No crash points fire and no commit event is published,
        so snapshot readers are invisible to torture schedules and
        commit triggers alike.
        """
        self._require_active()
        if self.read_only:
            self.state = TxnState.COMMITTED
            self._db.locks.release_all(self.txn_id)
            self._finish("commit")
            return []
        started = perf_counter()
        # The txn span is detached; putting it in scope for the commit
        # parents the WAL fsync and the commit fan-out (notification
        # dispatch) under it, linking the keystroke's causal trace
        # through the durability and propagation legs.
        with self._db.obs.tracer.scope(self._span):
            try:
                with self._lock:
                    self._db.faults.fire("txn.pre_commit", txn=self.txn_id)
                    # Commit-intent window: from just before the COMMIT
                    # record gets its LSN until every staged image is
                    # applied, new snapshots must pin *below* this
                    # commit — otherwise a reader could pin an LSN that
                    # covers the COMMIT record but see pre-apply tables
                    # (a torn snapshot).  See Database.visible_lsn().
                    self._db.register_commit_intent(self.txn_id)
                    try:
                        record = self._db.wal.append(walmod.COMMIT,
                                                     self.txn_id)
                        self._db.raise_commit_floor(self.txn_id, record.lsn)
                        self._db.faults.fire("txn.post_commit",
                                             txn=self.txn_id)
                        self.commit_lsn = record.lsn
                        changes: list[Change] = []
                        for table_name, rowid in self._ops:
                            table = self._db.table(table_name)
                            kind, row, old = table.commit_row(
                                self.txn_id, rowid, record.lsn)
                            if kind == "noop":
                                continue
                            row_map = table.schema.row_dict(row) \
                                if row is not None else None
                            before_map = table.schema.row_dict(old) \
                                if old is not None else None
                            changes.append(Change(table_name, kind, rowid,
                                                  row_map, before_map))
                        self.state = TxnState.COMMITTED
                    finally:
                        # Applied (or dead): snapshots may now cover this
                        # commit.  Cleared before on_commit so triggers
                        # opening snapshots see the changes firing them.
                        self._db.clear_commit_intent(self.txn_id)
            except CrashSignal:
                self._finish("crash")
                raise
            self._db.locks.release_all(self.txn_id)
            self._db.on_commit(self, changes)
        self._metrics.commit_seconds.observe(perf_counter() - started)
        self._metrics.ops.observe(len(self._ops))
        self._finish("commit")
        return changes

    def abort(self) -> None:
        """Roll back every staged change and release locks."""
        self._require_active()
        if self.read_only:
            self.state = TxnState.ABORTED
            self._db.locks.release_all(self.txn_id)
            self._finish("abort")
            return
        try:
            with self._lock:
                for table_name, rowid in reversed(self._ops):
                    self._db.table(table_name).rollback_row(self.txn_id,
                                                            rowid)
                self._db.wal.append(walmod.ABORT, self.txn_id)
                self.state = TxnState.ABORTED
        except CrashSignal:
            self._finish("crash")
            raise
        self._db.locks.release_all(self.txn_id)
        self._db.on_abort(self)
        self._finish("abort")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transaction(id={self.txn_id}, state={self.state.value})"


class BatchJoin:
    """A view of an open batch transaction handed out by ``db.begin()``.

    Editing code written as ``with db.transaction() as txn:`` joins the
    thread's active :meth:`~repro.db.engine.Database.batch` transparently:
    DML, reads and locking forward to the underlying transaction, but a
    clean context exit does **not** commit — the batch's own exit does,
    with one COMMIT record and one (grouped) fsync for the whole burst.
    An exception aborts the whole batch: partial batches never commit.
    Calling :meth:`Transaction.commit` / ``abort`` explicitly through the
    proxy also acts on the whole batch.
    """

    __slots__ = ("_txn",)

    def __init__(self, txn: Transaction) -> None:
        self._txn = txn

    @property
    def batch_txn(self) -> Transaction:
        """The underlying batch transaction."""
        return self._txn

    def __enter__(self) -> "BatchJoin":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self._txn.is_active:
            self._txn.abort()

    def __getattr__(self, name: str):
        return getattr(self._txn, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchJoin({self._txn!r})"
