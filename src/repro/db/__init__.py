"""The relational engine substrate.

An embedded, multi-user, transactional, in-memory database with a
write-ahead log: the "fully-fledged database" TeNDaX builds its text-native
extension on.  Public surface:

* :class:`~repro.db.engine.Database` — the engine facade
* :func:`~repro.db.schema.column`, :class:`~repro.db.schema.ColumnType`
* :func:`~repro.db.predicate.col` — fluent predicate builder
* :func:`~repro.db.recovery.recover`, :func:`~repro.db.recovery.recover_file`
"""

from .engine import Database
from .predicate import ALWAYS, Lambda, Predicate, col
from .query import Query, RowView
from .recovery import recover, recover_file
from .schema import Column, ColumnType, TableSchema, column
from .transaction import Change, Transaction, TxnState

__all__ = [
    "ALWAYS",
    "Change",
    "Column",
    "ColumnType",
    "Database",
    "Lambda",
    "Predicate",
    "Query",
    "RowView",
    "TableSchema",
    "Transaction",
    "TxnState",
    "col",
    "column",
    "recover",
    "recover_file",
]
