"""Commit triggers.

TeNDaX reacts to committed editing transactions in several places: editor
clients receive change notifications (real-time propagation), the metadata
collector updates document statistics, and dynamic folders refresh their
membership.  The trigger registry dispatches committed change lists to
per-table callbacks; the engine additionally publishes a coarse
``db.commit`` event on its bus.

Triggers run synchronously *after* the commit is fully applied and locks
are released, so a trigger observes a consistent committed state and may
start its own transactions.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transaction import Change, Transaction

TriggerFn = Callable[["Transaction", list["Change"]], None]


class TriggerHandle:
    """Returned by :meth:`TriggerRegistry.on_commit`; call to remove."""

    def __init__(self, registry: "TriggerRegistry", table: str,
                 fn: TriggerFn) -> None:
        self._registry = registry
        self.table = table
        self.fn = fn
        self.active = True

    def remove(self) -> None:
        """Deregister this trigger. Safe to call twice."""
        if self.active:
            self.active = False
            self._registry._remove(self)


class TriggerRegistry:
    """Per-table commit trigger registration and dispatch."""

    #: Pseudo-table name matching every table.
    ALL = "*"

    #: Keep at most this many recent trigger failures.
    ERROR_LIMIT = 100

    def __init__(self) -> None:
        self._triggers: dict[str, list[TriggerHandle]] = defaultdict(list)
        self._lock = threading.RLock()
        #: Recent trigger failures as (table, exception) pairs.  A failing
        #: trigger must not damage the already-committed transaction, so
        #: dispatch isolates exceptions here instead of propagating them.
        self.errors: list[tuple[str, Exception]] = []

    def on_commit(self, table: str, fn: TriggerFn) -> TriggerHandle:
        """Register ``fn`` to run after commits touching ``table``.

        ``table`` may be :data:`ALL` to receive every commit.  The callback
        receives the committing transaction and *only* the changes for its
        table (all changes for :data:`ALL`).
        """
        handle = TriggerHandle(self, table, fn)
        with self._lock:
            self._triggers[table].append(handle)
        return handle

    def _remove(self, handle: TriggerHandle) -> None:
        with self._lock:
            handles = self._triggers.get(handle.table, [])
            if handle in handles:
                handles.remove(handle)

    def dispatch(self, txn: "Transaction",
                 changes: Iterable["Change"]) -> None:
        """Fan changes out to the registered triggers."""
        changes = list(changes)
        if not changes:
            by_table: dict[str, list] = {}
        else:
            by_table = defaultdict(list)
            for change in changes:
                by_table[change.table].append(change)
        with self._lock:
            snapshot = {t: list(hs) for t, hs in self._triggers.items()}
        for table, table_changes in by_table.items():
            for handle in snapshot.get(table, ()):
                if handle.active:
                    self._run(handle, txn, table_changes)
        if changes:
            for handle in snapshot.get(self.ALL, ()):
                if handle.active:
                    self._run(handle, txn, changes)

    def _run(self, handle: TriggerHandle, txn: "Transaction",
             changes: list) -> None:
        """Run one trigger, isolating its failures from the committer."""
        try:
            handle.fn(txn, changes)
        except Exception as exc:
            with self._lock:
                self.errors.append((handle.table, exc))
                if len(self.errors) > self.ERROR_LIMIT:
                    del self.errors[: len(self.errors) - self.ERROR_LIMIT]

    def count(self, table: str | None = None) -> int:
        """Number of registered triggers (optionally per table)."""
        with self._lock:
            if table is not None:
                return len(self._triggers.get(table, ()))
            return sum(len(hs) for hs in self._triggers.values())
