"""Query builder and executor.

A tiny single-table query engine: predicate filtering with automatic index
selection, ordering, projection and limits.  Queries run against committed
data; when bound to a transaction, that transaction's own pending writes are
overlaid so it reads its own uncommitted state (read-committed semantics).

Example::

    rows = (db.query("documents")
              .where((col("creator") == "ana") & (col("size") > 100))
              .order_by("created_at", desc=True)
              .limit(10)
              .run())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping

from .index import OrderedIndex
from .predicate import ALWAYS, IndexHint, Predicate
from .table import TOMBSTONE, Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Database
    from .transaction import Transaction


class RowView(dict):
    """A query result row: column mapping plus the engine ``rowid``."""

    __slots__ = ("rowid",)

    def __init__(self, rowid: int, values: Mapping[str, Any]) -> None:
        super().__init__(values)
        self.rowid = rowid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RowView(rowid={self.rowid}, {dict.__repr__(self)})"


class QueryPlan:
    """Description of how a query will execute (for tests/benchmarks)."""

    def __init__(self, kind: str, index_name: str | None = None,
                 hint: IndexHint | None = None) -> None:
        self.kind = kind          # "scan" | "index"
        self.index_name = index_name
        self.hint = hint

    def __repr__(self) -> str:
        if self.kind == "scan":
            return "Plan(scan)"
        return f"Plan(index={self.index_name}, on={self.hint.column})"


class Query:
    """Immutable-ish fluent builder; each modifier returns ``self``."""

    def __init__(self, db: "Database", table_name: str,
                 txn: "Transaction | None" = None) -> None:
        self._db = db
        self._table_name = table_name
        self._txn = txn
        self._predicate: Predicate = ALWAYS
        self._order: tuple[str, bool] | None = None  # (column, desc)
        self._limit: int | None = None
        self._projection: tuple[str, ...] | None = None

    # -- builder methods ------------------------------------------------------

    def where(self, predicate: Predicate) -> "Query":
        """AND the predicate into the filter."""
        if self._predicate is ALWAYS:
            self._predicate = predicate
        else:
            self._predicate = self._predicate & predicate
        return self

    def order_by(self, column: str, *, desc: bool = False) -> "Query":
        """Sort results by ``column`` (``desc`` for descending)."""
        self._order = (column, desc)
        return self

    def limit(self, n: int) -> "Query":
        """Cap the number of returned rows."""
        if n < 0:
            raise ValueError("limit must be >= 0")
        self._limit = n
        return self

    def select(self, *columns: str) -> "Query":
        """Project the result rows to the given columns."""
        self._projection = columns
        return self

    # -- planning ---------------------------------------------------------------

    def plan(self) -> QueryPlan:
        """Choose an access path: a matching index probe, else a scan."""
        table = self._db.table(self._table_name)
        best: tuple[int, str, IndexHint] | None = None
        for hint in self._predicate.index_hints():
            need_range = hint.op == "range"
            index = table.index_on(hint.column, need_range=need_range)
            if index is None:
                continue
            # Prefer equality probes (rank 0) over ranges (rank 1).
            rank = 0 if hint.op in ("eq", "in") else 1
            if best is None or rank < best[0]:
                best = (rank, index.name, hint)
                if rank == 0:
                    break
        if best is None:
            return QueryPlan("scan")
        return QueryPlan("index", best[1], best[2])

    def explain(self) -> dict:
        """Describe how the query would execute (EXPLAIN).

        Returns the access path, the index (if any), an estimate of the
        candidate rows the path yields, and the post-filter/sort steps.
        """
        table = self._db.table(self._table_name)
        plan = self.plan()
        if plan.kind == "scan":
            estimate = table.row_count()
            access = {"path": "scan", "estimated_candidates": estimate}
        else:
            index = table.indexes()[plan.index_name]
            hint = plan.hint
            if hint.op == "eq":
                estimate = sum(1 for __ in index.probe_eq(hint.value))
            elif hint.op == "in":
                estimate = sum(1 for __ in index.probe_in(hint.values))
            else:
                estimate = sum(1 for __ in index.probe_range(
                    hint.low, hint.high,
                    low_inclusive=hint.low_inclusive,
                    high_inclusive=hint.high_inclusive))
            access = {
                "path": "index", "index": plan.index_name,
                "column": hint.column, "probe": hint.op,
                "estimated_candidates": estimate,
            }
        return {
            "table": self._table_name,
            "access": access,
            "filter": repr(self._predicate),
            "order_by": self._order,
            "limit": self._limit,
            "early_stop": self._order is None and self._limit is not None,
        }

    # -- execution ---------------------------------------------------------------

    def run(self) -> list[RowView]:
        """Execute and return materialised rows."""
        table = self._db.table(self._table_name)
        plan = self.plan()
        schema = table.schema
        out: list[RowView] = []
        # Without an ORDER BY, a LIMIT can stop candidate generation
        # early — `.limit(1)` existence probes cost O(1 match).
        stop_at = self._limit if self._order is None else None
        for rowid, row in self._candidates(table, plan):
            mapping = schema.row_dict(row)
            if self._predicate.matches(mapping):
                out.append(RowView(rowid, mapping))
                if stop_at is not None and len(out) >= stop_at:
                    break
        # Sort.
        if self._order is not None:
            column, desc = self._order
            schema.column_index(column)  # validate
            out.sort(key=lambda r: _sort_key(r.get(column)), reverse=desc)
        # Limit.
        if self._limit is not None:
            out = out[: self._limit]
        # Project.
        if self._projection is not None:
            for name in self._projection:
                schema.column_index(name)
            out = [
                RowView(r.rowid, {k: r[k] for k in self._projection})
                for r in out
            ]
        return out

    def first(self) -> RowView | None:
        """Return the first result or ``None``.

        The probe must not leak into the builder: the limit is applied
        only for this execution, so a query object reused for ``run()``
        afterwards still returns every match.
        """
        saved = self._limit
        if saved is None:
            self._limit = 1
        try:
            results = self.run()
        finally:
            self._limit = saved
        return results[0] if results else None

    def count(self) -> int:
        """Number of matching rows (projection/order ignored)."""
        table = self._db.table(self._table_name)
        plan = self.plan()
        schema = table.schema
        return sum(
            1 for __, row in self._candidates(table, plan)
            if self._predicate.matches(schema.row_dict(row))
        )

    def _matching_values(self, column: str) -> Iterator[Any]:
        """Values of ``column`` over matching rows (NULLs skipped)."""
        table = self._db.table(self._table_name)
        pos = table.schema.column_index(column)
        plan = self.plan()
        schema = table.schema
        for __, row in self._candidates(table, plan):
            if self._predicate.matches(schema.row_dict(row)):
                value = row[pos]
                if value is not None:
                    yield value

    def sum(self, column: str) -> Any:
        """SUM over matching non-null values (0 if none)."""
        return sum(self._matching_values(column))

    def min(self, column: str) -> Any:
        """MIN over matching non-null values (``None`` if none)."""
        return min(self._matching_values(column), default=None)

    def max(self, column: str) -> Any:
        """MAX over matching non-null values (``None`` if none)."""
        return max(self._matching_values(column), default=None)

    def avg(self, column: str) -> float | None:
        """AVG over matching non-null values (``None`` if none)."""
        total, count = 0.0, 0
        for value in self._matching_values(column):
            total += value
            count += 1
        return None if count == 0 else total / count

    def distinct(self, column: str) -> set:
        """Distinct non-null values of ``column`` over matching rows."""
        return set(self._matching_values(column))

    def group_count(self, column: str) -> dict:
        """``value -> matching row count`` for ``column`` (NULLs kept)."""
        table = self._db.table(self._table_name)
        pos = table.schema.column_index(column)
        plan = self.plan()
        schema = table.schema
        counts: dict = {}
        for __, row in self._candidates(table, plan):
            if self._predicate.matches(schema.row_dict(row)):
                counts[row[pos]] = counts.get(row[pos], 0) + 1
        return counts

    def __iter__(self) -> Iterator[RowView]:
        return iter(self.run())

    # -- candidate generation -----------------------------------------------------

    def _probe(self, table: Table, plan: QueryPlan) -> Iterator[int]:
        """Rowids from the plan's index probe."""
        index = table.indexes()[plan.index_name]
        hint = plan.hint
        if hint.op == "eq":
            return index.probe_eq(hint.value)
        if hint.op == "in":
            return index.probe_in(hint.values)
        assert isinstance(index, OrderedIndex)
        return index.probe_range(
            hint.low, hint.high,
            low_inclusive=hint.low_inclusive,
            high_inclusive=hint.high_inclusive,
        )

    def _candidates(self, table: Table,
                    plan: QueryPlan) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) candidates under the txn's visibility mode.

        * snapshot txn: version-chain reads as of the pinned LSN — zero
          lock acquisitions;
        * 2PL-reader baseline txn: committed reads under SHARED row
          locks;
        * write txn: committed reads with the txn's pending overlay;
        * no txn: plain committed reads.
        """
        txn = self._txn if (self._txn is not None
                            and self._txn.is_active) else None
        snapshot_lsn = getattr(txn, "snapshot_lsn", None)
        if snapshot_lsn is not None:
            txn._metrics.snapshot_reads.inc()
            yield from self._snapshot_candidates(table, plan, snapshot_lsn)
            return
        locking = txn is not None and getattr(txn, "locking_reads", False)
        pending = table.pending_of(txn.txn_id) if txn is not None else {}
        if plan.kind == "index":
            emitted: set[int] = set()
            for rowid in self._probe(table, plan):
                if rowid in pending:
                    continue  # replaced below by the pending image
                if locking:
                    txn.lock_shared(self._table_name, rowid)
                row = table.read(rowid)
                if row is not None:
                    emitted.add(rowid)
                    yield rowid, row
            # Pending rows are not in committed indexes; check them all —
            # the full predicate re-check keeps this correct.
            for rowid, image in pending.items():
                if image is not TOMBSTONE and rowid not in emitted:
                    yield rowid, image
        else:
            for rowid, row in table.committed_items():
                if rowid in pending:
                    continue
                if locking:
                    txn.lock_shared(self._table_name, rowid)
                    # Re-read under the lock: the unlocked snapshot image
                    # may predate a writer that committed while we waited.
                    row = table.read(rowid)
                    if row is None:
                        continue
                yield rowid, row
            for rowid, image in pending.items():
                if image is not TOMBSTONE:
                    yield rowid, image

    def _snapshot_candidates(self, table: Table, plan: QueryPlan,
                             snapshot_lsn: int) -> Iterator[tuple[int, tuple]]:
        """Candidates as of ``snapshot_lsn`` (no locks, no pending).

        Index probes walk the *current* committed index, so rows whose
        visible version differs from their committed one (rows carrying
        a version chain) are resolved via an overlay and re-checked by
        the executor's predicate — the same discipline as pending
        overlays for writers.
        """
        if plan.kind == "index":
            overlay = table.snapshot_history_rows(snapshot_lsn)
            for rowid in self._probe(table, plan):
                if rowid in overlay:
                    continue  # yielded below from the overlay
                row = table.snapshot_read(rowid, snapshot_lsn)
                if row is not None:
                    yield rowid, row
            yield from overlay.items()
        else:
            yield from table.snapshot_items(snapshot_lsn)


class _SortKey:
    """Total order over heterogenous values: None first, then by type name."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return b is not None
        if b is None:
            return False
        try:
            return a < b
        except TypeError:
            return type(a).__name__ < type(b).__name__


def _sort_key(value: Any) -> _SortKey:
    return _SortKey(value)
