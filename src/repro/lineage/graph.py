"""Data lineage: document provenance from copy-paste metadata.

§3 / Fig. 1: "We can display document content provenance.  Meta data about
all editing and all copy- and paste actions is stored with the document.
This includes information about the source of the new document part, e.g.
from which other document a text has been copied (either internal or
external sources)."

Two granularities are reconstructed here:

* the **document-level lineage graph** — a directed multigraph over
  documents and external sources, one edge per copy operation
  (``tx_copylog``), and
* **character-level ancestry** — each pasted character points at its
  source character (``copy_src``), so a character's full provenance chain
  (through any number of paste generations) can be walked.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..db import Database, col
from ..ids import Oid
from ..text import chars as C
from ..text import dbschema as S


@dataclass(frozen=True)
class AncestryStep:
    """One hop in a character's provenance chain."""

    char: Oid
    doc: Oid | None
    author: str
    created_at: float


class LineageGraph:
    """The document-level provenance graph of one database."""

    #: Node kind attribute values.
    DOCUMENT = "document"
    EXTERNAL = "external"

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def build(self, *, include_unlinked: bool = True) -> nx.MultiDiGraph:
        """Build the full lineage graph.

        Nodes are document OID strings (kind="document") and external
        source labels (kind="external"); one edge per copy operation
        carrying ``n_chars``, ``user`` and ``at``.

        The whole construction runs inside one snapshot transaction: the
        document sweep, the copy-log sweep and every node-label lookup
        see the same commit point, so a copy operation committed mid-
        build can never appear as an edge without its endpoint.
        """
        graph = nx.MultiDiGraph()
        with self.db.snapshot() as snap:
            if include_unlinked:
                for row in snap.query(S.DOCUMENTS).run():
                    graph.add_node(str(row["doc"]), kind=self.DOCUMENT,
                                   name=row["name"], creator=row["creator"])
            for op in snap.query(S.COPYLOG).run():
                dst = str(op["dst_doc"])
                if dst not in graph:
                    self._add_doc_node(graph, op["dst_doc"], snap)
                if op["src_doc"] is not None:
                    src = str(op["src_doc"])
                    if src not in graph:
                        self._add_doc_node(graph, op["src_doc"], snap)
                else:
                    src = op["external_source"] or "external"
                    graph.add_node(src, kind=self.EXTERNAL, name=src)
                graph.add_edge(src, dst, op=str(op["op"]),
                               n_chars=op["n_chars"], user=op["user"],
                               at=op["at"])
        return graph

    def _add_doc_node(self, graph: nx.MultiDiGraph, doc: Oid, snap) -> None:
        row = snap.query(S.DOCUMENTS).where(col("doc") == doc).first()
        name = row["name"] if row is not None else str(doc)
        creator = row["creator"] if row is not None else "?"
        graph.add_node(str(doc), kind=self.DOCUMENT, name=name,
                       creator=creator)

    # ------------------------------------------------------------------
    # Document-level queries
    # ------------------------------------------------------------------

    def sources_of(self, doc: Oid) -> list[dict]:
        """Copy operations that brought content *into* ``doc``."""
        rows = self.db.query(S.COPYLOG).where(col("dst_doc") == doc).run()
        return sorted((dict(r) for r in rows), key=lambda r: r["at"])

    def derivatives_of(self, doc: Oid) -> list[dict]:
        """Copy operations that took content *out of* ``doc``."""
        rows = self.db.query(S.COPYLOG).where(col("src_doc") == doc).run()
        return sorted((dict(r) for r in rows), key=lambda r: r["at"])

    def transitive_sources(self, doc: Oid) -> set[str]:
        """Every document/external source ``doc`` transitively draws on."""
        graph = self.build(include_unlinked=False)
        node = str(doc)
        if node not in graph:
            return set()
        return set(nx.ancestors(graph, node))

    def transitive_derivatives(self, doc: Oid) -> set[str]:
        """Every document that transitively draws on ``doc``."""
        graph = self.build(include_unlinked=False)
        node = str(doc)
        if node not in graph:
            return set()
        return set(nx.descendants(graph, node))

    def copied_fraction(self, doc: Oid) -> float:
        """Fraction of the document's visible characters that were pasted."""
        with self.db.snapshot() as snap:
            rows = snap.query(S.CHARS).where(col("doc") == doc).run()
        visible = [r for r in rows if r["ch"] and not r["deleted"]]
        if not visible:
            return 0.0
        copied = sum(1 for r in visible if r["copy_src"] is not None
                     or r["copy_op"] is not None)
        return copied / len(visible)

    # ------------------------------------------------------------------
    # Character-level ancestry
    # ------------------------------------------------------------------

    def char_ancestry(self, char_oid: Oid,
                      txn=None) -> list[AncestryStep]:
        """The provenance chain of one character, oldest last.

        Walks ``copy_src`` links through paste generations (a paste of a
        paste of a paste ...).  The first entry is the character itself.
        One query per hop, so the whole walk runs inside one snapshot
        transaction (or the caller's ``txn``): a paste committed between
        two hops cannot splice a half-written generation into the chain.
        """
        if txn is None:
            with self.db.snapshot() as snap:
                return self.char_ancestry(char_oid, txn=snap)
        steps: list[AncestryStep] = []
        current: Oid | None = char_oid
        seen: set[Oid] = set()
        while current is not None and current not in seen:
            seen.add(current)
            __, row = C.char_row(self.db, current, txn)
            steps.append(AncestryStep(
                char=current, doc=row["doc"], author=row["author"],
                created_at=row["created_at"],
            ))
            current = row["copy_src"]
        return steps

    def origin_of(self, char_oid: Oid, txn=None) -> AncestryStep:
        """The ultimate origin of a character (end of the ancestry chain)."""
        return self.char_ancestry(char_oid, txn=txn)[-1]

    def range_origins(self, doc: Oid, char_oids: list[Oid]) -> dict:
        """Group a character range by originating document.

        Returns ``origin_doc_str -> count`` with ``"(typed here)"`` for
        characters born in ``doc`` itself.  One snapshot covers every
        ancestry walk in the range — N characters used to mean N
        independent read-committed walks.
        """
        counts: dict[str, int] = {}
        with self.db.snapshot() as snap:
            for oid in char_oids:
                origin = self.origin_of(oid, txn=snap)
                if origin.doc == doc and origin.char == oid:
                    key = "(typed here)"
                else:
                    key = str(origin.doc)
                counts[key] = counts.get(key, 0) + 1
        return counts
