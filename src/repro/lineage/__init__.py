"""Data lineage: provenance graphs from copy-paste metadata (Fig. 1)."""

from .graph import AncestryStep, LineageGraph
from .render import ancestry_text, ascii_lineage, to_dot

__all__ = [
    "AncestryStep",
    "LineageGraph",
    "ancestry_text",
    "ascii_lineage",
    "to_dot",
]
