"""Rendering the lineage graph (the programmatic Fig. 1).

The paper shows a GUI visualisation; here the same graph is emitted as
Graphviz DOT (for plotting) and as an indented ASCII tree (for terminal
demos and benchmark output).
"""

from __future__ import annotations

import networkx as nx

from ..ids import Oid
from .graph import LineageGraph


def to_dot(graph: nx.MultiDiGraph) -> str:
    """Serialise a lineage graph as Graphviz DOT."""
    lines = ["digraph lineage {", "  rankdir=LR;"]
    for node, attrs in graph.nodes(data=True):
        label = attrs.get("name", node)
        if attrs.get("kind") == LineageGraph.EXTERNAL:
            shape = "ellipse"
            label = f"{label}\\n(external)"
        else:
            shape = "box"
        lines.append(f'  "{node}" [label="{label}", shape={shape}];')
    for src, dst, attrs in graph.edges(data=True):
        label = f"{attrs.get('n_chars', '?')} chars by {attrs.get('user', '?')}"
        lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def ascii_lineage(lineage: LineageGraph, doc: Oid, *,
                  max_depth: int = 6) -> str:
    """An indented where-did-this-come-from tree for one document.

    Example output::

        report-final (3 paste(s) in)
          <- draft-v2: 120 chars by ana
            <- https://example.org (external): 80 chars by ben
          <- notes: 15 chars by cleo
    """
    graph = lineage.build()
    root = str(doc)
    if root not in graph:
        return f"{root} (unknown document)"

    def name_of(node: str) -> str:
        attrs = graph.nodes[node]
        label = attrs.get("name", node)
        if attrs.get("kind") == LineageGraph.EXTERNAL:
            label = f"{label} (external)"
        return label

    lines = [f"{name_of(root)} ({graph.in_degree(root)} paste(s) in)"]

    def walk(node: str, depth: int, seen: frozenset) -> None:
        if depth > max_depth:
            return
        edges_by_src: dict[str, list[dict]] = {}
        for src, __, attrs in graph.in_edges(node, data=True):
            edges_by_src.setdefault(src, []).append(attrs)
        for src in sorted(edges_by_src):
            total = sum(e["n_chars"] for e in edges_by_src[src])
            users = sorted({e["user"] for e in edges_by_src[src]})
            lines.append(
                f"{'  ' * depth}<- {name_of(src)}: {total} chars "
                f"by {', '.join(users)}"
            )
            if src not in seen:
                walk(src, depth + 1, seen | {src})

    walk(root, 1, frozenset({root}))
    return "\n".join(lines)


def ancestry_text(lineage: LineageGraph, char_oid: Oid) -> str:
    """Printable provenance chain of one character."""
    steps = lineage.char_ancestry(char_oid)
    lines = []
    for i, step in enumerate(steps):
        arrow = "" if i == 0 else "copied from "
        lines.append(
            f"{'  ' * i}{arrow}char {step.char} in doc {step.doc} "
            f"(by {step.author})"
        )
    return "\n".join(lines)
