"""Baseline 2: offset-addressed text-in-a-database.

The naive way to put text into a database — one row per character keyed by
``(doc, position)`` — is the ablation target for TeNDaX's central design
choice.  A mid-document insert must shift the position of every subsequent
character (O(n) row updates in one transaction); TeNDaX's neighbour links
make the same keystroke O(1).  The C1 benchmark measures exactly this
crossover.

The baseline runs on the *same* database engine, so the comparison
isolates the storage layout, not the substrate.
"""

from __future__ import annotations

from ..db import Database, col, column
from ..errors import InvalidPositionError, UnknownDocumentError
from ..ids import Oid

OFFSET_DOCS = "ob_documents"
OFFSET_CHARS = "ob_chars"


def install_offset_schema(db: Database) -> None:
    """Create the offset-baseline tables (idempotent)."""
    if not db.has_table(OFFSET_DOCS):
        db.create_table(OFFSET_DOCS, [
            column("doc", "oid"),
            column("name", "str"),
            column("creator", "str"),
            column("size", "int", default=0),
        ], key="doc")
    if not db.has_table(OFFSET_CHARS):
        db.create_table(OFFSET_CHARS, [
            column("doc", "oid"),
            column("pos", "int"),
            column("ch", "str"),
            column("author", "str"),
        ])
        db.create_index(OFFSET_CHARS, "doc")


class OffsetDocumentStore:
    """Offset-addressed character storage (the ablation baseline)."""

    def __init__(self, db: Database) -> None:
        self.db = db
        install_offset_schema(db)
        #: doc -> pos -> rowid cache, so the benchmark measures the row
        #: *updates*, not repeated position lookups.
        self._rowid_cache: dict[Oid, dict[int, int]] = {}

    def create(self, name: str, creator: str, text: str = "") -> Oid:
        """Create a document, one row per character."""
        doc = self.db.new_oid("obdoc")
        with self.db.transaction() as txn:
            txn.insert(OFFSET_DOCS, {
                "doc": doc, "name": name, "creator": creator,
                "size": len(text),
            })
            cache: dict[int, int] = {}
            for i, ch in enumerate(text):
                rowid = txn.insert(OFFSET_CHARS, {
                    "doc": doc, "pos": i, "ch": ch, "author": creator,
                })
                cache[i] = rowid
        self._rowid_cache[doc] = cache
        return doc

    def _doc_view(self, doc: Oid):
        row = self.db.query(OFFSET_DOCS).where(col("doc") == doc).first()
        if row is None:
            raise UnknownDocumentError(f"no offset document {doc}")
        return row

    def length(self, doc: Oid) -> int:
        """Current character count of the document."""
        return self._doc_view(doc)["size"]

    def insert(self, doc: Oid, pos: int, text: str, user: str) -> None:
        """Insert at ``pos``: shifts every later character's position.

        This is the O(n)-row-updates transaction the linked representation
        avoids.
        """
        view = self._doc_view(doc)
        size = view["size"]
        if not 0 <= pos <= size:
            raise InvalidPositionError(f"position {pos} outside document")
        cache = self._rowid_cache[doc]
        with self.db.transaction() as txn:
            # Shift the tail out of the way (descending to keep positions
            # unique while updating).
            for old_pos in range(size - 1, pos - 1, -1):
                rowid = cache[old_pos]
                txn.update(OFFSET_CHARS, rowid,
                           {"pos": old_pos + len(text)})
                cache[old_pos + len(text)] = rowid
            for i, ch in enumerate(text):
                rowid = txn.insert(OFFSET_CHARS, {
                    "doc": doc, "pos": pos + i, "ch": ch, "author": user,
                })
                cache[pos + i] = rowid
            txn.update(OFFSET_DOCS, view.rowid,
                       {"size": size + len(text)})

    def delete(self, doc: Oid, pos: int, count: int, user: str) -> None:
        """Delete ``count`` characters: shifts the tail left (O(n))."""
        view = self._doc_view(doc)
        size = view["size"]
        if pos < 0 or count < 0 or pos + count > size:
            raise InvalidPositionError("range outside document")
        cache = self._rowid_cache[doc]
        with self.db.transaction() as txn:
            for i in range(pos, pos + count):
                txn.delete(OFFSET_CHARS, cache.pop(i))
            for old_pos in range(pos + count, size):
                rowid = cache.pop(old_pos)
                txn.update(OFFSET_CHARS, rowid, {"pos": old_pos - count})
                cache[old_pos - count] = rowid
            txn.update(OFFSET_DOCS, view.rowid, {"size": size - count})

    def text(self, doc: Oid) -> str:
        """Reconstruct the document text (a position-ordered scan)."""
        rows = self.db.query(OFFSET_CHARS).where(col("doc") == doc).run()
        return "".join(r["ch"] for r in sorted(rows,
                                               key=lambda r: r["pos"]))
