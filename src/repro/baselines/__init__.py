"""Comparison baselines: file-based word processing and offset storage."""

from .filewp import FileDocument, FileLockedError, FileWordProcessor
from .offsetdoc import OffsetDocumentStore, install_offset_schema

__all__ = [
    "FileDocument",
    "FileLockedError",
    "FileWordProcessor",
    "OffsetDocumentStore",
    "install_offset_schema",
]
