"""Baseline 1: the file-server word processor the paper argues against.

§1: "Documents are mostly stored in a hierarchical folder structure on
file servers ... documents can be manipulated by only one user at a time."

This baseline models exactly that: documents are whole files; editing
requires an exclusive whole-document lock; every save rewrites the entire
document; there is no character metadata, no lineage, no fine-grained
security, and search is a full-text scan over every file.  Benchmarks pit
it against TeNDaX for concurrency (one writer at a time vs many),
keystroke durability (save-the-world vs one row) and search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TendaxError


class FileLockedError(TendaxError):
    """The document is locked by another user."""


@dataclass
class FileDocument:
    """A whole-file document with optional naive version copies."""

    name: str
    text: str = ""
    locked_by: str | None = None
    revision: int = 0
    history: list = field(default_factory=list)


class FileWordProcessor:
    """An in-memory model of file-based, single-writer word processing."""

    def __init__(self, *, keep_history: bool = False) -> None:
        self._files: dict[str, FileDocument] = {}
        self.keep_history = keep_history
        self.stats = {"saves": 0, "bytes_written": 0, "lock_conflicts": 0}

    # -- document management ------------------------------------------------

    def create(self, name: str, text: str = "") -> FileDocument:
        """Create a new file document."""
        if name in self._files:
            raise TendaxError(f"file {name!r} already exists")
        doc = FileDocument(name, text)
        self._files[name] = doc
        return doc

    def get(self, name: str) -> FileDocument:
        """Fetch a file document by name (raises if absent)."""
        try:
            return self._files[name]
        except KeyError:
            raise TendaxError(f"no file {name!r}") from None

    def list_files(self) -> list[str]:
        """All file names, sorted."""
        return sorted(self._files)

    # -- the single-writer editing model -----------------------------------------

    def open_for_edit(self, name: str, user: str) -> str:
        """Take the whole-document lock; returns the current text."""
        doc = self.get(name)
        if doc.locked_by is not None and doc.locked_by != user:
            self.stats["lock_conflicts"] += 1
            raise FileLockedError(
                f"{name!r} is locked by {doc.locked_by!r}"
            )
        doc.locked_by = user
        return doc.text

    def save(self, name: str, user: str, text: str) -> int:
        """Write the full document back (the per-keystroke unit of
        durability in a file-based editor is the whole file)."""
        doc = self.get(name)
        if doc.locked_by != user:
            self.stats["lock_conflicts"] += 1
            raise FileLockedError(
                f"{name!r} is not locked by {user!r}"
            )
        if self.keep_history:
            doc.history.append(doc.text)
        doc.text = text
        doc.revision += 1
        self.stats["saves"] += 1
        self.stats["bytes_written"] += len(text)
        return doc.revision

    def close(self, name: str, user: str) -> None:
        """Release the editing lock if ``user`` holds it."""
        doc = self.get(name)
        if doc.locked_by == user:
            doc.locked_by = None

    # -- editing helpers (what a client would do in memory) -------------------------

    def insert(self, name: str, user: str, pos: int, text: str) -> None:
        """Insert + save: the full-file rewrite a file editor performs."""
        current = self.get(name).text
        if not 0 <= pos <= len(current):
            raise TendaxError(f"position {pos} outside file")
        self.save(name, user, current[:pos] + text + current[pos:])

    def delete(self, name: str, user: str, pos: int, count: int) -> None:
        """Delete a range + save (another whole-file rewrite)."""
        current = self.get(name).text
        if pos < 0 or pos + count > len(current):
            raise TendaxError("range outside file")
        self.save(name, user, current[:pos] + current[pos + count:])

    # -- search (the grep of the file server) -------------------------------------

    def scan_search(self, needle: str) -> list[str]:
        """Full scan over every file (no index on a file server)."""
        lowered = needle.lower()
        return sorted(
            name for name, doc in self._files.items()
            if lowered in doc.text.lower()
        )
