"""Command-line interface: ``python -m repro <command>``.

Small drivers over the library for kicking the tyres without writing
code:

* ``lan-party`` — run the simulated multi-editor party and print the
  convergence report;
* ``portal`` — build a knowledge base and print dynamic folders, the
  lineage tree (Fig. 1) and the document-space map (Fig. 2);
* ``search`` — build a corpus and run a query against it;
* ``stats`` — corpus/database statistics for a generated workload
  (``--json`` for the raw metrics snapshot);
* ``trace`` — run a traced two-editor scenario and inspect the causal
  keystroke→remote-visibility traces (ASCII tree, JSONL or Chrome
  trace-event output);
* ``top`` — hottest metrics and slowest traces of a traced workload;
* ``serve`` — run the out-of-process collaboration server on a TCP
  port (prints ``LISTENING <port>`` once bound, for scripts);
* ``connect`` — connect to a running server, type into a named
  document and print what the replica sees;
* ``dash`` — scrape STATS + HEALTH from a running server and render
  a one-screen dashboard (health verdict + windowed trend table);
* ``feed-status`` — changefeed consumer lag and drain behaviour over
  a generated workload (``--json`` for the raw payload).

``top --watch``, ``connect --watch`` and ``dash --watch`` pace their
refresh loops through :data:`WATCH_CLOCK` (a :class:`~repro.clock.Clock`)
so tests can swap in a :class:`~repro.clock.SimulatedClock` and drive
the loops deterministically.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import Sequence

from .clock import Clock, SystemClock

#: Clock behind every ``--watch`` loop.  Production leaves the default
#: SystemClock in place; tests swap in a SimulatedClock so watch loops
#: terminate without real sleeping.
WATCH_CLOCK: Clock = SystemClock()


def _watch_sleep(seconds: float) -> None:
    """Sleep on WATCH_CLOCK: advance a simulated clock, else real sleep."""
    advance = getattr(WATCH_CLOCK, "advance", None)
    if advance is not None:
        advance(seconds)
        return
    import time

    time.sleep(seconds)


def _cmd_lan_party(args: argparse.Namespace) -> int:
    from .workload import run_lan_party
    report = run_lan_party(rounds=args.rounds, seed=args.seed,
                           measure_latency=True)
    print(f"participants : {', '.join(report.participants)}")
    print(f"operations   : {report.operations}")
    print(f"throughput   : {report.ops_per_second:,.0f} ops/s")
    print(f"final length : {report.final_length} chars")
    print(f"converged    : {report.converged}")
    print(f"chain intact : {report.chain_intact}")
    if report.op_latencies:
        median = statistics.median(report.op_latencies) * 1000
        print(f"median op    : {median:.2f} ms")
    return 0 if report.converged and report.chain_intact else 1


def _cmd_portal(args: argparse.Namespace) -> int:
    from .folders import CreatorIs, DynamicFolderManager, StateIs
    from .lineage import LineageGraph, ascii_lineage
    from .mining import VisualMiner
    from .workload import build_knowledge_base

    kb = build_knowledge_base(n_docs=args.docs, seed=args.seed)
    db = kb.server.db
    folders = DynamicFolderManager(db)
    for user in kb.users:
        folders.create_folder(f"{user}'s documents", CreatorIs(user))
    folders.create_folder("finals", StateIs("final"))
    print("# Dynamic folders")
    for folder in folders.folders():
        print(f"  {folder.name:<20} {len(folder):>3} docs")
    lineage = LineageGraph(db)
    target = max(kb.handles, key=lambda h: len(lineage.sources_of(h.doc)))
    print("\n# Data lineage (Fig. 1)")
    print(ascii_lineage(lineage, target.doc))
    print("\n# Document space (Fig. 2)")
    doc_map = VisualMiner(db, seed=args.seed).build_map()
    print(doc_map.ascii_scatter(width=60, height=14))
    print(doc_map.stats())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .search import SearchEngine
    from .workload import build_knowledge_base

    kb = build_knowledge_base(n_docs=args.docs, seed=args.seed)
    engine = SearchEngine(kb.server.db)
    results = engine.search(args.query, ranking=args.ranking,
                            limit=args.limit)
    print(engine.render_results(results))
    return 0


def _parse_hostport(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) -> (host, port)."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", spec
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"bad --remote address {spec!r}: want HOST:PORT")


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .obs import render_snapshot
    from .workload import build_knowledge_base

    if args.remote is not None:
        from .obs import render_trends
        from .net import scrape

        host, port = _parse_hostport(args.remote)
        fmt = "prom" if args.format == "prom" else "json"
        payload = scrape(host, port, kind="stats", fmt=fmt,
                         token=args.token)
        if args.format == "prom":
            sys.stdout.write(payload)
        elif args.format == "json" or args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"node          : {payload.get('node')}")
            server_stats = payload.get("server", {})
            for key in sorted(server_stats):
                print(f"{key:<14}: {server_stats[key]}")
            print("\nengine metrics:")
            print(render_snapshot(payload.get("metrics", {})))
            telemetry = payload.get("telemetry") or {}
            windows = telemetry.get("windows")
            if windows:
                print("\ntrends:")
                print(render_trends(windows))
        return 0

    kb = build_knowledge_base(n_docs=args.docs, seed=args.seed)
    db = kb.server.db
    if args.json:
        print(json.dumps(db.metrics_snapshot(), indent=2, sort_keys=True))
        return 0
    print(f"node          : {db.node}")
    print(f"tables        : {len(db.tables())}")
    print(f"total rows    : {db.catalog.total_rows()}")
    print(f"transactions  : {db.stats['transactions']}")
    print(f"commits       : {db.stats['commits']}")
    print(f"wal records   : {len(db.wal)}")
    print("per-table rows:")
    for info in db.catalog.iter_tables():
        print(f"  {info.name:<18} {info.row_count:>7} rows, "
              f"{len(info.index_names)} index(es)")
    print("\nengine metrics:")
    print(render_snapshot(db.metrics_snapshot()))
    return 0


def _run_traced_workload(args: argparse.Namespace, server=None):
    """Run the traced duet (with optional held delivery) for trace/top.

    ``server`` re-runs the workload against an existing server so
    ``top --watch`` accumulates history in one registry across
    refreshes instead of starting from zero each frame.
    """
    import os
    import tempfile

    from .workload import run_traced_duet

    faults = None
    if args.hold_seed is not None:
        from .faults import FaultInjector, FaultPlan
        faults = FaultInjector(FaultPlan.delivery_only(args.hold_seed))
    slow = args.slow_ms / 1000.0 if args.slow_ms is not None else None
    if server is not None:
        return run_traced_duet(text=args.text, faults=faults,
                               slow_threshold=slow, server=server)
    # A real WAL file makes the fsync leg show up in every trace.
    fd, wal_path = tempfile.mkstemp(suffix=".wal")
    os.close(fd)
    try:
        server, buffer = run_traced_duet(text=args.text, faults=faults,
                                         slow_threshold=slow,
                                         wal_path=wal_path)
    finally:
        os.unlink(wal_path)
    return server, buffer


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs import chrome_trace, render_trace, spans_to_jsonl

    server, buffer = _run_traced_workload(args)
    traces = buffer.traces()
    if args.slow_ms is not None:
        traces = buffer.slow_ops()
    if args.trace is not None:
        traces = [t for t in traces if t.trace_id == args.trace]
        if not traces:
            print(f"no trace with id {args.trace}", file=sys.stderr)
            return 1
    if args.format == "tree":
        out = "\n\n".join(render_trace(t) for t in traces)
    elif args.format == "jsonl":
        out = spans_to_jsonl(s for t in traces for s in t.spans)
    else:
        out = json.dumps(chrome_trace(traces), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(out + "\n")
        print(f"wrote {len(traces)} trace(s) to {args.out}")
    else:
        print(out)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs import TelemetryStore, render_top, render_trends

    refreshes = max(1, args.watch)
    server = None
    telemetry = None
    for round_no in range(refreshes):
        server, buffer = _run_traced_workload(args, server=server)
        if telemetry is None:
            telemetry = TelemetryStore(server.db.obs.registry,
                                       server.db.clock, interval=0.0)
        telemetry.sample()
        view = render_top(server.db.metrics_snapshot(), buffer.traces(),
                          limit=args.limit)
        if refreshes > 1:
            print(f"-- refresh {round_no + 1}/{refreshes} --")
        print(view)
        if refreshes > 1:
            print("\ntrends:")
            print(render_trends(telemetry.snapshot()["windows"],
                                limit=args.limit))
        if round_no + 1 < refreshes:
            _watch_sleep(args.interval)
    return 0


def _add_traced_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--text", default="causal trace",
                        help="characters the two editors alternate typing")
    parser.add_argument("--hold-seed", type=int, default=None,
                        help="run with a seeded held/reordered delivery "
                             "fault plan")
    parser.add_argument("--slow-ms", type=float, default=None,
                        help="slow-op threshold in milliseconds")


def _cmd_dump(args: argparse.Namespace) -> int:
    import json
    import os

    from .text import export_json
    from .workload import build_knowledge_base

    kb = build_knowledge_base(n_docs=args.docs, seed=args.seed)
    os.makedirs(args.out, exist_ok=True)
    for handle in kb.handles:
        payload = export_json(handle)
        name = payload["document"]["name"]
        path = os.path.join(args.out, f"{name}.tendax.json")
        with open(path, "w", encoding="utf-8") as handle_file:
            json.dump(payload, handle_file)
        print(f"wrote {path} ({len(payload['chars'])} chars)")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import json

    from .db import Database
    from .text import DocumentStore, import_json

    db = Database("imported")
    store = DocumentStore(db)
    with open(args.file, "r", encoding="utf-8") as handle_file:
        payload = json.load(handle_file)
    handle = import_json(store, payload, args.user)
    meta = store.meta(handle.doc)
    print(f"imported {meta['name']!r}: {handle.length()} visible chars, "
          f"authors {sorted(handle.authors())}")
    print(handle.text()[:200])
    return 0


def _serve_follower(args: argparse.Namespace) -> int:
    """``serve --follow``: run a read replica, promote on leader death.

    While following, the node serves STATS/HEALTH scrapes (with a
    ``repl`` status section) but takes no editor connections.  When the
    established replication stream dies, the follower finalizes its
    applied prefix, prints ``PROMOTED <lsn>`` and starts a full
    collaboration server on the same port — clients keep one address
    across the failover.
    """
    import asyncio
    import contextlib
    import signal
    import threading

    from .net.replica import ReplicaStatusServer, ReplicationClient
    from .repl import FollowerEngine

    leader_host, leader_port = _parse_hostport(args.follow)
    follower = FollowerEngine(args.wal, node=args.node)
    client = ReplicationClient(leader_host, leader_port, follower,
                               token=args.token)
    status = ReplicaStatusServer(
        follower, host=args.host, port=args.port, token=args.token,
        telemetry_interval=args.telemetry_interval)

    async def run() -> int:
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stopping.set)
        await status.start()
        print(f"LISTENING {status.port}", flush=True)

        stop_stream = threading.Event()
        stream_done: asyncio.Future = loop.create_future()

        def stream() -> None:
            try:
                outcome = client.run(stop_stream)
            except BaseException as exc:
                loop.call_soon_threadsafe(stream_done.set_result,
                                          ("error", exc))
            else:
                loop.call_soon_threadsafe(stream_done.set_result,
                                          (outcome, None))

        thread = threading.Thread(target=stream, name="repl-stream",
                                  daemon=True)
        thread.start()
        waiter = asyncio.create_task(stopping.wait())
        await asyncio.wait({stream_done, waiter},
                           return_when=asyncio.FIRST_COMPLETED)
        if stopping.is_set():
            stop_stream.set()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stream_done, 5.0)
            waiter.cancel()
            await status.stop()
            print("STOPPED", flush=True)
            return 0
        outcome, error = stream_done.result()
        if outcome == "error":
            waiter.cancel()
            await status.stop()
            print(f"replication stream failed: {error}", file=sys.stderr,
                  flush=True)
            return 1
        # The leader is gone: fail over.  The scrape endpoint goes down
        # for the rebind; the collab server then owns the same port.
        await status.stop()
        db = follower.promote()
        from .collab import CollaborationServer
        from .net import CollabNetServer
        collab = CollaborationServer(db, node=args.node)
        net = CollabNetServer(collab, host=args.host, port=status.port,
                              token=args.token,
                              telemetry_interval=args.telemetry_interval)
        await net.start()
        # Printed only once the promoted server accepts connections, so
        # scripts can treat it as "failover complete, reads are live".
        print(f"PROMOTED {follower.applied_lsn}", flush=True)
        serving = asyncio.create_task(net.serve_forever())
        try:
            await asyncio.wait({serving, waiter},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            serving.cancel()
            waiter.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serving
            await net.stop()
        print("STOPPED", flush=True)
        return 0

    try:
        code = asyncio.run(run())
    except KeyboardInterrupt:
        code = 0
    follower.db.close()
    return code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .collab import CollaborationServer
    from .net import CollabNetServer

    if args.follow is not None:
        return _serve_follower(args)

    faults = None
    if args.net_seed is not None:
        from .faults import FaultInjector, FaultPlan
        faults = FaultInjector(FaultPlan.net_only(args.net_seed))
    collab = CollaborationServer(node=args.node, wal_path=args.wal)
    net = CollabNetServer(collab, host=args.host, port=args.port,
                          token=args.token, faults=faults,
                          telemetry_interval=args.telemetry_interval)

    async def run() -> None:
        import contextlib
        import signal

        await net.start()
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stopping.set)
        # Scripts (net_smoke, the load harness) wait for this line to
        # learn the ephemeral port, so it must hit stdout unbuffered.
        print(f"LISTENING {net.port}", flush=True)
        serving = asyncio.create_task(net.serve_forever())
        waiter = asyncio.create_task(stopping.wait())
        try:
            await asyncio.wait({serving, waiter},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            serving.cancel()
            waiter.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serving
            await net.stop()
        print("STOPPED", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_connect(args: argparse.Namespace) -> int:
    from .errors import UnknownDocumentError
    from .net import NetworkClient

    client = NetworkClient(args.host, args.port, args.user,
                           token=args.token, register=True)
    try:
        session = client.session()
        try:
            handle = session.open_named(args.doc)
        except UnknownDocumentError:
            handle = session.create_document(args.doc)
            print(f"created document {args.doc!r}")
        if args.type:
            session.insert(handle.doc, handle.length(), args.type)
            print(f"typed {len(args.type)} chars")
        if args.watch:
            deadline = WATCH_CLOCK.now() + args.watch
            while WATCH_CLOCK.now() < deadline:
                for note in client.poll(timeout=0.1):
                    print(f"notify seq={note.rep_seq} "
                          f"changes={note.n_changes} "
                          f"from={note.origin_user} "
                          f"latency={note.latency * 1000:.1f}ms")
        print(f"document     : {args.doc}")
        print(f"length       : {handle.length()} chars")
        print(f"authors      : {', '.join(sorted(handle.authors()))}")
        print(f"ping rtt     : {client.ping() * 1000:.2f} ms")
        print(f"resyncs      : {sum(m.resyncs for m in client.mirrors.values())}")
        print("---")
        print(handle.text())
        return 0
    finally:
        client.close()


def _cmd_repl_status(args: argparse.Namespace) -> int:
    """Replication status of a running node (leader or follower)."""
    import json

    from .net import scrape

    host, port = _parse_hostport(args.remote)
    payload = scrape(host, port, kind="stats", series=False,
                     token=args.token)
    metrics = payload.get("metrics", {})

    def metric(name: str, default=0):
        return metrics.get(name, {}).get("value", default)

    repl = payload.get("repl")
    if repl is None:
        # A leader (or a promoted follower already fronting editors):
        # synthesise the view from its repl.* metrics.
        repl = {
            "node": payload.get("node"),
            "role": "leader",
            "durable_lsn": payload.get("wal", {}).get("durable_lsn"),
            "segments_shipped": metric("repl.segments_shipped"),
            "promotions": metric("repl.promotions"),
        }
    else:
        repl = dict(repl)
        repl["role"] = "promoted" if repl.get("promoted") else "follower"
    if args.json:
        print(json.dumps(repl, indent=2, sort_keys=True))
        return 0
    for key in sorted(repl):
        print(f"{key:<16}: {repl[key]}")
    return 0


def _cmd_feed_status(args: argparse.Namespace) -> int:
    """Changefeed freshness of a generated workload's derived data."""
    import json

    from .feed import MaintenanceWorker
    from .folders import DynamicFolderManager, StateIs
    from .search import SearchEngine
    from .workload import build_knowledge_base

    kb = build_knowledge_base(n_docs=args.docs, seed=args.seed)
    db = kb.server.db
    engine = SearchEngine(db)
    folders = DynamicFolderManager(db)
    folders.create_folder("finals", StateIs("final"))
    # Edit after the consumers attach so the feed has work to absorb.
    for handle in kb.handles[:3]:
        handle.insert_text(0, "fresh edit ", kb.users[0])
    worker = MaintenanceWorker(db)
    worker.register("search-index", engine.index.maintain,
                    sub=engine.index.subscription)
    rounds = worker.drain()
    status = db.changefeed().status()
    status["drain_rounds"] = rounds
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"feed seq      : {status['seq']}")
    print(f"feed lsn      : {status['lsn']}")
    print(f"retained      : {status['retained']} of {status['retention']}")
    print(f"drain rounds  : {rounds}")
    print(f"errors        : {status['errors']}")
    print("consumers:")
    for consumer in status["consumers"]:
        tables = ",".join(consumer["tables"] or []) or "*"
        mode = "deferred" if consumer["deferred"] else "sync"
        print(f"  {consumer['name']:<22} {mode:<8} lag {consumer['lag']:>3}"
              f"  acked {consumer['acked_seq']}/{status['seq']}"
              f"  [{tables}]")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from .net import scrape
    from .obs import render_dash

    refreshes = max(1, args.watch)
    for round_no in range(refreshes):
        stats = scrape(args.host, args.port, kind="stats",
                       token=args.token)
        health = scrape(args.host, args.port, kind="health",
                        token=args.token)
        if refreshes > 1:
            print(f"-- refresh {round_no + 1}/{refreshes} --")
        print(render_dash(stats, health, limit=args.limit))
        if round_no + 1 < refreshes:
            _watch_sleep(args.interval)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TeNDaX reproduction command-line drivers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    party = sub.add_parser("lan-party", help="run the simulated LAN-party")
    party.add_argument("--rounds", type=int, default=100)
    party.add_argument("--seed", type=int, default=2006)
    party.set_defaults(fn=_cmd_lan_party)

    portal = sub.add_parser("portal",
                            help="dynamic folders + Fig.1 + Fig.2 demo")
    portal.add_argument("--docs", type=int, default=24)
    portal.add_argument("--seed", type=int, default=2006)
    portal.set_defaults(fn=_cmd_portal)

    search = sub.add_parser("search", help="search a generated corpus")
    search.add_argument("query")
    search.add_argument("--docs", type=int, default=40)
    search.add_argument("--seed", type=int, default=2006)
    search.add_argument("--ranking", default="relevance")
    search.add_argument("--limit", type=int, default=10)
    search.set_defaults(fn=_cmd_search)

    stats = sub.add_parser("stats", help="database statistics")
    stats.add_argument("--docs", type=int, default=24)
    stats.add_argument("--seed", type=int, default=2006)
    stats.add_argument("--json", action="store_true",
                       help="emit the raw metrics snapshot as JSON")
    stats.add_argument("--remote", default=None, metavar="HOST:PORT",
                       help="scrape a running server instead of "
                            "generating a local workload")
    stats.add_argument("--format", choices=("text", "json", "prom"),
                       default="text",
                       help="remote output format (prom = Prometheus "
                            "text exposition)")
    stats.add_argument("--token", default=None,
                       help="shared secret for the remote scrape")
    stats.set_defaults(fn=_cmd_stats)

    trace = sub.add_parser(
        "trace", help="trace a two-editor session keystroke by keystroke")
    _add_traced_options(trace)
    trace.add_argument("--format", choices=("tree", "jsonl", "chrome"),
                       default="tree")
    trace.add_argument("--trace", type=int, default=None,
                       help="show only the trace with this id")
    trace.add_argument("--out", default=None,
                       help="write output to a file instead of stdout")
    trace.set_defaults(fn=_cmd_trace)

    top = sub.add_parser(
        "top", help="hottest metrics + slowest traces of a traced workload")
    _add_traced_options(top)
    top.add_argument("--watch", type=int, default=1,
                     help="re-run and re-render this many times")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between refreshes (paced on the "
                          "watch clock)")
    top.add_argument("--limit", type=int, default=8,
                     help="rows per section")
    top.set_defaults(fn=_cmd_top)

    dump = sub.add_parser(
        "dump", help="export a generated corpus as .tendax.json files")
    dump.add_argument("--docs", type=int, default=8)
    dump.add_argument("--seed", type=int, default=2006)
    dump.add_argument("--out", default="tendax-export")
    dump.set_defaults(fn=_cmd_dump)

    load = sub.add_parser(
        "load", help="import a .tendax.json export into a fresh database")
    load.add_argument("file")
    load.add_argument("--user", default="importer")
    load.set_defaults(fn=_cmd_load)

    serve = sub.add_parser(
        "serve", help="run the collaboration server on a TCP port")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port (printed on stdout)")
    serve.add_argument("--node", default="tendax")
    serve.add_argument("--token", default=None,
                       help="require this shared secret in HELLO")
    serve.add_argument("--wal", default=None,
                       help="mirror the WAL to this file for durability")
    serve.add_argument("--net-seed", type=int, default=None,
                       help="inject a seeded socket fault plan "
                            "(drop/delay/reorder on change frames)")
    serve.add_argument("--telemetry-interval", type=float, default=1.0,
                       help="seconds between telemetry samples "
                            "(0 disables the sampler)")
    serve.add_argument("--follow", default=None, metavar="HOST:PORT",
                       help="tail this leader's WAL as a read replica; "
                            "when the leader dies, promote in place and "
                            "serve writes on the same port")
    serve.set_defaults(fn=_cmd_serve)

    repl_status = sub.add_parser(
        "repl-status", help="replication role and lag of a running node")
    repl_status.add_argument("remote", metavar="HOST:PORT",
                             help="leader or follower scrape endpoint")
    repl_status.add_argument("--token", default=None)
    repl_status.add_argument("--json", action="store_true",
                             help="emit the raw status dict as JSON")
    repl_status.set_defaults(fn=_cmd_repl_status)

    feed_status = sub.add_parser(
        "feed-status",
        help="changefeed consumer lag / staleness of a generated workload")
    feed_status.add_argument("--docs", type=int, default=24)
    feed_status.add_argument("--seed", type=int, default=2006)
    feed_status.add_argument("--json", action="store_true",
                             help="emit the raw status payload as JSON")
    feed_status.set_defaults(fn=_cmd_feed_status)

    connect = sub.add_parser(
        "connect", help="connect to a running server and edit a document")
    connect.add_argument("--host", default="127.0.0.1")
    connect.add_argument("--port", type=int, required=True)
    connect.add_argument("--user", default="guest")
    connect.add_argument("--token", default=None)
    connect.add_argument("--doc", default="scratch",
                         help="document name to open (created if missing)")
    connect.add_argument("--type", default=None, metavar="TEXT",
                         help="append TEXT to the document")
    connect.add_argument("--watch", type=float, default=0.0,
                         help="poll for remote changes this many seconds")
    connect.set_defaults(fn=_cmd_connect)

    dash = sub.add_parser(
        "dash", help="live dashboard scraped from a running server")
    dash.add_argument("--host", default="127.0.0.1")
    dash.add_argument("--port", type=int, required=True)
    dash.add_argument("--token", default=None)
    dash.add_argument("--watch", type=int, default=1,
                      help="scrape and re-render this many times")
    dash.add_argument("--interval", type=float, default=2.0,
                      help="seconds between refreshes (paced on the "
                           "watch clock)")
    dash.add_argument("--limit", type=int, default=12,
                      help="trend rows to show")
    dash.set_defaults(fn=_cmd_dash)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
