"""Dynamic in-document business processes (workflows and task lists)."""

from .tasks import TaskList
from .workflow import (
    PROCESS_STATES,
    TASK_STATES,
    WorkflowManager,
    install_process_schema,
)

__all__ = [
    "PROCESS_STATES",
    "TASK_STATES",
    "TaskList",
    "WorkflowManager",
    "install_process_schema",
]
