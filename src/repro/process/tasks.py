"""Task lists: the per-user work inbox over all running workflows.

The demo assigns tasks "to specific users or roles"; a user's task list is
therefore the union of tasks assigned to them directly and tasks assigned
to any role they hold.
"""

from __future__ import annotations

from ..db import Database, col
from ..ids import Oid
from ..security import PrincipalRegistry
from .workflow import TASKS, WorkflowManager


class TaskList:
    """Query the task inbox of users and roles."""

    def __init__(self, workflow: WorkflowManager) -> None:
        self.workflow = workflow
        self.db: Database = workflow.db
        self.principals: PrincipalRegistry = workflow.principals

    def tasks_for(self, user: str, *,
                  states: tuple = ("ready", "in_progress")) -> list[dict]:
        """Actionable tasks for ``user`` (direct or via roles)."""
        principals = self.principals.principals_of(user)
        out: list[dict] = []
        for principal in principals:
            rows = (self.db.query(TASKS)
                    .where(col("assignee") == principal).run())
            out.extend(dict(r) for r in rows if r["state"] in states)
        out.sort(key=lambda t: t["created_at"])
        return out

    def tasks_in_document(self, doc: Oid, *,
                          states: tuple | None = None) -> list[dict]:
        """All tasks anchored in one document, oldest first."""
        rows = self.db.query(TASKS).where(col("doc") == doc).run()
        out = [dict(r) for r in rows
               if states is None or r["state"] in states]
        out.sort(key=lambda t: t["created_at"])
        return out

    def workload_by_assignee(self) -> dict[str, int]:
        """Open-task counts per assignee (users and roles)."""
        rows = self.db.query(TASKS).where(
            col("state").isin(["ready", "in_progress", "waiting"])).run()
        counts: dict[str, int] = {}
        for row in rows:
            counts[row["assignee"]] = counts.get(row["assignee"], 0) + 1
        return counts

    def render_inbox(self, user: str) -> str:
        """Printable task inbox (demo output)."""
        tasks = self.tasks_for(user)
        if not tasks:
            return f"{user}: no open tasks"
        lines = [f"{user}: {len(tasks)} open task(s)"]
        for task in tasks:
            lines.append(
                f"  [{task['state']:<11}] {task['name']} "
                f"({task['kind']}, via {task['assignee']})"
            )
        return "\n".join(lines)
