"""Dynamic business processes within documents.

§3: "We will define and run a dynamic workflow within a document for
ad-hoc cooperation on that document.  Tasks such as translation or
verification of a certain document part can be assigned to specific users
or roles.  The workflow tasks can be created, changed and routed
dynamically, i.e. at run-time."

A *process* belongs to a document; its *tasks* form a dependency DAG.
Tasks are assigned to users or roles, may be anchored to a document part
(a character range, OID-anchored as usual), and can be added, re-routed or
cancelled while the process runs.  Task state changes are ordinary
transactions, so they are logged, recoverable and visible to every editor
immediately.
"""

from __future__ import annotations

from typing import Iterable

from ..db import Database, col, column
from ..errors import ProcessError, RoutingError, TaskStateError
from ..ids import Oid
from ..security import PrincipalRegistry
from ..text import dbschema as S

PROCESSES = "tx_processes"
TASKS = "tx_tasks"

#: Task lifecycle states.
TASK_STATES = ("waiting", "ready", "in_progress", "done", "cancelled")
PROCESS_STATES = ("defined", "running", "completed", "cancelled")

#: Cap on the per-task ``history`` audit list.  The row-level history is a
#: convenience view; the complete audit trail is the WAL.  Without a cap a
#: task that is re-routed thousands of times would rewrite an ever-growing
#: JSON payload on every event (quadratic I/O).
TASK_HISTORY_LIMIT = 100


def install_process_schema(db: Database) -> None:
    """Create the workflow tables (idempotent)."""
    if not db.has_table(PROCESSES):
        db.create_table(PROCESSES, [
            column("process", "oid"),
            column("doc", "oid"),
            column("name", "str"),
            column("state", "str", default="defined"),
            column("created_by", "str"),
            column("created_at", "timestamp"),
        ], key="process")
        db.create_index(PROCESSES, "doc")
    if not db.has_table(TASKS):
        db.create_table(TASKS, [
            column("task", "oid"),
            column("process", "oid"),
            column("doc", "oid"),
            column("name", "str"),
            column("kind", "str", default="generic"),
            column("description", "str", default=""),
            column("assignee", "str"),            # user or role name
            column("state", "str", default="waiting"),
            column("depends_on", "json"),          # list of task oid strings
            column("start_char", "oid", nullable=True),
            column("end_char", "oid", nullable=True),
            column("created_by", "str"),
            column("created_at", "timestamp"),
            column("started_by", "str", nullable=True),
            column("started_at", "timestamp", nullable=True),
            column("completed_by", "str", nullable=True),
            column("completed_at", "timestamp", nullable=True),
            column("history", "json"),             # routing/audit trail
        ], key="task")
        db.create_index(TASKS, "process")
        db.create_index(TASKS, "doc")
        db.create_index(TASKS, "assignee")
        db.create_index(TASKS, "state")


class WorkflowManager:
    """Define and run dynamic in-document workflows."""

    def __init__(self, db: Database,
                 principals: PrincipalRegistry | None = None) -> None:
        self.db = db
        self.principals = principals or PrincipalRegistry(db)
        install_process_schema(db)
        S.install_text_schema(db)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def define_process(self, doc: Oid, name: str, user: str) -> Oid:
        """Create an (initially empty, not yet running) process."""
        process = self.db.new_oid("proc")
        self.db.insert(PROCESSES, {
            "process": process, "doc": doc, "name": name,
            "created_by": user, "created_at": self.db.now(),
        })
        return process

    def _process_view(self, process: Oid):
        row = (self.db.query(PROCESSES)
               .where(col("process") == process).first())
        if row is None:
            raise ProcessError(f"no process {process}")
        return row

    def process_info(self, process: Oid) -> dict:
        """The process row as a mapping."""
        return dict(self._process_view(process))

    def processes_in(self, doc: Oid) -> list[dict]:
        """Processes of a document, oldest first."""
        rows = self.db.query(PROCESSES).where(col("doc") == doc).run()
        return sorted((dict(r) for r in rows), key=lambda r: r["created_at"])

    def start_process(self, process: Oid, user: str) -> list[Oid]:
        """Start the process: tasks without dependencies become ready."""
        view = self._process_view(process)
        if view["state"] != "defined":
            raise ProcessError(f"process is {view['state']}, not defined")
        self.db.update(PROCESSES, view.rowid, {"state": "running"})
        return self._promote_ready(process)

    def cancel_process(self, process: Oid, user: str) -> None:
        """Cancel a process and all its open tasks."""
        view = self._process_view(process)
        with self.db.transaction() as txn:
            txn.update(PROCESSES, view.rowid, {"state": "cancelled"})
            for task_row in txn.query(TASKS).where(
                    col("process") == process).run():
                if task_row["state"] not in ("done", "cancelled"):
                    txn.update(TASKS, task_row.rowid, {"state": "cancelled"})

    # ------------------------------------------------------------------
    # Tasks (creatable and routable at runtime)
    # ------------------------------------------------------------------

    def add_task(
        self,
        process: Oid,
        name: str,
        assignee: str,
        created_by: str,
        *,
        kind: str = "generic",
        description: str = "",
        depends_on: Iterable[Oid] = (),
        start_char: Oid | None = None,
        end_char: Oid | None = None,
    ) -> Oid:
        """Add a task — allowed before *and during* the run (dynamic)."""
        view = self._process_view(process)
        if view["state"] in ("completed", "cancelled"):
            raise ProcessError(f"process is {view['state']}")
        self._check_assignable(assignee)
        depends = list(depends_on)
        for dep in depends:
            dep_row = self._task_view(dep)
            if dep_row["process"] != process:
                raise ProcessError("dependency from a different process")
        task = self.db.new_oid("task")
        self.db.insert(TASKS, {
            "task": task, "process": process, "doc": view["doc"],
            "name": name, "kind": kind, "description": description,
            "assignee": assignee, "depends_on": [str(d) for d in depends],
            "start_char": start_char, "end_char": end_char,
            "created_by": created_by, "created_at": self.db.now(),
            "history": [{"event": "created", "by": created_by,
                         "at": self.db.now()}],
        })
        if view["state"] == "running":
            self._promote_ready(process)
        return task

    def _check_assignable(self, assignee: str) -> None:
        if not (self.principals.has_user(assignee)
                or self.principals.has_role(assignee)):
            raise RoutingError(
                f"assignee {assignee!r} is neither a user nor a role"
            )

    def _task_view(self, task: Oid):
        row = self.db.query(TASKS).where(col("task") == task).first()
        if row is None:
            raise ProcessError(f"no task {task}")
        return row

    def task_info(self, task: Oid) -> dict:
        """The task row as a mapping."""
        return dict(self._task_view(task))

    def tasks_of(self, process: Oid) -> list[dict]:
        """Tasks of a process, oldest first."""
        rows = self.db.query(TASKS).where(col("process") == process).run()
        return sorted((dict(r) for r in rows), key=lambda r: r["created_at"])

    # -- routing -------------------------------------------------------------

    def route_task(self, task: Oid, new_assignee: str, by: str) -> None:
        """Re-assign a task at runtime (the demo's dynamic routing)."""
        self._check_assignable(new_assignee)
        view = self._task_view(task)
        if view["state"] in ("done", "cancelled"):
            raise TaskStateError(f"task is {view['state']}")
        history = list(view["history"] or [])
        history.append({"event": "routed", "by": by, "to": new_assignee,
                        "at": self.db.now()})
        history = history[-TASK_HISTORY_LIMIT:]
        self.db.update(TASKS, view.rowid, {
            "assignee": new_assignee, "history": history,
        })

    # -- state transitions ------------------------------------------------------

    def start_task(self, task: Oid, user: str) -> None:
        """Claim a ready task (user must match the assignment)."""
        view = self._task_view(task)
        if view["state"] != "ready":
            raise TaskStateError(f"task is {view['state']}, not ready")
        if not self._user_matches(user, view["assignee"]):
            raise RoutingError(
                f"user {user!r} is not assigned to task {view['name']!r}"
            )
        history = list(view["history"] or [])
        history.append({"event": "started", "by": user, "at": self.db.now()})
        history = history[-TASK_HISTORY_LIMIT:]
        self.db.update(TASKS, view.rowid, {
            "state": "in_progress", "started_by": user,
            "started_at": self.db.now(), "history": history,
        })

    def complete_task(self, task: Oid, user: str) -> list[Oid]:
        """Finish a task; returns tasks that became ready as a result."""
        view = self._task_view(task)
        if view["state"] not in ("ready", "in_progress"):
            raise TaskStateError(f"task is {view['state']}")
        if not self._user_matches(user, view["assignee"]):
            raise RoutingError(
                f"user {user!r} is not assigned to task {view['name']!r}"
            )
        history = list(view["history"] or [])
        history.append({"event": "completed", "by": user,
                        "at": self.db.now()})
        history = history[-TASK_HISTORY_LIMIT:]
        self.db.update(TASKS, view.rowid, {
            "state": "done", "completed_by": user,
            "completed_at": self.db.now(), "history": history,
        })
        newly_ready = self._promote_ready(view["process"])
        self._maybe_complete_process(view["process"])
        return newly_ready

    def cancel_task(self, task: Oid, user: str) -> None:
        """Cancel one task (unblocks dependants)."""
        view = self._task_view(task)
        if view["state"] in ("done", "cancelled"):
            raise TaskStateError(f"task is {view['state']}")
        history = list(view["history"] or [])
        history.append({"event": "cancelled", "by": user,
                        "at": self.db.now()})
        history = history[-TASK_HISTORY_LIMIT:]
        self.db.update(TASKS, view.rowid, {
            "state": "cancelled", "history": history,
        })
        self._promote_ready(view["process"])
        self._maybe_complete_process(view["process"])

    def _user_matches(self, user: str, assignee: str) -> bool:
        return assignee in self.principals.principals_of(user)

    def _promote_ready(self, process: Oid) -> list[Oid]:
        """Move waiting tasks whose dependencies are settled to ready.

        Only *waiting* tasks are examined (via the state index) and only
        their declared dependencies are probed, so a completion costs
        O(waiting tasks of the process), not O(all tasks).
        """
        proc = self._process_view(process)
        if proc["state"] != "running":
            return []
        waiting = (self.db.query(TASKS)
                   .where((col("state") == "waiting")
                          & (col("process") == process))
                   .run())
        promoted: list[Oid] = []
        for view in waiting:
            depends = [Oid.parse(s) for s in (view["depends_on"] or [])]
            if all(self._task_view(dep)["state"] in ("done", "cancelled")
                   for dep in depends):
                self.db.update(TASKS, view.rowid, {"state": "ready"})
                promoted.append(view["task"])
        return promoted

    def _maybe_complete_process(self, process: Oid) -> None:
        proc = self._process_view(process)
        if proc["state"] != "running":
            return
        open_states = ["waiting", "ready", "in_progress"]
        any_open = (self.db.query(TASKS)
                    .where((col("state").isin(open_states))
                           & (col("process") == process))
                    .first())
        if any_open is not None:
            return
        has_any = self.db.query(TASKS).where(
            col("process") == process).first() is not None
        if has_any:
            self.db.update(PROCESSES, proc.rowid, {"state": "completed"})

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------

    def process_status(self, process: Oid) -> dict:
        """Summary: state plus task counts by state."""
        proc = self.process_info(process)
        counts: dict[str, int] = {state: 0 for state in TASK_STATES}
        for task in self.tasks_of(process):
            counts[task["state"]] += 1
        return {"process": process, "name": proc["name"],
                "state": proc["state"], "tasks": counts}
