"""The post-commit changefeed: one ordered event stream per database.

TeNDaX's derived data — the inverted index, dynamic-folder membership,
creation-process metadata and the per-handle document cache — used to
ride on four independent commit triggers, each rescanning ``DOCUMENTS``
to notice births and blind to deletes (a delete's change row is
``None``).  The changefeed replaces that: the engine publishes exactly
one :class:`~repro.feed.changefeed.CommitBatch` per committed
transaction, LSN-stamped and carrying *before-images*, and consumers
subscribe with durable, checkpointable cursors.  See
``docs/CHANGEFEED.md``.

* :mod:`repro.feed.changefeed` — the feed itself: events, batches,
  subscriptions, cursor checkpoints, WAL catch-up after restart;
* :mod:`repro.feed.worker` — the background maintenance worker: drains
  deferred consumers, compacts the inverted index, checkpoints cursors
  and keeps the ``feed.*`` staleness telemetry fresh.
"""

from .changefeed import (
    Changefeed,
    CommitBatch,
    FeedEvent,
    FeedGapError,
    FeedSubscription,
)
from .worker import MaintenanceWorker

__all__ = [
    "Changefeed",
    "CommitBatch",
    "FeedEvent",
    "FeedGapError",
    "FeedSubscription",
    "MaintenanceWorker",
]
