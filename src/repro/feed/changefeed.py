"""The post-commit changefeed.

One ordered, LSN-stamped stream of committed row changes per database.
Every committed write transaction becomes exactly one
:class:`CommitBatch` — its events carry *before-images*, so a delete
event still shows the vanished row — and consumers subscribe with a
named :class:`FeedSubscription` instead of a raw commit trigger:

* **sync** consumers run inside the publishing commit (like triggers)
  and are acked automatically when their handler returns;
* **deferred** consumers use the handler only to record work (mark a
  document dirty) and ack later, when the derived state has actually
  absorbed the batch — the gap between the feed head and their ack is
  the ``feed.lag`` gauge, the staleness signal the worker and the SLO
  pipeline watch.

Durability is split along the same line as the engine's: the feed keeps
a bounded in-memory retention window for live resume
(:meth:`Changefeed.batches_since`), checkpoints consumer cursors into
the ``tx_feed_cursors`` table, and reconstructs missed batches after a
restart directly from WAL records (:func:`batches_from_records`) — the
DELETE records' before-image payload exists precisely so this replay
can still describe what vanished.  See ``docs/CHANGEFEED.md`` for the
consumer contract and the failure matrix.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from ..errors import CrashSignal, FeedGapError
from ..db import wal as walmod
from ..db.schema import column
from ..db.predicate import col
from ..db.wal import WalRecord, decode_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.engine import Database
    from ..db.transaction import Change, Transaction

#: Table holding durable consumer cursors, created on first checkpoint.
CURSOR_TABLE = "tx_feed_cursors"

#: A consumer handler: receives one batch (pre-filtered to the
#: subscription's tables) after the publishing commit applied.
ConsumerFn = Callable[["CommitBatch"], None]


@dataclass(frozen=True)
class FeedEvent:
    """One committed row change inside a batch.

    ``row`` is the column mapping after the change (``None`` for a
    delete); ``before`` is the committed image the change superseded
    (``None`` for an insert).  A delete is therefore fully described:
    consumers read the vanished row from ``before``.
    """

    table: str
    kind: str                  # "insert" | "update" | "delete"
    rowid: int
    row: dict | None
    before: dict | None


@dataclass(frozen=True)
class CommitBatch:
    """All events of one committed transaction, in staging order.

    ``seq`` is the feed's process-local sequence number (1, 2, 3 ...);
    ``lsn`` is the transaction's COMMIT record LSN — the durable
    coordinate cursors are checkpointed against.  Batches replayed from
    the WAL after a restart carry ``seq == 0``: the seq axis does not
    survive a restart, the LSN axis does.
    """

    seq: int
    lsn: int
    txn_id: int
    committed_at: float
    events: tuple[FeedEvent, ...]

    def for_tables(self, tables: frozenset[str] | None) -> "CommitBatch":
        """This batch restricted to ``tables`` (``None`` = everything)."""
        if tables is None:
            return self
        kept = tuple(e for e in self.events if e.table in tables)
        if len(kept) == len(self.events):
            return self
        return CommitBatch(self.seq, self.lsn, self.txn_id,
                           self.committed_at, kept)


class FeedSubscription:
    """One named consumer's registration on the feed.

    Tracks two cumulative sequence numbers: ``delivered_seq`` (the
    newest batch the feed has handed to — or auto-acked past — this
    consumer) and ``acked_seq`` (the newest batch the consumer's
    derived state has fully absorbed; acks are cumulative, covering
    everything at or below the acked seq).  ``lag`` is the distance
    from the feed head to the ack — the consumer's staleness in
    batches.
    """

    def __init__(self, feed: "Changefeed", name: str, fn: ConsumerFn, *,
                 tables: frozenset[str] | None, deferred: bool) -> None:
        self._feed = feed
        self.name = name
        self.fn = fn
        self.tables = tables
        self.deferred = deferred
        self.active = True
        self.delivered_seq = 0
        self.acked_seq = 0

    @property
    def lag(self) -> int:
        """Batches between the feed head and this consumer's ack."""
        return max(0, self._feed.last_seq - self.acked_seq)

    def ack(self, seq: int) -> None:
        """The consumer's state now covers every batch ``<= seq``."""
        self._feed._ack(self, seq)

    def close(self) -> None:
        """Unsubscribe; safe to call twice.  Remaining lag is dropped
        from the gauge (a closed consumer is not stale, it is gone)."""
        if self.active:
            self.active = False
            self._feed._remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FeedSubscription({self.name!r}, deferred={self.deferred}, "
                f"acked={self.acked_seq}/{self._feed.last_seq})")


class Changefeed:
    """The database's single ordered post-commit event stream.

    Created lazily by :meth:`~repro.db.engine.Database.changefeed`; the
    engine calls :meth:`publish` once per committed write transaction
    (after the commit applied and locks released, in place of where the
    legacy per-table triggers fire).  Publishing and dispatch run under
    one reentrant lock, so consumers observe batches in one global
    order even under concurrent committers — a consumer that itself
    commits (the metadata collector writes stat rows) publishes its
    nested batch inline, preserving causality.

    ``retention`` bounds the in-memory tail kept for
    :meth:`batches_since`; consumers that fall further behind get a
    :class:`~repro.errors.FeedGapError` and must rebuild or catch up
    from the WAL.
    """

    def __init__(self, db: "Database", *, retention: int = 512) -> None:
        self._db = db
        self._lock = threading.RLock()
        self._retention = max(1, retention)
        self._batches: deque[CommitBatch] = deque()
        self._subs: list[FeedSubscription] = []
        self._last_seq = 0
        self._last_lsn = 0
        #: Recent consumer failures as (consumer, exception) pairs —
        #: same isolation contract as TriggerRegistry.errors.
        self.errors: list[tuple[str, Exception]] = []
        registry = db.obs.registry
        self._m_batches = registry.counter("feed.batches")
        self._m_events = registry.counter("feed.events")
        self._m_dispatch = registry.histogram("feed.dispatch_seconds")
        self._m_errors = registry.counter("feed.consumer_errors")
        self._m_checkpoints = registry.counter("feed.checkpoints")
        self._m_catchup = registry.counter("feed.catchup_batches")
        self._m_evictions = registry.counter("feed.retention_evictions")
        self._m_staleness = registry.histogram("feed.staleness_seconds")
        self._g_seq = registry.gauge("feed.seq")
        self._f_lag = registry.family("feed.lag", "gauge")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self._last_seq

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    def subscriptions(self) -> list[FeedSubscription]:
        with self._lock:
            return list(self._subs)

    def max_lag(self) -> int:
        """The worst consumer lag right now (0 with no consumers)."""
        with self._lock:
            return max((s.lag for s in self._subs), default=0)

    def status(self) -> dict:
        """JSON-friendly summary (the ``repro feed-status`` payload)."""
        with self._lock:
            return {
                "seq": self._last_seq,
                "lsn": self._last_lsn,
                "retained": len(self._batches),
                "retention": self._retention,
                "errors": len(self.errors),
                "consumers": [
                    {
                        "name": s.name,
                        "deferred": s.deferred,
                        "tables": sorted(s.tables) if s.tables else None,
                        "delivered_seq": s.delivered_seq,
                        "acked_seq": s.acked_seq,
                        "lag": s.lag,
                    }
                    for s in self._subs
                ],
            }

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------

    def subscribe(self, name: str, fn: ConsumerFn, *,
                  tables: Iterable[str] | None = None,
                  deferred: bool = False) -> FeedSubscription:
        """Register a consumer from the current feed head.

        ``tables`` restricts delivery: batches with no event in the set
        are auto-acked past the consumer without invoking ``fn``.
        ``deferred`` consumers must call
        :meth:`FeedSubscription.ack` themselves once the batch is
        absorbed; sync consumers are acked when ``fn`` returns.
        """
        table_set = frozenset(tables) if tables is not None else None
        with self._lock:
            taken = {s.name for s in self._subs}
            unique = name
            suffix = 2
            while unique in taken:
                unique = f"{name}-{suffix}"
                suffix += 1
            sub = FeedSubscription(self, unique, fn, tables=table_set,
                                   deferred=deferred)
            sub.delivered_seq = sub.acked_seq = self._last_seq
            self._subs.append(sub)
            self._f_lag.labels(consumer=sub.name).set(0)
            return sub

    def _remove(self, sub: FeedSubscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
            self._f_lag.labels(consumer=sub.name).set(0)

    # ------------------------------------------------------------------
    # Publish / dispatch
    # ------------------------------------------------------------------

    def publish(self, txn: "Transaction", changes: Sequence["Change"]) -> None:
        """Turn one committed transaction into a batch and dispatch it.

        Called by :meth:`Database.on_commit`; empty change lists publish
        nothing.  The ``feed.mid_dispatch`` crash point fires before
        each consumer invocation, so crash schedules can kill the
        process with a batch half-dispatched — the recovery contract is
        that checkpointed cursors plus WAL catch-up redeliver it.
        """
        if not changes:
            return
        events = tuple(
            FeedEvent(c.table, c.kind, c.rowid, c.row, c.before)
            for c in changes
        )
        with self._lock:
            self._last_seq += 1
            lsn = txn.commit_lsn if txn.commit_lsn is not None \
                else self._db.wal.last_lsn()
            self._last_lsn = max(self._last_lsn, lsn)
            batch = CommitBatch(self._last_seq, lsn, txn.txn_id,
                                self._db.now(), events)
            self._batches.append(batch)
            while len(self._batches) > self._retention:
                self._batches.popleft()
                self._m_evictions.inc()
            self._m_batches.inc()
            self._m_events.inc(len(events))
            self._g_seq.set(self._last_seq)
            with self._m_dispatch.time():
                for sub in list(self._subs):
                    if sub.active:
                        self._deliver(sub, batch)

    def _deliver(self, sub: FeedSubscription, batch: CommitBatch) -> None:
        filtered = batch.for_tables(sub.tables)
        if not filtered.events:
            # Nothing for this consumer: advance it past the batch —
            # but an ack is cumulative, so only when it was already
            # caught up (otherwise the auto-ack would falsely cover
            # earlier unabsorbed batches).
            caught_up = sub.acked_seq == sub.delivered_seq
            sub.delivered_seq = batch.seq
            if caught_up:
                self._ack_locked(sub, batch.seq)
            return
        self._db.faults.fire("feed.mid_dispatch", consumer=sub.name,
                             seq=batch.seq)
        sub.delivered_seq = batch.seq
        try:
            sub.fn(filtered)
        except CrashSignal:
            raise
        except Exception as exc:
            self.errors.append((sub.name, exc))
            if len(self.errors) > 100:
                del self.errors[: len(self.errors) - 100]
            self._m_errors.inc()
            return
        if not sub.deferred:
            self._ack_locked(sub, batch.seq)
        else:
            self._f_lag.labels(consumer=sub.name).set(sub.lag)

    def _ack(self, sub: FeedSubscription, seq: int) -> None:
        with self._lock:
            self._ack_locked(sub, seq)

    def _ack_locked(self, sub: FeedSubscription, seq: int) -> None:
        if seq > sub.acked_seq:
            sub.acked_seq = min(seq, self._last_seq)
            batch = self._retained(seq)
            if batch is not None and batch.committed_at > 0.0:
                self._m_staleness.observe(
                    max(0.0, self._db.now() - batch.committed_at))
        self._f_lag.labels(consumer=sub.name).set(sub.lag)

    def _retained(self, seq: int) -> CommitBatch | None:
        if not self._batches or seq < self._batches[0].seq \
                or seq > self._batches[-1].seq:
            return None
        return self._batches[seq - self._batches[0].seq]

    def batches_since(self, seq: int) -> list[CommitBatch]:
        """Retained batches with ``batch.seq > seq``, in order.

        Raises :class:`~repro.errors.FeedGapError` when the retention
        window no longer reaches back to ``seq`` — the caller missed
        evicted batches and must rebuild or catch up from the WAL.
        """
        with self._lock:
            if seq >= self._last_seq:
                return []
            oldest = self._batches[0].seq if self._batches \
                else self._last_seq + 1
            if seq < oldest - 1:
                raise FeedGapError(
                    f"feed retains seqs {oldest}..{self._last_seq}; "
                    f"cannot resume after {seq}")
            return [b for b in self._batches if b.seq > seq]

    # ------------------------------------------------------------------
    # Durable cursors
    # ------------------------------------------------------------------

    def _ensure_cursor_table(self) -> None:
        if not self._db.has_table(CURSOR_TABLE):
            self._db.create_table(CURSOR_TABLE, [
                column("consumer", "str"),
                column("seq", "int"),
                column("lsn", "int"),
                column("updated_at", "float"),
            ], key="consumer")

    def checkpoint(self, sub: FeedSubscription) -> dict:
        """Persist ``sub``'s acked position as a durable cursor row.

        The cursor stores both coordinates but only the LSN survives a
        restart meaningfully (seqs are process-local).  The write is an
        ordinary committed transaction, so it publishes its own batch —
        table-filtered consumers auto-ack it.  Never call this from
        inside a sync consumer handler of the cursor table itself.
        """
        self._ensure_cursor_table()
        with self._lock:
            seq = sub.acked_seq
            batch = self._retained(seq)
            lsn = batch.lsn if batch is not None else self._last_lsn
            if seq == 0:
                lsn = 0
        payload = {"consumer": sub.name, "seq": seq, "lsn": lsn,
                   "updated_at": self._db.now()}
        with self._db.transaction() as txn:
            existing = txn.query(CURSOR_TABLE) \
                .where(col("consumer") == sub.name).first()
            if existing is None:
                txn.insert(CURSOR_TABLE, payload)
            else:
                txn.update(CURSOR_TABLE, existing.rowid, payload)
        self._m_checkpoints.inc()
        return payload

    def cursor(self, name: str) -> dict | None:
        """The checkpointed cursor for ``name``, or ``None``."""
        if not self._db.has_table(CURSOR_TABLE):
            return None
        row = self._db.query(CURSOR_TABLE) \
            .where(col("consumer") == name).first()
        if row is None:
            return None
        return {"consumer": row["consumer"], "seq": row["seq"],
                "lsn": row["lsn"], "updated_at": row["updated_at"]}

    # ------------------------------------------------------------------
    # WAL catch-up (restart path)
    # ------------------------------------------------------------------

    def catch_up(self, name: str, fn: ConsumerFn,
                 records: Iterable[WalRecord], *,
                 tables: Iterable[str] | None = None) -> int:
        """Redeliver batches a consumer missed across a restart.

        ``records`` is the pre-crash WAL history (typically
        ``WriteAheadLog.load_file(path)`` — a recovered engine's own
        log starts empty, it does *not* retain the replayed records).
        Batches are reconstructed for every committed transaction whose
        COMMIT LSN lies above the checkpointed cursor and handed to
        ``fn`` in order, with ``seq == 0`` (replayed batches are off
        the live seq axis).  Returns the number of batches delivered.

        Also advances the engine's LSN allocator past the replayed
        history, so post-restart commits keep the LSN axis — and
        therefore future cursor checkpoints — monotonic.
        """
        cursor = self.cursor(name)
        after_lsn = cursor["lsn"] if cursor is not None else 0
        table_set = frozenset(tables) if tables is not None else None
        records = list(records)
        if records:
            self._db.wal.advance_lsn(max(r.lsn for r in records))
        delivered = 0
        for batch in batches_from_records(records, after_lsn=after_lsn):
            filtered = batch.for_tables(table_set)
            if not filtered.events:
                continue
            fn(filtered)
            delivered += 1
            with self._lock:
                self._last_lsn = max(self._last_lsn, batch.lsn)
        if delivered:
            self._m_catchup.inc(delivered)
        return delivered


def batches_from_records(records: Iterable[WalRecord], *,
                         after_lsn: int = 0) -> list[CommitBatch]:
    """Reconstruct commit batches from raw WAL records.

    Walks the log exactly like recovery does — buffering DML per
    transaction, emitting at COMMIT, dropping at ABORT — while keeping
    a running map of last-committed row images so update and delete
    events regain their before-images.  DELETE records additionally
    carry the before-image in their payload (written by the engine for
    precisely this replay), which covers rows whose insert predates the
    walked history.  Only batches with ``COMMIT lsn > after_lsn`` are
    returned; all carry ``seq == 0`` and ``committed_at == 0.0``
    (neither survives in the log).
    """
    images: dict[tuple[str, int], dict] = {}
    buffers: dict[int, list[WalRecord]] = {}
    out: list[CommitBatch] = []
    for rec in records:
        if rec.type in (walmod.INSERT, walmod.UPDATE, walmod.DELETE):
            buffers.setdefault(rec.txn_id, []).append(rec)
        elif rec.type == walmod.ABORT:
            buffers.pop(rec.txn_id, None)
        elif rec.type == walmod.DROP_TABLE:
            gone = rec.payload["table"]
            for key in [k for k in images if k[0] == gone]:
                del images[key]
        elif rec.type == walmod.CHECKPOINT:
            # A checkpoint is a full snapshot: it resets the image map
            # (pre-checkpoint history may have been truncated away).
            images = {
                (name, int(rowid)): decode_value(row)
                for name, spec in rec.payload["tables"].items()
                for rowid, row in spec["rows"].items()
            }
        elif rec.type == walmod.COMMIT:
            ops = buffers.pop(rec.txn_id, None)
            if not ops:
                continue
            events = []
            for op in ops:
                table = op.payload["table"]
                rowid = op.payload["rowid"]
                key = (table, rowid)
                if op.type == walmod.DELETE:
                    before = images.pop(key, None)
                    if before is None and op.payload.get("values"):
                        before = decode_value(op.payload["values"])
                    events.append(FeedEvent(table, "delete", rowid,
                                            None, before))
                else:
                    row = decode_value(op.payload["values"])
                    before = images.get(key)
                    kind = "update" \
                        if op.type == walmod.UPDATE or before is not None \
                        else "insert"
                    events.append(FeedEvent(table, kind, rowid, row, before))
                    images[key] = row
            if events and rec.lsn > after_lsn:
                out.append(CommitBatch(0, rec.lsn, rec.txn_id, 0.0,
                                       tuple(events)))
    return out
