"""Background maintenance driven by the changefeed.

Deferred consumers (the inverted index, and anything else that only
*records* work in its handler) need something to actually absorb the
recorded work, compact what grew, and checkpoint cursors so a restart
does not replay the world.  :class:`MaintenanceWorker` is that
something: a small registry of named maintenance callables driven
either by an explicit :meth:`~MaintenanceWorker.run_once` (tests,
benchmarks, CLI) or a daemon thread ticking at a fixed interval
(servers).

The worker deliberately owns no policy: each registered task is a
closure such as ``index.maintain`` or ``index.compact`` that knows its
own consumer; the worker adds scheduling, failure isolation (a failing
task is recorded and does not starve the others) and post-run cursor
checkpointing for subscriptions whose ack advanced.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import TYPE_CHECKING, Callable

from ..errors import CrashSignal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.engine import Database
    from .changefeed import FeedSubscription


class _Task:
    __slots__ = ("name", "fn", "sub", "checkpoint", "last_checkpoint_seq")

    def __init__(self, name: str, fn: Callable[[], object],
                 sub: "FeedSubscription | None", checkpoint: bool) -> None:
        self.name = name
        self.fn = fn
        self.sub = sub
        self.checkpoint = checkpoint
        self.last_checkpoint_seq = 0


class MaintenanceWorker:
    """Periodic driver for deferred derived-data maintenance."""

    def __init__(self, db: "Database", *, interval: float = 0.25) -> None:
        self._db = db
        self._feed = db.changefeed()
        self.interval = interval
        self._tasks: list[_Task] = []
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: Recent task failures as (task, exception) pairs.
        self.errors: list[tuple[str, Exception]] = []
        registry = db.obs.registry
        self._m_runs = registry.counter("feed.worker_runs")
        self._m_seconds = registry.histogram("feed.worker_seconds")

    def register(self, name: str, fn: Callable[[], object], *,
                 sub: "FeedSubscription | None" = None,
                 checkpoint: bool = True) -> None:
        """Add a maintenance task.

        ``fn`` runs on every tick.  When ``sub`` is given (the task's
        feed subscription) and ``checkpoint`` is true, the worker
        persists the subscription's cursor after any tick on which its
        acked seq advanced — catch-up after restart then starts from
        that cursor instead of the beginning of history.
        """
        with self._lock:
            self._tasks.append(_Task(name, fn, sub, checkpoint))

    def run_once(self) -> dict[str, object]:
        """Run every task once; returns ``{task: result-or-exception}``.

        Failures are isolated per task (recorded in :attr:`errors`);
        :class:`~repro.errors.CrashSignal` propagates — a simulated
        process death must not be absorbed by the maintenance loop.
        """
        started = perf_counter()
        with self._lock:
            tasks = list(self._tasks)
        results: dict[str, object] = {}
        for task in tasks:
            try:
                results[task.name] = task.fn()
            except CrashSignal:
                raise
            except Exception as exc:
                results[task.name] = exc
                self.errors.append((task.name, exc))
                if len(self.errors) > 100:
                    del self.errors[: len(self.errors) - 100]
                continue
            sub = task.sub
            if sub is not None and task.checkpoint \
                    and sub.acked_seq > task.last_checkpoint_seq:
                self._feed.checkpoint(sub)
                task.last_checkpoint_seq = sub.acked_seq
        self._m_runs.inc()
        self._m_seconds.observe(perf_counter() - started)
        return results

    def drain(self, *, max_rounds: int = 100) -> int:
        """Run ticks until the feed's worst consumer lag reaches zero.

        Returns the number of rounds used; raises ``RuntimeError`` if
        the lag refuses to drain (a consumer that never acks would
        otherwise spin forever).  This is the benchmark/staleness-gate
        entry point: "the workload is over, absorb everything."
        """
        for rounds in range(1, max_rounds + 1):
            self.run_once()
            if self._feed.max_lag() == 0:
                return rounds
        raise RuntimeError(
            f"feed lag did not drain to 0 in {max_rounds} rounds "
            f"(still {self._feed.max_lag()})")

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the daemon tick thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="feed-maintenance",
                                        daemon=True)
        self._thread.start()

    def stop(self, *, final_tick: bool = True) -> None:
        """Stop the thread; by default runs one last synchronous tick
        so whatever the workload left behind is absorbed."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        if final_tick:
            self.run_once()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except CrashSignal:
                return
