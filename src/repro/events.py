"""A small synchronous publish/subscribe event bus.

The collaboration server, metadata collector and dynamic folders all react
to database commits.  Rather than wiring them to each other directly, the
engine publishes events on a bus and each subsystem subscribes to the topics
it cares about.  Delivery is synchronous and in subscription order, which
keeps test runs deterministic; asynchrony between editor clients is modelled
one level up (per-session delivery queues in :mod:`repro.collab`).
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

Handler = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """A published event.

    Attributes
    ----------
    topic:
        Dotted topic name, e.g. ``"db.commit"`` or ``"doc.changed"``.
    payload:
        Arbitrary mapping of event data.  Treated as read-only by handlers.
    """

    topic: str
    payload: dict = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Payload value for ``key`` with a default."""
        return self.payload.get(key, default)


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; call to unsubscribe."""

    def __init__(self, bus: "EventBus", pattern: str, handler: Handler) -> None:
        self._bus = bus
        self.pattern = pattern
        self.handler = handler
        self.active = True

    def cancel(self) -> None:
        """Stop receiving events.  Safe to call more than once."""
        if self.active:
            self.active = False
            self._bus._remove(self)


class EventBus:
    """Synchronous topic-based pub/sub with glob pattern matching.

    Patterns use :mod:`fnmatch` semantics: ``"db.*"`` matches ``"db.commit"``
    and ``"db.abort"``; a literal topic matches itself.
    """

    def __init__(self) -> None:
        self._subs: list[Subscription] = []
        self._lock = threading.RLock()

    def subscribe(self, pattern: str, handler: Handler) -> Subscription:
        """Register ``handler`` for every event whose topic matches."""
        sub = Subscription(self, pattern, handler)
        with self._lock:
            self._subs.append(sub)
        return sub

    def _remove(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass

    def publish(self, topic: str, **payload: Any) -> Event:
        """Publish an event, delivering synchronously to matching handlers.

        Handlers added or removed *during* delivery do not affect the
        current event (delivery iterates a snapshot).
        """
        event = Event(topic, payload)
        with self._lock:
            subs = list(self._subs)
        for sub in subs:
            if sub.active and fnmatch.fnmatchcase(topic, sub.pattern):
                sub.handler(event)
        return event

    def subscribers(self) -> Iterator[Subscription]:
        """Iterate over a snapshot of current subscriptions."""
        with self._lock:
            return iter(list(self._subs))

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)
