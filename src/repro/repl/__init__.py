"""WAL-shipping replication: read replicas and fast failover.

The leader's write-ahead log is already a totally ordered, durably
acked record stream — this package ships it to follower engines that
apply it continuously and idempotently, serve lock-free MVCC snapshot
reads while following, and can be *promoted* to writable leaders when
the leader dies (see ``docs/REPLICATION.md``).

* :class:`~repro.repl.apply.ReplicationApplier` — record-level apply
* :class:`~repro.repl.follower.FollowerEngine` — replica + promotion
* :class:`~repro.repl.tailer.WalTailer` /
  :class:`~repro.repl.tailer.WalFileTailer` — in-process shipping
* The wire path (``SUBSCRIBE`` / ``WAL_SEGMENT`` / ``REPL_ACK``) lives
  in :mod:`repro.net`.
"""

from .apply import ReplicationApplier
from .follower import FollowerEngine, load_local_wal
from .tailer import WalFileTailer, WalTailer

__all__ = [
    "FollowerEngine",
    "ReplicationApplier",
    "WalFileTailer",
    "WalTailer",
    "load_local_wal",
]
