"""WAL tailers: feed a follower from a leader in the same process.

Two in-process shipping paths (the wire path lives in
:mod:`repro.net.replica`):

* :class:`WalTailer` tails a live leader's
  :class:`~repro.db.wal.WriteAheadLog` object and ships its **durable**
  prefix — records beyond ``durable_lsn`` are never shipped, so a
  power loss on the leader can never leave the follower *ahead* of what
  leader recovery would rebuild.
* :class:`WalFileTailer` tails a leader's WAL mirror *file*
  incrementally — including the file of a leader that already crashed,
  which is how a follower catches up to exactly the prefix a recovered
  leader would see (the torture harness's equivalence anchor).  A torn
  trailing record has no newline yet, so it simply never parses out of
  the carry buffer — the same skip :func:`~repro.db.recovery.recover_file`
  applies.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

from ..db.wal import WalRecord, WriteAheadLog
from ..errors import WalError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .follower import FollowerEngine


class WalTailer:
    """Ships a live leader WAL's durable prefix to a follower."""

    def __init__(self, source: WriteAheadLog, follower: "FollowerEngine",
                 *, batch: int = 256) -> None:
        self._source = source
        self._follower = follower
        self._batch = max(1, batch)

    def poll(self) -> int:
        """Ship everything durable beyond the follower's cursor.

        Returns the number of records applied.  Also refreshes the
        follower's leader-LSN knowledge (the lag gauge) even when
        nothing new shipped.
        """
        durable = self._source.durable_lsn
        total = 0
        while True:
            start = self._follower.applied_lsn + 1
            segment = [r for r in
                       self._source.records_from(start, self._batch)
                       if r.lsn <= durable]
            if not segment:
                break
            total += self._follower.apply_records(
                segment, leader_lsn=durable,
                shipped_at=self._follower.db.now())
        self._follower.note_leader_lsn(durable)
        return total

    def caught_up(self) -> bool:
        return self._follower.applied_lsn >= self._source.durable_lsn


class WalFileTailer:
    """Ships a leader's WAL mirror file to a follower, incrementally.

    Reads are offset-based: each :meth:`poll` consumes only complete
    (newline-terminated) lines appended since the last one; a partial
    trailing line stays unconsumed until its newline arrives — or
    forever, if it is the torn debris of the leader's crash.
    """

    def __init__(self, path: str, follower: "FollowerEngine") -> None:
        self._path = path
        self._follower = follower
        self._offset = 0

    def poll(self) -> int:
        """Parse and apply newly appended records; returns the count."""
        try:
            size = os.path.getsize(self._path)
        except OSError:
            return 0
        if size <= self._offset:
            return 0
        with open(self._path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        lines = chunk.split(b"\n")
        tail = lines.pop()  # b"" when the chunk ended on a newline
        self._offset += len(chunk) - len(tail)
        records: list[WalRecord] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                records.append(WalRecord(raw["lsn"], raw["type"],
                                         raw["txn"],
                                         raw.get("payload", {})))
            except (ValueError, KeyError, TypeError) as exc:
                # A *complete* malformed line is corruption — torn
                # writes never get their newline, so they stay in the
                # carry buffer instead of reaching this loop.
                raise WalError(
                    f"corrupt WAL record while tailing {self._path!r}: "
                    f"{exc!r}") from exc
        if not records:
            return 0
        return self._follower.apply_records(
            records, leader_lsn=records[-1].lsn,
            shipped_at=self._follower.db.now())

    def drain(self) -> int:
        """Poll until the file yields nothing new (catch-up helper)."""
        total = 0
        while True:
            applied = self.poll()
            if not applied:
                return total
            total += applied
