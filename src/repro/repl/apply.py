"""The replica apply path: turn shipped WAL records into table state.

A :class:`ReplicationApplier` consumes a leader's records in LSN order
and re-enacts the leader's commit protocol against the follower's
:class:`~repro.db.engine.Database` — without transactions, locks or
restaging.  DML records are buffered per transaction id; the COMMIT
record applies the whole buffer atomically under the engine's
commit-intent window, so MVCC snapshot readers on the replica can never
observe a torn transaction.  Every shipped record is also appended
verbatim (same LSN) to the follower's own WAL mirror via
:meth:`~repro.db.wal.WriteAheadLog.append_shipped`, which makes the
follower's log a byte-equivalent prefix of the leader's: restart
resumption, promotion and recovery-equivalence all fall out of the
ordinary recovery tooling.

Idempotence is a single rule: a record with ``lsn <= applied_lsn`` is
a duplicate and is dropped before any side effect.  ``applied_lsn``
advances only after a record is fully processed, so redelivering any
suffix of the stream is always safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..db import recovery as recmod
from ..db import wal as walmod
from ..db.transaction import Change
from ..db.wal import WalRecord, committed_txn_ids, decode_value
from ..errors import ReplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.engine import Database

#: Record types carrying row changes that buffer until COMMIT.
_DML = (walmod.INSERT, walmod.UPDATE, walmod.DELETE)
#: DDL records carry txn id 0 and apply immediately (the leader logs
#: them after the fact, so they describe objects that really existed).
_DDL = (walmod.CREATE_TABLE, walmod.DROP_TABLE, walmod.CREATE_INDEX)


class ReplicationApplier:
    """Applies a leader's WAL records to a follower database."""

    def __init__(self, db: "Database") -> None:
        self._db = db
        self._applied_lsn = db.wal.last_lsn()
        #: txn id -> buffered DML records awaiting that txn's COMMIT.
        self._buffers: dict[int, list[WalRecord]] = {}
        #: Highest transaction id seen in the stream (promotion floor).
        self._max_txn = 0

    @property
    def db(self) -> "Database":
        return self._db

    @property
    def applied_lsn(self) -> int:
        """LSN of the last fully processed record (the resume point)."""
        return self._applied_lsn

    @property
    def max_txn_id(self) -> int:
        return self._max_txn

    @property
    def pending_txns(self) -> int:
        """Shipped transactions buffered without a COMMIT/ABORT yet."""
        return len(self._buffers)

    def drop_pending(self) -> int:
        """Discard buffered uncommitted transactions (promotion)."""
        dropped = len(self._buffers)
        self._buffers.clear()
        return dropped

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def resume(self, records: Iterable[WalRecord]) -> None:
        """Rebuild applier bookkeeping from the follower's own log.

        Called after the follower's database state was recovered from
        ``records`` (its local mirror): re-derives ``applied_lsn``, the
        per-transaction buffers of the uncommitted suffix, and the
        highest seen transaction id — the stream then resumes at
        ``applied_lsn + 1`` as if the restart never happened.
        """
        records = list(records)
        committed = committed_txn_ids(records)
        for record in records:
            self._max_txn = max(self._max_txn, record.txn_id)
            self._applied_lsn = max(self._applied_lsn, record.lsn)
            if record.type in _DML and record.txn_id not in committed:
                self._buffers.setdefault(record.txn_id, []).append(record)
            elif record.type in (walmod.COMMIT, walmod.ABORT):
                self._buffers.pop(record.txn_id, None)
        self._db.wal.advance_lsn(self._applied_lsn)

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------

    def apply(self, record: WalRecord) -> bool:
        """Process one shipped record; returns False for duplicates.

        Records must arrive in LSN order: a duplicate (``lsn <=
        applied_lsn``) is dropped with **no** side effects — not even a
        WAL append — so redelivered segments are invisible.  A gap is a
        protocol violation except for CHECKPOINT records, which carry
        the full state needed to start mid-stream (a leader that
        truncated its shipped history catches followers up from its
        last checkpoint).
        """
        if record.lsn <= self._applied_lsn:
            return False
        if record.lsn != self._applied_lsn + 1 \
                and record.type != walmod.CHECKPOINT:
            raise ReplicationError(
                f"gap in replication stream: expected LSN "
                f"{self._applied_lsn + 1}, got {record.lsn} "
                f"({record.type})")
        self._max_txn = max(self._max_txn, record.txn_id)
        db = self._db
        if record.type == walmod.COMMIT:
            self._apply_commit(record)
        elif record.type in _DML:
            db.wal.append_shipped(record)
            self._buffers.setdefault(record.txn_id, []).append(record)
        elif record.type == walmod.ABORT:
            db.wal.append_shipped(record)
            self._buffers.pop(record.txn_id, None)
        elif record.type == walmod.BEGIN:
            db.wal.append_shipped(record)
        elif record.type == walmod.CHECKPOINT:
            fill_gap = record.lsn != self._applied_lsn + 1
            db.wal.append_shipped(record)
            if fill_gap:
                # Starting mid-stream: the checkpoint *is* the state.
                self._buffers.clear()
                recmod._restore_checkpoint(db, record)
            # Contiguously shipped checkpoints are a state no-op — the
            # follower already holds exactly the snapshotted state, and
            # restoring it would collapse version chains under live
            # replica snapshots.
        elif record.type in _DDL:
            db.wal.append_shipped(record)
            self._apply_ddl(record)
        else:  # pragma: no cover - _TYPES is closed upstream
            raise ReplicationError(
                f"unknown shipped record type {record.type!r}")
        self._applied_lsn = record.lsn
        return True

    def _apply_ddl(self, record: WalRecord) -> None:
        db = self._db
        payload = record.payload
        if record.type == walmod.CREATE_TABLE:
            if not db.has_table(payload["table"]):
                columns = recmod._columns_from_payload(
                    decode_value(payload["columns"]))
                db.create_table(payload["table"], columns,
                                key=payload.get("key"), log=False)
        elif record.type == walmod.DROP_TABLE:
            if db.has_table(payload["table"]):
                db.drop_table(payload["table"], log=False)
        elif record.type == walmod.CREATE_INDEX:
            table = db.table(payload["table"])
            if payload["name"] not in table.indexes():
                table.create_index(payload["name"], payload["column"],
                                   kind=payload["kind"],
                                   unique=payload["unique"])

    def _apply_commit(self, record: WalRecord) -> None:
        """Apply one shipped transaction atomically.

        Mirrors :meth:`~repro.db.transaction.Transaction.commit`: the
        COMMIT record lands in the local WAL first (the commit point),
        then the buffered row images install under the engine's
        commit-intent window so no replica snapshot can pin an LSN that
        covers the COMMIT but see pre-apply tables.  The
        ``repl.mid_apply`` crash point fires halfway through the rows:
        a crash there leaves a torn in-memory state that restart
        recovery must repair from the local log.
        """
        db = self._db
        txn_id = record.txn_id
        ops = self._buffers.pop(txn_id, [])
        db.register_commit_intent(txn_id)
        try:
            db.wal.append_shipped(record)
            db.raise_commit_floor(txn_id, record.lsn)
            changes: list[Change] = []
            mid = (len(ops) + 1) // 2
            for position, op in enumerate(ops, start=1):
                if position == mid:
                    db.faults.fire("repl.mid_apply", txn=txn_id,
                                   lsn=record.lsn)
                table = db.table(op.payload["table"])
                rowid = op.payload["rowid"]
                if op.type == walmod.DELETE:
                    kind, row, old = table.apply_replica_delete(rowid,
                                                                record.lsn)
                else:
                    values = decode_value(op.payload["values"])
                    kind, row, old = table.apply_replica_row(rowid, values,
                                                             record.lsn)
                if kind == "noop":
                    continue
                row_map = table.schema.row_dict(row) \
                    if row is not None else None
                before_map = table.schema.row_dict(old) \
                    if old is not None else None
                changes.append(Change(op.payload["table"], kind, rowid,
                                      row_map, before_map))
        finally:
            db.clear_commit_intent(txn_id)
        db.stats["commits"] += 1
        db.bus.publish("db.commit", txn_id=txn_id, changes=changes)
