"""The follower engine: a read replica that can become the leader.

A :class:`FollowerEngine` owns a full :class:`~repro.db.engine.Database`
fed exclusively by a replication stream (see
:class:`~repro.repl.apply.ReplicationApplier`).  While following it
serves lock-free MVCC snapshot reads — search, mining, lineage, folders,
diff all run against ``follower.db`` exactly as against a leader — and
exposes its apply progress as ``repl.*`` metrics.  On leader loss,
:meth:`promote` finalizes the applied prefix (drops buffered uncommitted
transactions, fsyncs the local log, bumps id allocators past everything
shipped) and hands back a writable leader database.

Restart resumption: constructed over an existing ``wal_path``, the
engine truncates any torn trailing record (the signature of a crash
mid-shipped-append), recovers committed state with the ordinary
recovery machinery, rebuilds the applier's uncommitted-transaction
buffers, and resumes the stream from ``applied_lsn + 1``.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable

from ..clock import Clock
from ..db import recovery as recmod
from ..db.wal import WalRecord
from ..errors import ReplicationError, WalError
from ..obs import Observability
from .apply import ReplicationApplier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.engine import Database


def load_local_wal(path: str) -> tuple[list[WalRecord], int]:
    """Parse a follower's local mirror; returns ``(records, valid_bytes)``.

    Unlike :meth:`~repro.db.wal.WriteAheadLog.load_file` this also
    reports the byte length of the valid prefix, so a torn trailing
    record can be *truncated away* before the file is reopened for
    append — otherwise the next shipped line would fuse with the torn
    prefix into one corrupt record.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[WalRecord] = []
    valid = 0
    pos = 0
    size = len(data)
    while pos < size:
        newline = data.find(b"\n", pos)
        end = size if newline == -1 else newline
        next_pos = size if newline == -1 else newline + 1
        line = data[pos:end].strip()
        if line:
            try:
                raw = json.loads(line)
                record = WalRecord(raw["lsn"], raw["type"], raw["txn"],
                                   raw.get("payload", {}))
            except (ValueError, KeyError, TypeError) as exc:
                if next_pos >= size:
                    break  # torn tail: crash mid-append
                raise WalError(
                    f"corrupt WAL record in {path!r} at byte {pos} "
                    f"(not a torn tail): {exc!r}") from exc
            records.append(record)
            valid = next_pos
        else:
            valid = next_pos
        pos = next_pos
    return records, valid


class FollowerEngine:
    """A replica database applying a leader's WAL stream.

    Parameters
    ----------
    wal_path:
        The follower's *own* mirror file.  When it already holds
        records, the engine resumes from them (see module docstring);
        ``None`` keeps the replica purely in memory.
    node / clock / faults / obs:
        Forwarded to the underlying :class:`~repro.db.engine.Database`.
        The fault injector powers the replication crash points
        (``repl.mid_apply``, ``wal.mid_record`` on the local mirror).
    """

    def __init__(self, wal_path: str | None = None, *,
                 node: str = "replica", clock: Clock | None = None,
                 faults=None, obs: Observability | None = None) -> None:
        records: list[WalRecord] = []
        torn = 0
        if wal_path and os.path.exists(wal_path) \
                and os.path.getsize(wal_path):
            records, valid = load_local_wal(wal_path)
            if valid < os.path.getsize(wal_path):
                with open(wal_path, "r+b") as raw:
                    raw.truncate(valid)
                torn = 1
        if records:
            self._db: "Database" = recmod.recover(
                records, node=node, clock=clock, wal_path=wal_path,
                faults=faults, obs=obs)
        else:
            from ..db.engine import Database
            self._db = Database(node, clock=clock, wal_path=wal_path,
                                faults=faults, obs=obs)
        self._applier = ReplicationApplier(self._db)
        if records:
            self._applier.resume(records)
        registry = self._db.obs.registry
        self._m_lag_lsn = registry.gauge("repl.apply_lag_lsn")
        self._m_lag_seconds = registry.histogram("repl.apply_lag_seconds")
        self._m_records = registry.counter("repl.records_applied")
        self._m_promotions = registry.counter("repl.promotions")
        if torn:
            registry.counter("wal.torn_tail_recoveries").inc(torn)
        self._leader_lsn = self._applier.applied_lsn
        self._promoted = False
        self._m_lag_lsn.set(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def db(self) -> "Database":
        """The replica database (snapshot reads while following;
        fully writable after :meth:`promote`)."""
        return self._db

    @property
    def applied_lsn(self) -> int:
        return self._applier.applied_lsn

    @property
    def leader_lsn(self) -> int:
        """Highest leader LSN this follower has heard of."""
        return self._leader_lsn

    @property
    def lag_lsn(self) -> int:
        return max(0, self._leader_lsn - self._applier.applied_lsn)

    @property
    def promoted(self) -> bool:
        return self._promoted

    def status(self) -> dict:
        """JSON-serialisable replication status (the scrape payload)."""
        return {
            "node": self._db.node,
            "applied_lsn": self.applied_lsn,
            "leader_lsn": self._leader_lsn,
            "lag_lsn": self.lag_lsn,
            "pending_txns": self._applier.pending_txns,
            "records_applied": self._m_records.value,
            "promoted": self._promoted,
        }

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------

    def note_leader_lsn(self, lsn: int) -> None:
        """Record the leader's log tail (drives the lag gauge)."""
        self._leader_lsn = max(self._leader_lsn, lsn)
        self._m_lag_lsn.set(self.lag_lsn)

    def apply_records(self, records: Iterable[WalRecord], *,
                      leader_lsn: int | None = None,
                      shipped_at: float | None = None) -> int:
        """Apply one shipped segment; returns the records newly applied.

        Duplicates (redelivered segments, restart overlap) are dropped
        by the applier's LSN cursor with no side effects.  A non-empty
        apply ends with one local fsync (the segment's durability
        boundary) and, when ``shipped_at`` carries the leader's send
        stamp, one ``repl.apply_lag_seconds`` observation.
        """
        if self._promoted:
            raise ReplicationError(
                f"follower {self._db.node!r} was promoted; it no longer "
                f"applies shipped records")
        applied = 0
        for record in records:
            if self._applier.apply(record):
                applied += 1
        if applied:
            self._db.wal.sync_shipped()
            self._m_records.inc(applied)
            if shipped_at is not None:
                self._m_lag_seconds.observe(
                    max(0.0, self._db.now() - shipped_at))
        if leader_lsn is not None:
            self._leader_lsn = max(self._leader_lsn, leader_lsn)
        self._leader_lsn = max(self._leader_lsn, self._applier.applied_lsn)
        self._m_lag_lsn.set(self.lag_lsn)
        return applied

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------

    def promote(self) -> "Database":
        """Finalize the applied prefix and become a writable leader.

        Buffered transactions that never shipped a COMMIT are dropped —
        their records stay in the local log where recovery ignores them,
        exactly as a recovered leader would discard them.  The applied
        prefix is fsynced, and the transaction-id / LSN allocators jump
        past everything shipped so new local writes extend the same log.
        Idempotent; returns the (now writable) database.
        """
        if self._promoted:
            return self._db
        self._applier.drop_pending()
        self._db.wal.sync_shipped()
        self._db.advance_txn_ids(self._applier.max_txn_id)
        self._db.wal.advance_lsn(self._applier.applied_lsn)
        self._promoted = True
        self._m_promotions.inc()
        self._m_lag_lsn.set(0)
        return self._db

    def close(self) -> None:
        self._db.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FollowerEngine(node={self._db.node!r}, "
                f"applied={self.applied_lsn}, lag={self.lag_lsn}, "
                f"promoted={self._promoted})")
