"""Serialisation of dynamic-folder conditions.

Dynamic folders are metadata *definitions*; storing them in the database
(like everything else in TeNDaX) means they survive crash recovery and
can be shared between sessions.  Conditions serialise to a small JSON
spec tree and back via :func:`condition_to_spec` /
:func:`condition_from_spec`; :class:`repro.folders.dynamic.DynamicFolderManager`
uses these for its ``save_folder``/``load_folders`` persistence.
"""

from __future__ import annotations

from ..errors import FolderError
from . import dynamic as D


def condition_to_spec(condition: D.Condition) -> dict:
    """Serialise a condition tree to a JSON-compatible spec."""
    if isinstance(condition, D.AllOf):
        return {"op": "all",
                "parts": [condition_to_spec(p) for p in condition.parts]}
    if isinstance(condition, D.AnyOf):
        return {"op": "any",
                "parts": [condition_to_spec(p) for p in condition.parts]}
    if isinstance(condition, D.NotCond):
        return {"op": "not", "part": condition_to_spec(condition.part)}
    if isinstance(condition, D.CreatorIs):
        return {"op": "creator", "user": condition.user}
    if isinstance(condition, D.StateIs):
        return {"op": "state", "state": condition.state}
    if isinstance(condition, D.NameContains):
        return {"op": "name_contains", "needle": condition.needle}
    if isinstance(condition, D.SizeAtLeast):
        return {"op": "size_at_least", "size": condition.size}
    if isinstance(condition, D.HasProperty):
        return {"op": "has_property", "key": condition.key,
                "value": condition.value}
    if isinstance(condition, D.AccessedBy):
        return {"op": "accessed_by", "user": condition.user,
                "action": condition.action, "within": condition.within}
    if isinstance(condition, D.ModifiedWithin):
        return {"op": "modified_within", "seconds": condition.seconds}
    if isinstance(condition, D.AuthoredBy):
        return {"op": "authored_by", "user": condition.user,
                "min_chars": condition.min_chars}
    raise FolderError(
        f"condition {type(condition).__name__} is not serialisable"
    )


def condition_from_spec(spec: dict) -> D.Condition:
    """Rebuild a condition tree from its spec."""
    op = spec.get("op")
    if op == "all":
        return D.AllOf(tuple(condition_from_spec(p)
                             for p in spec["parts"]))
    if op == "any":
        return D.AnyOf(tuple(condition_from_spec(p)
                             for p in spec["parts"]))
    if op == "not":
        return D.NotCond(condition_from_spec(spec["part"]))
    if op == "creator":
        return D.CreatorIs(spec["user"])
    if op == "state":
        return D.StateIs(spec["state"])
    if op == "name_contains":
        return D.NameContains(spec["needle"])
    if op == "size_at_least":
        return D.SizeAtLeast(spec["size"])
    if op == "has_property":
        return D.HasProperty(spec["key"], spec.get("value"))
    if op == "accessed_by":
        return D.AccessedBy(spec["user"], spec.get("action", "read"),
                            spec.get("within"))
    if op == "modified_within":
        return D.ModifiedWithin(spec["seconds"])
    if op == "authored_by":
        return D.AuthoredBy(spec["user"], spec.get("min_chars", 1))
    raise FolderError(f"unknown condition op {op!r}")
