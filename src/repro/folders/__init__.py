"""Static folders and metadata-driven dynamic folders."""

from .dynamic import (
    AccessedBy,
    AllOf,
    AnyOf,
    AuthoredBy,
    Condition,
    CreatorIs,
    DynamicFolder,
    DynamicFolderManager,
    FolderContext,
    HasProperty,
    ModifiedWithin,
    NameContains,
    NotCond,
    SizeAtLeast,
    StateIs,
)
from .specs import condition_from_spec, condition_to_spec
from .static import StaticFolderManager, install_folder_schema

__all__ = [
    "AccessedBy",
    "AllOf",
    "AnyOf",
    "AuthoredBy",
    "Condition",
    "CreatorIs",
    "DynamicFolder",
    "DynamicFolderManager",
    "FolderContext",
    "HasProperty",
    "ModifiedWithin",
    "NameContains",
    "NotCond",
    "SizeAtLeast",
    "StateIs",
    "StaticFolderManager",
    "condition_from_spec",
    "condition_to_spec",
    "install_folder_schema",
]
