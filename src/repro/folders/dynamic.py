"""Dynamic folders: metadata-defined virtual folders with live refresh.

§3: "Dynamic folders are virtual folders that are based on meta data.  A
dynamic folder can contain all documents a certain user has read within
the last week.  Its content is fluent and may change within seconds (e.g.
as soon as a document changes)."

A folder is a :class:`Condition` over document metadata.  The manager
keeps folder membership up to date *event-driven*: a changefeed
subscription over the document table, the access log and the character
table re-evaluates exactly the affected documents — delete events carry
before-images, so purged documents drop out of membership too.
Membership reflects an edit in the same commit that made it —
the "within seconds" of the paper becomes "within the same transaction
boundary".  A full :meth:`DynamicFolder.revalidate` pass exists for
time-window decay (a document leaving "read within the last week" purely
because time passed) and is what the re-query baseline in the benchmarks
does on every read.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..db import Database, col
from ..errors import FolderError
from ..ids import Oid
from ..text import dbschema as S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..feed.changefeed import CommitBatch


# ---------------------------------------------------------------------------
# Condition DSL
# ---------------------------------------------------------------------------

class Condition:
    """A predicate over a document's metadata; composable with ``& | ~``."""

    def matches(self, ctx: "FolderContext", doc: Oid) -> bool:
        """Does document ``doc`` satisfy this condition now?"""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return AllOf((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return AnyOf((self, other))

    def __invert__(self) -> "Condition":
        return NotCond(self)


@dataclass(frozen=True)
class AllOf(Condition):
    parts: tuple

    def matches(self, ctx, doc):
        """True when every part matches."""
        return all(p.matches(ctx, doc) for p in self.parts)


@dataclass(frozen=True)
class AnyOf(Condition):
    parts: tuple

    def matches(self, ctx, doc):
        """True when any part matches."""
        return any(p.matches(ctx, doc) for p in self.parts)


@dataclass(frozen=True)
class NotCond(Condition):
    part: Condition

    def matches(self, ctx, doc):
        """Invert the wrapped condition."""
        return not self.part.matches(ctx, doc)


@dataclass(frozen=True)
class CreatorIs(Condition):
    user: str

    def matches(self, ctx, doc):
        """Document was created by the given user."""
        row = ctx.doc_row(doc)
        return row is not None and row["creator"] == self.user


@dataclass(frozen=True)
class StateIs(Condition):
    state: str

    def matches(self, ctx, doc):
        """Document is in the given lifecycle state."""
        row = ctx.doc_row(doc)
        return row is not None and row["state"] == self.state


@dataclass(frozen=True)
class NameContains(Condition):
    needle: str

    def matches(self, ctx, doc):
        """Document name contains the needle (case-insensitive)."""
        row = ctx.doc_row(doc)
        return (row is not None
                and self.needle.lower() in row["name"].lower())


@dataclass(frozen=True)
class SizeAtLeast(Condition):
    size: int

    def matches(self, ctx, doc):
        """Document has at least ``size`` visible characters."""
        row = ctx.doc_row(doc)
        return row is not None and row["size"] >= self.size


@dataclass(frozen=True)
class HasProperty(Condition):
    key: str
    value: object = None

    def matches(self, ctx, doc):
        """Document carries the property (optionally a value)."""
        row = ctx.doc_row(doc)
        if row is None:
            return False
        props = row["props"] or {}
        if self.key not in props:
            return False
        return self.value is None or props[self.key] == self.value


@dataclass(frozen=True)
class AccessedBy(Condition):
    """User performed ``action`` on the document within ``within`` seconds.

    ``within=None`` means "ever".  This is the paper's example condition
    ("all documents a certain user has read within the last week").
    """

    user: str
    action: str = "read"
    within: float | None = None

    def matches(self, ctx, doc):
        """User performed the action on the document (within a window)."""
        since = None if self.within is None else ctx.now() - self.within
        query = ctx.query(S.ACCESS_LOG).where(
            (col("doc") == doc) & (col("user") == self.user)
            & (col("action") == self.action))
        if since is not None:
            query = query.where(col("at") >= since)
        return query.count() > 0


@dataclass(frozen=True)
class ModifiedWithin(Condition):
    seconds: float

    def matches(self, ctx, doc):
        """Document was modified within the last ``seconds``."""
        row = ctx.doc_row(doc)
        return (row is not None
                and row["last_modified"] >= ctx.now() - self.seconds)


@dataclass(frozen=True)
class AuthoredBy(Condition):
    """User wrote at least ``min_chars`` still-visible characters."""

    user: str
    min_chars: int = 1

    def matches(self, ctx, doc):
        """User wrote at least ``min_chars`` visible characters."""
        rows = ctx.query(S.CHARS).where(
            (col("doc") == doc) & (col("author") == self.user)).run()
        visible = sum(1 for r in rows if r["ch"] and not r["deleted"])
        return visible >= self.min_chars


# ---------------------------------------------------------------------------
# Evaluation context and folders
# ---------------------------------------------------------------------------

class FolderContext:
    """Metadata lookups shared by condition evaluation.

    Normally reads committed state directly; :meth:`with_reader` binds a
    copy to a transaction (a snapshot for full rescans), so every
    condition a pass evaluates sees one commit point.
    """

    def __init__(self, db: Database, reader=None) -> None:
        self.db = db
        self._reader = reader

    def query(self, table_name: str):
        """Start a query through the bound reader (or the database)."""
        source = self._reader if self._reader is not None else self.db
        return source.query(table_name)

    def with_reader(self, txn) -> "FolderContext":
        """A context whose lookups run inside ``txn``."""
        return FolderContext(self.db, reader=txn)

    def doc_row(self, doc: Oid) -> dict | None:
        """The document's metadata row, or ``None``."""
        row = self.query(S.DOCUMENTS).where(col("doc") == doc).first()
        return None if row is None else dict(row)

    def now(self) -> float:
        """Current time from the database clock."""
        return self.db.now()

    def all_docs(self) -> list[Oid]:
        """OIDs of every document in the database."""
        return [r["doc"] for r in
                self.query(S.DOCUMENTS).select("doc").run()]


class DynamicFolder:
    """One virtual folder: a name, a condition, and a live member set."""

    def __init__(self, name: str, condition: Condition,
                 ctx: FolderContext) -> None:
        self.name = name
        self.condition = condition
        self._ctx = ctx
        self._members: set[Oid] = set()
        #: Members kept in sorted order incrementally (bisect insert /
        #: remove on membership change), so listings never re-sort.
        self._ordered: list[Oid] = []
        self.stats = {"evaluations": 0, "full_scans": 0}
        self.revalidate()

    def contents(self, limit: int | None = None) -> list[Oid]:
        """Current members in sorted order (event-fresh).

        ``limit`` returns just the first page — O(limit), independent
        of folder size; without it the full copy is O(members).
        """
        if limit is not None:
            return self._ordered[:limit]
        return list(self._ordered)

    def __contains__(self, doc: Oid) -> bool:
        return doc in self._members

    def __len__(self) -> int:
        return len(self._members)

    def reevaluate_doc(self, doc: Oid) -> bool:
        """Re-check one document; returns True if membership changed."""
        self.stats["evaluations"] += 1
        matches = self.condition.matches(self._ctx, doc)
        if matches and doc not in self._members:
            self._members.add(doc)
            insort(self._ordered, doc)
            return True
        if not matches and doc in self._members:
            self._members.discard(doc)
            pos = bisect_left(self._ordered, doc)
            if pos < len(self._ordered) and self._ordered[pos] == doc:
                del self._ordered[pos]
            return True
        return False

    def revalidate(self) -> None:
        """Full rescan (used for time-decay and by the re-query baseline).

        Runs inside one snapshot transaction: membership of every
        document is decided against the same commit point, and the scan
        never contends with typists for locks.
        """
        self.stats["full_scans"] += 1
        with self._ctx.db.snapshot() as snap:
            ctx = self._ctx.with_reader(snap)
            docs = ctx.all_docs()
            self._members = {
                doc for doc in docs
                if self.condition.matches(ctx, doc)
            }
        self._ordered = sorted(self._members)
        self.stats["evaluations"] += len(docs)


class DynamicFolderManager:
    """Creates dynamic folders and keeps their membership event-fresh."""

    #: Tables whose commits can change folder membership.
    _WATCHED = (S.DOCUMENTS, S.ACCESS_LOG, S.CHARS)

    #: Feed consumer name (also the durable cursor key).
    CONSUMER = "dynamic-folders"

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)
        self._ctx = FolderContext(db)
        self._folders: dict[str, DynamicFolder] = {}
        self._listeners: list[Callable[[str, Oid, bool], None]] = []
        # One table-filtered feed subscription rather than one trigger
        # per table: a commit touching chars + access log + document row
        # re-evaluates each affected document once, not three times.
        self._sub = db.changefeed().subscribe(
            self.CONSUMER, self._on_batch, tables=self._WATCHED)

    @property
    def subscription(self):
        """The manager's feed subscription (lag inspection)."""
        return self._sub

    def close(self) -> None:
        """Stop reacting to commits (folders go stale)."""
        self._sub.close()

    # -- folder management ---------------------------------------------------

    def create_folder(self, name: str, condition: Condition) -> DynamicFolder:
        """Create a folder; membership is evaluated immediately."""
        if name in self._folders:
            raise FolderError(f"dynamic folder {name!r} already exists")
        folder = DynamicFolder(name, condition, self._ctx)
        self._folders[name] = folder
        return folder

    def drop_folder(self, name: str) -> None:
        """Remove a folder by name."""
        if name not in self._folders:
            raise FolderError(f"no dynamic folder {name!r}")
        del self._folders[name]

    def folder(self, name: str) -> DynamicFolder:
        """Look up a folder by name (raises if absent)."""
        try:
            return self._folders[name]
        except KeyError:
            raise FolderError(f"no dynamic folder {name!r}") from None

    def folders(self) -> list[DynamicFolder]:
        """All folders managed here."""
        return list(self._folders.values())

    def on_membership_change(
        self, callback: Callable[[str, Oid, bool], None]
    ) -> None:
        """Register ``callback(folder_name, doc, now_member)``."""
        self._listeners.append(callback)

    # -- event-driven refresh ----------------------------------------------------

    def _on_batch(self, batch: "CommitBatch") -> None:
        docs: set[Oid] = set()
        for event in batch.events:
            # A delete event's row is None; the before-image names the
            # vanished document — without it, purged documents would
            # linger in folder membership forever.
            row = event.row if event.row is not None else event.before
            if row is not None and "doc" in row and row["doc"] is not None:
                docs.add(row["doc"])
        if not docs:
            return
        for folder in self._folders.values():
            for doc in docs:
                changed = folder.reevaluate_doc(doc)
                if changed:
                    for listener in self._listeners:
                        listener(folder.name, doc, doc in folder)

    def revalidate_all(self) -> None:
        """Full rescan of every folder (time-window decay)."""
        for folder in self._folders.values():
            folder.revalidate()

    # -- persistence --------------------------------------------------------

    DEFINITIONS = "tx_dynamic_folders"

    def _install_definition_table(self) -> None:
        from ..db import column
        if not self.db.has_table(self.DEFINITIONS):
            self.db.create_table(self.DEFINITIONS, [
                column("name", "str"),
                column("spec", "json"),
                column("created_by", "str"),
                column("created_at", "timestamp"),
            ], key="name")

    def save_folder(self, name: str, user: str) -> None:
        """Persist a folder's definition (it survives crash recovery)."""
        from .specs import condition_to_spec
        folder = self.folder(name)
        self._install_definition_table()
        existing = (self.db.query(self.DEFINITIONS)
                    .where(col("name") == name).first())
        spec = condition_to_spec(folder.condition)
        if existing is not None:
            self.db.update(self.DEFINITIONS, existing.rowid,
                           {"spec": spec})
        else:
            self.db.insert(self.DEFINITIONS, {
                "name": name, "spec": spec, "created_by": user,
                "created_at": self.db.now(),
            })

    def load_folders(self) -> list[str]:
        """Recreate folders from persisted definitions; returns names.

        Folders that already exist in this manager are left untouched.
        """
        from .specs import condition_from_spec
        if not self.db.has_table(self.DEFINITIONS):
            return []
        loaded = []
        for row in self.db.query(self.DEFINITIONS).run():
            if row["name"] in self._folders:
                continue
            self.create_folder(row["name"],
                               condition_from_spec(row["spec"]))
            loaded.append(row["name"])
        return loaded
