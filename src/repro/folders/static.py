"""Static folders: the classical hierarchy TeNDaX keeps for compatibility.

The paper's document-level metadata includes "places within static
folders".  A document may be placed in any number of folders (unlike a
file system), and folders form a tree.
"""

from __future__ import annotations

from ..db import Database, col, column
from ..errors import FolderError
from ..ids import Oid
from ..text import dbschema as S

FOLDERS = "tx_folders"
FOLDER_DOCS = "tx_folder_docs"


def install_folder_schema(db: Database) -> None:
    """Create the static-folder tables (idempotent)."""
    if not db.has_table(FOLDERS):
        db.create_table(FOLDERS, [
            column("folder", "oid"),
            column("name", "str"),
            column("parent", "oid", nullable=True),
            column("created_by", "str"),
            column("created_at", "timestamp"),
        ], key="folder")
        db.create_index(FOLDERS, "parent")
    if not db.has_table(FOLDER_DOCS):
        db.create_table(FOLDER_DOCS, [
            column("folder", "oid"),
            column("doc", "oid"),
        ])
        db.create_index(FOLDER_DOCS, "folder")
        db.create_index(FOLDER_DOCS, "doc")


class StaticFolderManager:
    """Create folders and place documents into them."""

    def __init__(self, db: Database) -> None:
        self.db = db
        install_folder_schema(db)
        S.install_text_schema(db)

    def create_folder(self, name: str, user: str,
                      parent: Oid | None = None) -> Oid:
        """Create a folder (optionally under a parent)."""
        if parent is not None:
            self._require_folder(parent)
        folder = self.db.new_oid("folder")
        self.db.insert(FOLDERS, {
            "folder": folder, "name": name, "parent": parent,
            "created_by": user, "created_at": self.db.now(),
        })
        return folder

    def _require_folder(self, folder: Oid) -> dict:
        row = self.db.query(FOLDERS).where(col("folder") == folder).first()
        if row is None:
            raise FolderError(f"no folder {folder}")
        return dict(row)

    def place(self, doc: Oid, folder: Oid) -> None:
        """Put a document into a folder (idempotent)."""
        self._require_folder(folder)
        existing = (self.db.query(FOLDER_DOCS)
                    .where((col("folder") == folder) & (col("doc") == doc))
                    .count())
        if not existing:
            self.db.insert(FOLDER_DOCS, {"folder": folder, "doc": doc})

    def remove(self, doc: Oid, folder: Oid) -> None:
        """Take a document out of a folder."""
        rows = (self.db.query(FOLDER_DOCS)
                .where((col("folder") == folder) & (col("doc") == doc))
                .run())
        for row in rows:
            self.db.delete(FOLDER_DOCS, row.rowid)

    def contents(self, folder: Oid) -> list[Oid]:
        """Document OIDs placed in the folder, sorted."""
        self._require_folder(folder)
        rows = self.db.query(FOLDER_DOCS).where(col("folder") == folder).run()
        return sorted({r["doc"] for r in rows})

    def folders_of(self, doc: Oid) -> list[Oid]:
        """Every folder a document is placed in ("places" metadata)."""
        rows = self.db.query(FOLDER_DOCS).where(col("doc") == doc).run()
        return sorted({r["folder"] for r in rows})

    def children(self, parent: Oid | None) -> list[dict]:
        """Direct child folders of ``parent``, by name."""
        rows = self.db.query(FOLDERS).where(col("parent") == parent).run()
        return sorted((dict(r) for r in rows), key=lambda r: r["name"])

    def path_of(self, folder: Oid) -> str:
        """Slash-joined path from the root, e.g. ``/projects/tendax``."""
        parts: list[str] = []
        current: Oid | None = folder
        guard = 0
        while current is not None:
            row = self._require_folder(current)
            parts.append(row["name"])
            current = row["parent"]
            guard += 1
            if guard > 128:
                raise FolderError("folder hierarchy too deep or cyclic")
        return "/" + "/".join(reversed(parts))

    def tree_text(self, parent: Oid | None = None, depth: int = 0) -> str:
        """Printable folder tree with document counts."""
        lines = []
        for row in self.children(parent):
            count = len(self.contents(row["folder"]))
            lines.append(f"{'  ' * depth}{row['name']}/ ({count})")
            subtree = self.tree_text(row["folder"], depth + 1)
            if subtree:
                lines.append(subtree)
        return "\n".join(lines)
