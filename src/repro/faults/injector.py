"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One injector is threaded through a :class:`~repro.db.engine.Database`
(WAL, transactions, checkpoints, lock manager) and, optionally, a
:class:`~repro.collab.server.CollaborationServer` delivery bus.
Instrumented code calls :meth:`FaultInjector.fire` (or :meth:`check` +
:meth:`crash` when the failure needs site-specific mechanics, e.g. a torn
WAL write).  The injector counts hits per crash point, triggers the
planned fault on the matching hit, powers off the attached WAL so a
"dead" process cannot write another byte, and raises
:class:`~repro.faults.plan.CrashSignal`.

A module-level :data:`NO_FAULTS` null injector keeps the hot paths cheap
when no plan is active.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .plan import CrashSignal, CrashSpec, FaultPlan, LockFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.wal import WriteAheadLog


@dataclass(frozen=True)
class FiredFault:
    """One fault the injector actually triggered (for assertions/repro)."""

    kind: str               # "crash" | "lock" | "hold"
    point: str              # crash point, or "locks.acquire" / "delivery"
    hit: int
    detail: dict


class NullInjector:
    """No-op injector: the default wiring when no faults are planned."""

    armed = False
    crashed = False
    plan = FaultPlan()
    fired: tuple = ()

    def attach_wal(self, wal: "WriteAheadLog") -> None:
        pass

    def check(self, point: str) -> None:
        return None

    def fire(self, point: str, **ctx: Any) -> None:
        return None

    def lock_action(self, txn_id: int, resource: Any,
                    mode: str) -> None:
        return None

    def delivery_action(self) -> str:
        return "deliver"

    def drain_order(self, n: int) -> list[int]:
        return list(range(n))

    def net_frame_action(self) -> tuple[str, float]:
        return ("send", 0.0)

    def net_reorder_window(self) -> int:
        return 0

    def net_reorder_order(self, n: int) -> list[int]:
        return list(range(n))

    def net_disconnect_after(self) -> int | None:
        return None


#: Shared null injector; safe because it holds no mutable state.
NO_FAULTS = NullInjector()


class FaultInjector:
    """Executes a fault plan against the instrumented engine/collab code.

    Parameters
    ----------
    plan:
        The fault schedule.  ``None`` or an empty plan makes the injector
        inert (but still counting hits, which is useful for calibrating
        ``hit`` numbers in new torture workloads).
    armed:
        When ``False`` the injector counts nothing and fires nothing
        until :meth:`arm` is called — lets a harness build fixture state
        (schemas, documents, users) outside the blast radius so every
        planned fault lands inside the measured workload.
    """

    def __init__(self, plan: FaultPlan | None = None, *,
                 armed: bool = True) -> None:
        self.plan = plan or FaultPlan()
        self.armed = armed
        self.crashed = False
        self.hits: dict[str, int] = {}
        self.fired: list[FiredFault] = []
        self._wal: "WriteAheadLog | None" = None
        self._lock = threading.Lock()
        self._lock_acquires = 0
        self._rng = random.Random(self.plan.seed if self.plan.seed is not None
                                  else 0)

    # -- lifecycle -----------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Start counting hits and firing faults (see ``armed``)."""
        self.armed = True
        return self

    def attach_wal(self, wal: "WriteAheadLog") -> None:
        """Register the WAL to power off when a crash fires."""
        self._wal = wal

    @property
    def crash_point_fired(self) -> str | None:
        """The crash point that killed the process, if any."""
        for fault in self.fired:
            if fault.kind == "crash":
                return fault.point
        return None

    # -- crash points --------------------------------------------------------

    def check(self, point: str) -> CrashSpec | None:
        """Count a pass through ``point``; return the spec if it triggers.

        Callers that need site-specific crash mechanics (torn writes) use
        ``check`` + :meth:`crash`; everyone else uses :meth:`fire`.
        """
        if not self.armed or self.crashed:
            return None
        with self._lock:
            count = self.hits.get(point, 0) + 1
            self.hits[point] = count
        for spec in self.plan.crashes:
            if spec.point == point and spec.hit == count:
                return spec
        return None

    def fire(self, point: str, **ctx: Any) -> None:
        """Pass through ``point``; simulate process death if planned."""
        spec = self.check(point)
        if spec is not None:
            self.crash(spec, **ctx)

    def crash(self, spec: CrashSpec, **ctx: Any) -> None:
        """Kill the simulated process *now* according to ``spec``.

        Powers off the attached WAL first (flush-or-truncate per
        ``spec.power_loss``) so nothing the post-mortem interpreter does
        — e.g. a context manager appending an ABORT record — can reach
        the "disk" a real dead process could never have written to.
        """
        self.crashed = True
        self.fired.append(FiredFault("crash", spec.point, spec.hit, dict(ctx)))
        if self._wal is not None:
            self._wal.power_off(lose_unsynced=spec.power_loss)
        raise CrashSignal(f"injected crash at {spec.point} "
                          f"(hit {spec.hit}, power_loss={spec.power_loss})")

    # -- lock faults ---------------------------------------------------------

    def lock_action(self, txn_id: int, resource: Any,
                    mode: str) -> LockFault | None:
        """Consulted by the lock manager before every acquire."""
        if not self.armed or self.crashed or not self.plan.lock_faults:
            return None
        with self._lock:
            self._lock_acquires += 1
            count = self._lock_acquires
        for fault in self.plan.lock_faults:
            if fault.nth == count:
                self.fired.append(FiredFault(
                    "lock", "locks.acquire", count,
                    {"txn": txn_id, "resource": resource, "mode": mode,
                     "kind": fault.kind},
                ))
                return fault
        return None

    # -- delivery faults -----------------------------------------------------

    def delivery_action(self) -> str:
        """``"deliver"`` or ``"hold"`` for the next outgoing notification."""
        fault = self.plan.delivery
        if not self.armed or fault is None:
            return "deliver"
        if self._rng.random() < fault.p_hold:
            self.fired.append(FiredFault(
                "hold", "delivery", len(self.fired) + 1, {}))
            return "hold"
        return "deliver"

    def drain_order(self, n: int) -> list[int]:
        """Delivery order for ``n`` held notifications on drain."""
        order = list(range(n))
        fault = self.plan.delivery
        if fault is not None and fault.reorder and n > 1:
            self._rng.shuffle(order)
        return order

    # -- socket-level faults -------------------------------------------------

    def net_frame_action(self) -> tuple[str, float]:
        """Fate of the next faultable outbound frame.

        Returns ``("drop", 0)``, ``("delay", seconds)`` or
        ``("send", 0)``.  Drops and delays are recorded in
        :attr:`fired` so tests can assert the plan actually bit.
        """
        fault = self.plan.net
        if not self.armed or fault is None:
            return ("send", 0.0)
        roll = self._rng.random()
        if roll < fault.p_drop:
            self.fired.append(FiredFault(
                "net_drop", "net.frame", len(self.fired) + 1, {}))
            return ("drop", 0.0)
        if roll < fault.p_drop + fault.p_delay:
            delay = self._rng.uniform(0.0, fault.max_delay)
            self.fired.append(FiredFault(
                "net_delay", "net.frame", len(self.fired) + 1,
                {"delay": delay}))
            return ("delay", delay)
        return ("send", 0.0)

    def net_reorder_window(self) -> int:
        """Frames the sender buffers before a shuffled release (0 = off)."""
        fault = self.plan.net
        if not self.armed or fault is None:
            return 0
        return fault.reorder_window

    def net_reorder_order(self, n: int) -> list[int]:
        """Seeded send order for an ``n``-frame reorder window."""
        order = list(range(n))
        if n > 1:
            self._rng.shuffle(order)
        return order

    def net_disconnect_after(self) -> int | None:
        """Sever the connection after this many faultable frames."""
        fault = self.plan.net
        if not self.armed or fault is None:
            return None
        return fault.disconnect_after

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultInjector(seed={self.plan.seed}, armed={self.armed}, "
                f"crashed={self.crashed}, fired={len(self.fired)})")
