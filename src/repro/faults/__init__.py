"""Deterministic fault injection: crash points, fault plans, torture tools.

The paper sells DBMS-grade guarantees for word processing; this package
is how the reproduction earns them off the happy path.  It provides:

* named **crash points** threaded through the engine
  (:data:`~repro.faults.plan.CRASH_POINTS`) that a seeded
  :class:`~repro.faults.plan.FaultPlan` turns into simulated process
  death, torn WAL writes, and fsync loss;
* **lock faults** (forced timeouts, injected latency), **delivery
  faults** (held / out-of-order collab notifications), and **net
  faults** (seeded drop / delay / reorder / disconnect on the network
  server's outbound change frames);
* a :class:`~repro.faults.scheduler.DeterministicScheduler` replaying
  concurrent-typist interleavings from one seed; and
* the torture harness (:mod:`repro.faults.harness`) asserting the
  recovery-equivalence property across seeded crash schedules.

Everything reproduces from a single integer seed; see ``docs/FAULTS.md``.
"""

from .harness import (
    ReplScheduleOutcome,
    ScheduleOutcome,
    check_promotion_equivalence,
    check_recovery_equivalence,
    recovered_rows,
    run_engine_schedule,
    run_replicated_schedule,
)
from .injector import NO_FAULTS, FaultInjector, FiredFault, NullInjector
from .plan import (
    CRASH_POINTS,
    FEED_CRASH_POINTS,
    REPL_CRASH_POINTS,
    CrashSignal,
    CrashSpec,
    DeliveryFault,
    FaultPlan,
    LockFault,
    NetFault,
)
from .scheduler import DeterministicScheduler

__all__ = [
    "CRASH_POINTS",
    "CrashSignal",
    "CrashSpec",
    "DeliveryFault",
    "DeterministicScheduler",
    "FEED_CRASH_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FiredFault",
    "LockFault",
    "NetFault",
    "NO_FAULTS",
    "NullInjector",
    "REPL_CRASH_POINTS",
    "ReplScheduleOutcome",
    "ScheduleOutcome",
    "check_promotion_equivalence",
    "check_recovery_equivalence",
    "recovered_rows",
    "run_engine_schedule",
    "run_replicated_schedule",
]
