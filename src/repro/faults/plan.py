"""Fault plans: the *what* and *when* of deterministic fault injection.

A :class:`FaultPlan` is a passive description — which named crash point
fires on which hit, whether the simulated failure is a process crash or a
power loss (dropping bytes written but never fsynced), which lock acquires
are forced to time out, and how collab notification delivery misbehaves.
The :class:`~repro.faults.injector.FaultInjector` executes a plan; every
plan is derivable from a single integer seed (:meth:`FaultPlan.random`),
so any torture failure reproduces from the seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..errors import CrashSignal

__all__ = [
    "CRASH_POINTS",
    "FEED_CRASH_POINTS",
    "REPL_CRASH_POINTS",
    "CrashSignal",
    "CrashSpec",
    "DeliveryFault",
    "FaultPlan",
    "LockFault",
    "NetFault",
]

#: Every named crash point threaded through the engine.  The strings are
#: the contract between the injector and the instrumented code — tests
#: address points by these names.
CRASH_POINTS = (
    "wal.before_append",       # record never reaches memory or disk
    "wal.mid_record",          # torn write: a prefix of the JSON line lands
    "wal.after_write",         # commit record buffered, barrier never entered
    "wal.before_fsync",        # records written, the group's fsync lost
    "txn.pre_commit",          # crash before the COMMIT record is appended
    "txn.post_commit",         # COMMIT durable, in-memory apply interrupted
    "checkpoint.mid_snapshot", # crash while building the snapshot
)

#: The crash points a *follower* exercises while applying a shipped
#: stream: death halfway through a shipped transaction's row images
#: (``repl.mid_apply``), and a torn write to its own WAL mirror
#: (``wal.mid_record`` fires from ``append_shipped`` too).  Kept out of
#: ``CRASH_POINTS`` so leader-side seeded plans keep their historical
#: seed -> schedule mapping (``repl.mid_apply`` is unreachable on a
#: leader and would only dilute the leader crash-coverage floor).
REPL_CRASH_POINTS = (
    "repl.mid_apply",
    "wal.mid_record",
)

#: The changefeed's crash point: process death between a commit
#: becoming durable and a feed consumer absorbing its batch
#: (``feed.mid_dispatch`` fires immediately before each consumer
#: invocation).  A separate tuple for the same reason as
#: ``REPL_CRASH_POINTS``: folding it into ``CRASH_POINTS`` would
#: silently remap every historical seed -> schedule derivation.
FEED_CRASH_POINTS = (
    "feed.mid_dispatch",
)


@dataclass(frozen=True)
class CrashSpec:
    """Crash the process the ``hit``-th time ``point`` is reached.

    ``tear`` applies only to ``wal.mid_record``: the fraction of the
    record line that reaches the file before death.  ``power_loss``
    additionally drops every byte written since the last fsync (a process
    crash alone leaves the OS page cache intact, so flushed bytes
    survive).
    """

    point: str
    hit: int = 1
    tear: float = 0.5
    power_loss: bool = False


@dataclass(frozen=True)
class LockFault:
    """Inject a failure into the ``nth`` lock acquire.

    ``kind`` is ``"timeout"`` (raise ``LockTimeoutError`` immediately, as
    if the wait expired) or ``"delay"`` (sleep ``delay`` seconds before
    proceeding, widening race windows in threaded tests).
    """

    nth: int = 1
    kind: str = "timeout"
    delay: float = 0.001


@dataclass(frozen=True)
class DeliveryFault:
    """Misbehave notification delivery on the collab message bus.

    ``p_hold`` is the probability a notification is held back instead of
    delivered immediately; held messages sit in the bus until
    ``drain()``.  ``reorder`` shuffles the held backlog on drain, so
    replicas observe out-of-order propagation.
    """

    p_hold: float = 0.5
    reorder: bool = True


@dataclass(frozen=True)
class NetFault:
    """Misbehave the network layer's outbound change frames.

    The socket-level twin of :class:`DeliveryFault`, consulted by a
    :class:`~repro.net.server.CollabNetServer` connection's sender for
    every *faultable* frame (NOTIFY and AWARENESS — the RPC control lane
    is never faulted, as TCP would not lose acknowledged requests
    either).  ``p_drop`` loses the frame outright (the mirror heals by
    anti-entropy resync); ``p_delay`` sleeps up to ``max_delay`` seconds
    *in band*, i.e. subsequent frames on that connection queue behind
    the delay like packets behind link latency; ``reorder_window`` > 1
    buffers that many frames and releases them in a seeded shuffle;
    ``disconnect_after`` severs the connection after that many faultable
    frames have been sent (clients are expected to reconnect + resync).
    """

    p_drop: float = 0.0
    p_delay: float = 0.0
    max_delay: float = 0.05
    reorder_window: int = 0
    disconnect_after: int | None = None


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seed-reproducible fault schedule."""

    crashes: tuple[CrashSpec, ...] = ()
    lock_faults: tuple[LockFault, ...] = ()
    delivery: DeliveryFault | None = None
    net: NetFault | None = None
    seed: int | None = None

    def is_empty(self) -> bool:
        return (not self.crashes and not self.lock_faults
                and self.delivery is None and self.net is None)

    # -- constructors --------------------------------------------------------

    @classmethod
    def crash_once(cls, point: str, *, hit: int = 1, tear: float = 0.5,
                   power_loss: bool = False) -> "FaultPlan":
        """A plan with a single deterministic crash."""
        if point not in CRASH_POINTS + REPL_CRASH_POINTS \
                + FEED_CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        return cls(crashes=(CrashSpec(point, hit, tear, power_loss),))

    @classmethod
    def random(cls, seed: int, *, points: tuple[str, ...] = CRASH_POINTS,
               max_hit: int = 25, p_power_loss: float = 0.3,
               with_locks: bool = False,
               with_delivery: bool = False) -> "FaultPlan":
        """Derive a crash schedule from ``seed`` alone.

        The same seed always yields the same plan, which (driven through
        a deterministic workload) yields the same crash — the torture
        suite's reproducibility contract.
        """
        rng = random.Random(seed)
        point = points[rng.randrange(len(points))]
        # Checkpoints are rare events; a hit number drawn from the full
        # range would almost never land, starving that point of coverage.
        hit_cap = 4 if point == "checkpoint.mid_snapshot" else max_hit
        spec = CrashSpec(
            point=point,
            hit=rng.randint(1, hit_cap),
            tear=rng.uniform(0.05, 0.95),
            power_loss=rng.random() < p_power_loss,
        )
        lock_faults: tuple[LockFault, ...] = ()
        if with_locks and rng.random() < 0.5:
            lock_faults = (LockFault(
                nth=rng.randint(1, max_hit),
                kind="timeout" if rng.random() < 0.7 else "delay",
            ),)
        delivery = None
        if with_delivery:
            delivery = DeliveryFault(
                p_hold=rng.uniform(0.1, 0.7),
                reorder=rng.random() < 0.8,
            )
        return cls(crashes=(spec,), lock_faults=lock_faults,
                   delivery=delivery, seed=seed)

    @classmethod
    def delivery_only(cls, seed: int) -> "FaultPlan":
        """A plan that only perturbs notification delivery (no crashes)."""
        rng = random.Random(seed)
        return cls(
            delivery=DeliveryFault(p_hold=rng.uniform(0.2, 0.8),
                                   reorder=rng.random() < 0.9),
            seed=seed,
        )

    @classmethod
    def net_only(cls, seed: int, *, p_drop: float | None = None,
                 reorder: bool | None = None) -> "FaultPlan":
        """A plan that only perturbs the socket layer (no crashes).

        The drawn plan always delays (link latency); drop and reorder
        are drawn from the seed unless pinned by the keyword overrides.
        """
        rng = random.Random(seed)
        drawn_drop = rng.uniform(0.05, 0.3)
        drawn_reorder = rng.random() < 0.7
        return cls(
            net=NetFault(
                p_drop=drawn_drop if p_drop is None else p_drop,
                p_delay=rng.uniform(0.2, 0.6),
                max_delay=rng.uniform(0.005, 0.03),
                reorder_window=rng.randint(2, 4)
                if (drawn_reorder if reorder is None else reorder) else 0,
            ),
            seed=seed,
        )

    def with_delivery(self, fault: DeliveryFault) -> "FaultPlan":
        return replace(self, delivery=fault)

    def with_net(self, fault: NetFault) -> "FaultPlan":
        return replace(self, net=fault)
