"""Deterministic scheduler: reproducible concurrent-typist interleavings.

Thread schedulers are a source of flake; this one serialises "concurrent"
actors into a single thread and picks who runs next from a seeded RNG, so
any interleaving — including the one that breaks — replays exactly from
its seed.  Each actor step is one atomic unit of work (one editing
operation, i.e. one database transaction), which matches the engine's
serialisation point: interleaving at sub-transaction granularity cannot
produce states the lock manager doesn't already serialise.

The trace records who ran at every step; a torture failure message quotes
the seed, and the seed regenerates both the fault plan and this schedule.
"""

from __future__ import annotations

import random
from typing import Any, Callable


class DeterministicScheduler:
    """Runs named actors in a seeded, reproducible interleaving."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = random.Random(seed ^ 0x5EED5EED)
        self._actors: list[tuple[str, Callable[[], Any], int]] = []
        #: Actor name per executed step, in order.
        self.trace: list[str] = []

    def add_actor(self, name: str, step: Callable[[], Any],
                  weight: int = 1) -> None:
        """Register an actor; ``step()`` performs one atomic operation."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._actors.append((name, step, weight))

    def actors(self) -> list[str]:
        return [name for name, __, __ in self._actors]

    def step(self) -> tuple[str, Any]:
        """Pick the next actor (seeded) and run one of its steps.

        Exceptions — including the injector's ``CrashSignal`` — propagate
        to the caller with the already-recorded trace intact.
        """
        if not self._actors:
            raise RuntimeError("no actors registered")
        names = [a[0] for a in self._actors]
        weights = [a[2] for a in self._actors]
        idx = self.rng.choices(range(len(self._actors)),
                               weights=weights, k=1)[0]
        name, fn, __ = self._actors[idx]
        self.trace.append(name)
        return name, fn()

    def run(self, n_steps: int) -> list[str]:
        """Execute ``n_steps`` interleaved steps; returns the trace."""
        for __ in range(n_steps):
            self.step()
        return self.trace

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeterministicScheduler(seed={self.seed}, "
                f"actors={self.actors()}, steps={len(self.trace)})")
