"""Torture harness: seeded crash schedules + the recovery-equivalence check.

The property under test ("recovery equivalence"): for *every* crash
schedule, the database recovered from the surviving WAL file equals the
state produced by applying exactly the transactions whose COMMIT record
survived on disk — the committed prefix — to an independent, trivially
correct model (a plain dict).  The model shares no code with the engine's
staging/replay machinery, so agreement is evidence, not tautology.

:func:`run_engine_schedule` drives one seeded schedule against a
file-backed :class:`~repro.db.engine.Database` with a
:class:`~repro.faults.plan.FaultPlan` derived from the same seed;
:func:`check_recovery_equivalence` recovers and compares.  Both are used
by ``tests/test_crash_torture.py`` and the recovery benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..db import Database, column, recover_file
from ..db.wal import WriteAheadLog, committed_txn_ids
from ..errors import LockTimeoutError
from .injector import FaultInjector
from .plan import CrashSignal, FaultPlan

#: The torture table: a unique string key and an integer payload.
TABLE = "kv"


@dataclass
class ScheduleOutcome:
    """What one seeded crash schedule did and what must survive it."""

    seed: int
    wal_path: str
    crashed: bool
    crash_point: str | None
    #: txn id -> ops attempted, each ("put", rowid, row) or ("del", rowid, None).
    attempts: dict[int, list] = field(default_factory=dict)
    #: Ground truth: rowid -> row for every txn committed *on disk*.
    expected_rows: dict[int, dict] = field(default_factory=dict)
    committed_txns: int = 0
    checkpoints: int = 0


def run_engine_schedule(
    seed: int,
    wal_path: str,
    *,
    n_txns: int = 30,
    max_ops_per_txn: int = 4,
    checkpoint_every: int | None = 7,
    plan: FaultPlan | None = None,
) -> ScheduleOutcome:
    """Run one seeded, possibly-crashing workload against a fresh engine.

    The fault plan defaults to ``FaultPlan.random(seed)``; the workload
    RNG is derived from the same seed, so the whole schedule — every
    operation and the crash — reproduces from one integer.
    """
    plan = FaultPlan.random(seed) if plan is None else plan
    faults = FaultInjector(plan)
    db = Database("torture", wal_path=wal_path, faults=faults)
    rng = random.Random(seed * 7919 + 17)
    outcome = ScheduleOutcome(seed, wal_path, crashed=False, crash_point=None)
    live_rows: dict[int, dict] = {}   # committed state, for picking targets

    try:
        db.create_table(
            TABLE,
            [column("k", "str"), column("v", "int")],
            key="k",
        )
        for t in range(n_txns):
            if checkpoint_every and t and t % checkpoint_every == 0:
                db.checkpoint()
                outcome.checkpoints += 1
            txn = db.begin()
            ops: list = []
            outcome.attempts[txn.txn_id] = ops
            touched: set[int] = set()
            try:
                for j in range(rng.randint(1, max_ops_per_txn)):
                    candidates = [r for r in live_rows if r not in touched]
                    kind = rng.choices(
                        ("insert", "update", "delete"),
                        weights=(5, 3 if candidates else 0,
                                 2 if candidates else 0),
                    )[0]
                    if kind == "insert":
                        row = {"k": f"s{seed}-t{t}-o{j}",
                               "v": rng.randrange(1000)}
                        rowid = txn.insert(TABLE, row)
                        ops.append(("put", rowid, row))
                    elif kind == "update":
                        rowid = rng.choice(candidates)
                        row = dict(live_rows[rowid], v=rng.randrange(1000))
                        txn.update(TABLE, rowid, {"v": row["v"]})
                        ops.append(("put", rowid, row))
                    else:
                        rowid = rng.choice(candidates)
                        txn.delete(TABLE, rowid)
                        ops.append(("del", rowid, None))
                    touched.add(rowid)
                txn.commit()
            except LockTimeoutError:
                # An injected lock fault chose this txn as a casualty:
                # roll it back and carry on — recovery must then treat it
                # exactly like any other uncommitted transaction.
                if txn.is_active:
                    txn.abort()
                continue
            # commit() returned: the txn is durably on disk — fold it into
            # the committed model future ops pick their targets from.
            for op, rowid, row in ops:
                if op == "put":
                    live_rows[rowid] = row
                else:
                    live_rows.pop(rowid, None)
    except CrashSignal:
        outcome.crashed = True
        outcome.crash_point = faults.crash_point_fired
    else:
        db.close()

    # Ground truth from the *surviving* file: a txn counts as committed
    # iff its COMMIT record made it to disk (torn/unsynced tails did not).
    records = WriteAheadLog.load_file(wal_path)
    committed = committed_txn_ids(records)
    outcome.committed_txns = len(committed)
    for txn_id in sorted(outcome.attempts):    # single-threaded: id order
        if txn_id not in committed:
            continue
        for op, rowid, row in outcome.attempts[txn_id]:
            if op == "put":
                outcome.expected_rows[rowid] = row
            else:
                outcome.expected_rows.pop(rowid, None)
    return outcome


def recovered_rows(db: Database) -> dict[int, dict]:
    """The torture table's committed rows of a recovered engine."""
    if not db.has_table(TABLE):
        return {}
    table = db.table(TABLE)
    return {rowid: table.schema.row_dict(row)
            for rowid, row in table.committed_items()}


def check_recovery_equivalence(outcome: ScheduleOutcome) -> Database:
    """Recover the schedule's WAL file and assert equivalence.

    Returns the recovered database (so callers can pile on more checks).
    Assertion messages always carry the seed — the reproduction handle.
    """
    recovered = recover_file(outcome.wal_path)
    got = recovered_rows(recovered)
    assert got == outcome.expected_rows, (
        f"recovery-equivalence violated for seed {outcome.seed} "
        f"(crash_point={outcome.crash_point}, "
        f"committed={outcome.committed_txns}, "
        f"checkpoints={outcome.checkpoints}): recovered "
        f"{len(got)} rows != expected {len(outcome.expected_rows)}; "
        f"reproduce with run_engine_schedule({outcome.seed}, ...)"
    )
    return recovered


# ---------------------------------------------------------------------------
# Replicated schedules: leader torture + follower tailing + promotion
# ---------------------------------------------------------------------------

@dataclass
class ReplScheduleOutcome:
    """One replicated crash schedule: who died where, what must match."""

    seed: int
    leader: ScheduleOutcome
    follower_wal: str
    #: Follower deaths while tailing (CrashSignal from its fault plan);
    #: each one was followed by a restart-and-resume from its own file.
    follower_crashes: int = 0
    follower_crash_points: list = field(default_factory=list)
    promoted_lsn: int = 0


def run_replicated_schedule(
    seed: int,
    leader_wal: str,
    follower_wal: str,
    *,
    n_txns: int = 30,
    max_ops_per_txn: int = 4,
    checkpoint_every: int | None = 7,
    leader_plan: FaultPlan | None = None,
    follower_plan: FaultPlan | None = None,
    max_follower_restarts: int = 10,
):
    """Torture a leader, tail its surviving WAL into a follower, promote.

    The leader runs :func:`run_engine_schedule` under its (seed-derived)
    crash plan — covering death mid-group-commit, torn records, power
    loss.  A follower with its *own* seed-derived plan (over
    :data:`~repro.faults.plan.REPL_CRASH_POINTS`) then tails the
    leader's surviving file — exactly the prefix leader recovery reads.
    Every follower death is answered by a restart over the follower's
    own mirror (resume-from-last-applied-LSN) with the same injector, so
    hit counters carry across restarts and the schedule stays
    deterministic.  When the stream is drained the follower is promoted.

    Returns ``(outcome, promoted)`` where ``promoted`` is the follower's
    now-writable :class:`~repro.db.engine.Database` (caller closes it).
    """
    from ..repl import FollowerEngine, WalFileTailer
    from .plan import REPL_CRASH_POINTS

    leader = run_engine_schedule(
        seed, leader_wal, n_txns=n_txns,
        max_ops_per_txn=max_ops_per_txn,
        checkpoint_every=checkpoint_every, plan=leader_plan)
    if follower_plan is None:
        follower_plan = FaultPlan.random(seed * 31 + 7,
                                         points=REPL_CRASH_POINTS)
    faults = FaultInjector(follower_plan)
    outcome = ReplScheduleOutcome(seed, leader, follower_wal)
    follower = FollowerEngine(follower_wal, node="torture-replica",
                              faults=faults)
    for _ in range(max_follower_restarts + 1):
        tailer = WalFileTailer(leader_wal, follower)
        try:
            tailer.drain()
            break
        except CrashSignal:
            outcome.follower_crashes += 1
            outcome.follower_crash_points.append(faults.crash_point_fired)
            # Restart over the follower's own (possibly torn) mirror;
            # the injector's hit counters persist, so the fired crash
            # does not re-fire on the re-applied suffix.
            follower = FollowerEngine(follower_wal,
                                      node="torture-replica",
                                      faults=faults)
    else:  # pragma: no cover - a runaway plan, not a real schedule
        raise AssertionError(
            f"seed {seed}: follower still crashing after "
            f"{max_follower_restarts} restarts")
    promoted = follower.promote()
    outcome.promoted_lsn = follower.applied_lsn
    return outcome, promoted


def check_promotion_equivalence(outcome: ReplScheduleOutcome,
                                promoted: Database) -> None:
    """Promoted-follower state must equal a freshly recovered leader.

    The acceptance property of WAL shipping: across any seeded crash
    schedule (leader and follower plans combined), the database a
    promoted follower serves equals the one leader recovery would have
    rebuilt — before *and* after collapsing the follower's MVCC version
    chains, so the equivalence is about durable state, not about how
    many historical versions each side happens to carry.
    """
    recovered = check_recovery_equivalence(outcome.leader)
    try:
        detail = (
            f"seed {outcome.seed} (leader crash_point="
            f"{outcome.leader.crash_point}, follower crashes="
            f"{outcome.follower_crashes} at "
            f"{outcome.follower_crash_points}, promoted_lsn="
            f"{outcome.promoted_lsn}); reproduce with "
            f"run_replicated_schedule({outcome.seed}, ...)")
        got = recovered_rows(promoted)
        assert got == outcome.leader.expected_rows, (
            f"promotion-equivalence violated for {detail}: promoted "
            f"follower has {len(got)} rows != expected "
            f"{len(outcome.leader.expected_rows)}")
        promoted.gc_versions()
        collapsed = recovered_rows(promoted)
        assert collapsed == outcome.leader.expected_rows, (
            f"promotion-equivalence violated after version-chain GC "
            f"for {detail}")
        assert promoted.wal.last_lsn() >= recovered.wal.last_lsn(), (
            f"promoted follower's log ends before the recovered "
            f"leader's for {detail}")
    finally:
        recovered.close()
