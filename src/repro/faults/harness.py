"""Torture harness: seeded crash schedules + the recovery-equivalence check.

The property under test ("recovery equivalence"): for *every* crash
schedule, the database recovered from the surviving WAL file equals the
state produced by applying exactly the transactions whose COMMIT record
survived on disk — the committed prefix — to an independent, trivially
correct model (a plain dict).  The model shares no code with the engine's
staging/replay machinery, so agreement is evidence, not tautology.

:func:`run_engine_schedule` drives one seeded schedule against a
file-backed :class:`~repro.db.engine.Database` with a
:class:`~repro.faults.plan.FaultPlan` derived from the same seed;
:func:`check_recovery_equivalence` recovers and compares.  Both are used
by ``tests/test_crash_torture.py`` and the recovery benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..db import Database, column, recover_file
from ..db.wal import WriteAheadLog, committed_txn_ids
from ..errors import LockTimeoutError
from .injector import FaultInjector
from .plan import CrashSignal, FaultPlan

#: The torture table: a unique string key and an integer payload.
TABLE = "kv"


@dataclass
class ScheduleOutcome:
    """What one seeded crash schedule did and what must survive it."""

    seed: int
    wal_path: str
    crashed: bool
    crash_point: str | None
    #: txn id -> ops attempted, each ("put", rowid, row) or ("del", rowid, None).
    attempts: dict[int, list] = field(default_factory=dict)
    #: Ground truth: rowid -> row for every txn committed *on disk*.
    expected_rows: dict[int, dict] = field(default_factory=dict)
    committed_txns: int = 0
    checkpoints: int = 0


def run_engine_schedule(
    seed: int,
    wal_path: str,
    *,
    n_txns: int = 30,
    max_ops_per_txn: int = 4,
    checkpoint_every: int | None = 7,
    plan: FaultPlan | None = None,
) -> ScheduleOutcome:
    """Run one seeded, possibly-crashing workload against a fresh engine.

    The fault plan defaults to ``FaultPlan.random(seed)``; the workload
    RNG is derived from the same seed, so the whole schedule — every
    operation and the crash — reproduces from one integer.
    """
    plan = FaultPlan.random(seed) if plan is None else plan
    faults = FaultInjector(plan)
    db = Database("torture", wal_path=wal_path, faults=faults)
    rng = random.Random(seed * 7919 + 17)
    outcome = ScheduleOutcome(seed, wal_path, crashed=False, crash_point=None)
    live_rows: dict[int, dict] = {}   # committed state, for picking targets

    try:
        db.create_table(
            TABLE,
            [column("k", "str"), column("v", "int")],
            key="k",
        )
        for t in range(n_txns):
            if checkpoint_every and t and t % checkpoint_every == 0:
                db.checkpoint()
                outcome.checkpoints += 1
            txn = db.begin()
            ops: list = []
            outcome.attempts[txn.txn_id] = ops
            touched: set[int] = set()
            try:
                for j in range(rng.randint(1, max_ops_per_txn)):
                    candidates = [r for r in live_rows if r not in touched]
                    kind = rng.choices(
                        ("insert", "update", "delete"),
                        weights=(5, 3 if candidates else 0,
                                 2 if candidates else 0),
                    )[0]
                    if kind == "insert":
                        row = {"k": f"s{seed}-t{t}-o{j}",
                               "v": rng.randrange(1000)}
                        rowid = txn.insert(TABLE, row)
                        ops.append(("put", rowid, row))
                    elif kind == "update":
                        rowid = rng.choice(candidates)
                        row = dict(live_rows[rowid], v=rng.randrange(1000))
                        txn.update(TABLE, rowid, {"v": row["v"]})
                        ops.append(("put", rowid, row))
                    else:
                        rowid = rng.choice(candidates)
                        txn.delete(TABLE, rowid)
                        ops.append(("del", rowid, None))
                    touched.add(rowid)
                txn.commit()
            except LockTimeoutError:
                # An injected lock fault chose this txn as a casualty:
                # roll it back and carry on — recovery must then treat it
                # exactly like any other uncommitted transaction.
                if txn.is_active:
                    txn.abort()
                continue
            # commit() returned: the txn is durably on disk — fold it into
            # the committed model future ops pick their targets from.
            for op, rowid, row in ops:
                if op == "put":
                    live_rows[rowid] = row
                else:
                    live_rows.pop(rowid, None)
    except CrashSignal:
        outcome.crashed = True
        outcome.crash_point = faults.crash_point_fired
    else:
        db.close()

    # Ground truth from the *surviving* file: a txn counts as committed
    # iff its COMMIT record made it to disk (torn/unsynced tails did not).
    records = WriteAheadLog.load_file(wal_path)
    committed = committed_txn_ids(records)
    outcome.committed_txns = len(committed)
    for txn_id in sorted(outcome.attempts):    # single-threaded: id order
        if txn_id not in committed:
            continue
        for op, rowid, row in outcome.attempts[txn_id]:
            if op == "put":
                outcome.expected_rows[rowid] = row
            else:
                outcome.expected_rows.pop(rowid, None)
    return outcome


def recovered_rows(db: Database) -> dict[int, dict]:
    """The torture table's committed rows of a recovered engine."""
    if not db.has_table(TABLE):
        return {}
    table = db.table(TABLE)
    return {rowid: table.schema.row_dict(row)
            for rowid, row in table.committed_items()}


def check_recovery_equivalence(outcome: ScheduleOutcome) -> Database:
    """Recover the schedule's WAL file and assert equivalence.

    Returns the recovered database (so callers can pile on more checks).
    Assertion messages always carry the seed — the reproduction handle.
    """
    recovered = recover_file(outcome.wal_path)
    got = recovered_rows(recovered)
    assert got == outcome.expected_rows, (
        f"recovery-equivalence violated for seed {outcome.seed} "
        f"(crash_point={outcome.crash_point}, "
        f"committed={outcome.committed_txns}, "
        f"checkpoints={outcome.checkpoints}): recovered "
        f"{len(got)} rows != expected {len(outcome.expected_rows)}; "
        f"reproduce with run_engine_schedule({outcome.seed}, ...)"
    )
    return recovered
