"""User-defined properties at document and character level.

The paper lists "user defined properties" among both the document-level
and the character-level metadata.  Document properties live in the
``tx_documents.props`` JSON column (see
:meth:`repro.text.document.DocumentStore.set_property`); this module adds
the character-level counterpart plus typed property queries over both.
"""

from __future__ import annotations

from typing import Any

from ..db import Database, Lambda, col
from ..ids import Oid
from ..text import chars as C
from ..text import dbschema as S


class PropertyManager:
    """Set and query user-defined properties."""

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    # -- character level -----------------------------------------------------

    def set_char_property(self, char_oid: Oid, key: str, value: Any,
                          user: str) -> None:
        """Attach ``key = value`` to one character."""
        rowid, row = C.char_row(self.db, char_oid)
        props = dict(row["props"] or {})
        props[key] = value
        with self.db.transaction() as txn:
            txn.update(S.CHARS, rowid, {
                "props": props, "version": row["version"] + 1,
            })

    def get_char_property(self, char_oid: Oid, key: str,
                          default: Any = None) -> Any:
        """Read one character property with a default."""
        __, row = C.char_row(self.db, char_oid)
        return (row["props"] or {}).get(key, default)

    def chars_with_property(self, doc: Oid, key: str,
                            value: Any = None) -> list[Oid]:
        """Characters of ``doc`` carrying ``key`` (optionally = value)."""
        def has_prop(row) -> bool:
            props = row.get("props") or {}
            if key not in props:
                return False
            return value is None or props[key] == value

        rows = (self.db.query(S.CHARS)
                .where((col("doc") == doc)
                       & Lambda(has_prop, label=f"props[{key}]"))
                .run())
        return [r["char"] for r in rows]

    # -- document level --------------------------------------------------------

    def documents_with_property(self, key: str,
                                value: Any = None) -> list[Oid]:
        """Documents carrying ``key`` (optionally with a specific value)."""
        def has_prop(row) -> bool:
            props = row.get("props") or {}
            if key not in props:
                return False
            return value is None or props[key] == value

        rows = (self.db.query(S.DOCUMENTS)
                .where(Lambda(has_prop, label=f"props[{key}]"))
                .run())
        return [r["doc"] for r in rows]

    def get_document_property(self, doc: Oid, key: str,
                              default: Any = None) -> Any:
        """Read one document property with a default."""
        row = self.db.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            from ..errors import UnknownDocumentError
            raise UnknownDocumentError(f"no document {doc}")
        return (row["props"] or {}).get(key, default)
