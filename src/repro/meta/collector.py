"""Automatic metadata capture and aggregation.

§2 of the paper: "Since the document data is stored in the database, we
automatically gather meta data during the whole document creation process."
Most raw metadata already lands in the tables as a side effect of editing
(per-character author/time/copy refs, the access log, the copy log).  This
module adds:

* live in-memory *edit counters* per document, fed by commit triggers —
  cheap observability without extra writes on the keystroke path, and
* :meth:`MetadataCollector.document_profile` — the consolidated
  document-level metadata record the paper enumerates (creator, dates,
  authors, readers, state, size, copy in/out, notes, versions, places in
  folders, user-defined properties), assembled by querying the tables.

The profile is what dynamic folders, search ranking and visual mining
consume.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from ..db import Database, col
from ..ids import Oid
from ..text import dbschema as S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..feed.changefeed import CommitBatch


class MetadataCollector:
    """Aggregates creation-process metadata for all documents in a DB."""

    #: Feed consumer name (also the durable cursor key).
    CONSUMER = "meta-collector"

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)
        #: doc -> counters maintained live from commits.
        self._counters: dict[Oid, dict[str, int]] = defaultdict(
            lambda: {"inserts": 0, "deletes": 0, "style_changes": 0,
                     "purged_chars": 0, "commits": 0}
        )
        self._sub = db.changefeed().subscribe(
            self.CONSUMER, self._on_batch, tables=(S.CHARS,))

    def close(self) -> None:
        """Stop maintaining the live counters."""
        self._sub.close()

    # ------------------------------------------------------------------
    # Live counters
    # ------------------------------------------------------------------

    def _on_batch(self, batch: "CommitBatch") -> None:
        docs_touched = set()
        for event in batch.events:
            row = event.row if event.row is not None else event.before
            if row is None or not row.get("ch"):
                continue
            counters = self._counters[row["doc"]]
            docs_touched.add(row["doc"])
            if event.kind == "insert":
                counters["inserts"] += 1
            elif event.kind == "update":
                if row["deleted"]:
                    counters["deletes"] += 1
                elif row["style"] is not None:
                    counters["style_changes"] += 1
            else:
                # Physical removal (document purge / archival): the
                # before-image is the only witness the row existed.
                counters["purged_chars"] += 1
        for doc in docs_touched:
            self._counters[doc]["commits"] += 1

    def edit_counters(self, doc: Oid) -> dict[str, int]:
        """Live counters for one document (zeros if never edited here)."""
        return dict(self._counters[doc])

    # ------------------------------------------------------------------
    # Character-level metadata
    # ------------------------------------------------------------------

    def author_contributions(self, doc: Oid,
                             txn=None) -> dict[str, dict[str, int]]:
        """Per author: characters written, still visible, and deleted.

        ``txn`` (here and below) optionally binds the reads to an open
        transaction — callers assembling multi-query records pass a
        snapshot so every query observes one commit point.
        """
        reader = txn if txn is not None else self.db
        rows = reader.query(S.CHARS).where(col("doc") == doc).run()
        out: dict[str, dict[str, int]] = {}
        for row in rows:
            if not row["ch"]:
                continue
            entry = out.setdefault(row["author"],
                                   {"written": 0, "visible": 0, "deleted": 0})
            entry["written"] += 1
            if row["deleted"]:
                entry["deleted"] += 1
            else:
                entry["visible"] += 1
        return out

    def char_provenance(self, doc: Oid, txn=None) -> dict[str, int]:
        """How the document's visible characters came to be.

        Returns counts: ``typed``, ``pasted_internal``, ``pasted_external``.
        """
        reader = txn if txn is not None else self.db
        rows = reader.query(S.CHARS).where(col("doc") == doc).run()
        ops = {r["op"]: r for r in
               reader.query(S.COPYLOG).where(col("dst_doc") == doc).run()}
        counts = {"typed": 0, "pasted_internal": 0, "pasted_external": 0}
        for row in rows:
            if not row["ch"] or row["deleted"]:
                continue
            if row["copy_op"] is None:
                counts["typed"] += 1
            else:
                op = ops.get(row["copy_op"])
                if op is not None and op["external_source"] is not None:
                    counts["pasted_external"] += 1
                else:
                    counts["pasted_internal"] += 1
        return counts

    # ------------------------------------------------------------------
    # Access metadata
    # ------------------------------------------------------------------

    def readers_of(self, doc: Oid, *, since: float | None = None,
                   txn=None) -> set[str]:
        """Users who opened the document (optionally only since a time)."""
        reader = txn if txn is not None else self.db
        query = reader.query(S.ACCESS_LOG).where(
            (col("doc") == doc) & (col("action") == "read"))
        if since is not None:
            query = query.where(col("at") >= since)
        return {r["user"] for r in query.run()}

    def writers_of(self, doc: Oid, *, since: float | None = None,
                   txn=None) -> set[str]:
        """Users who edited the document (optionally since a time)."""
        reader = txn if txn is not None else self.db
        query = reader.query(S.ACCESS_LOG).where(
            (col("doc") == doc) & (col("action") == "write"))
        if since is not None:
            query = query.where(col("at") >= since)
        return {r["user"] for r in query.run()}

    def documents_touched_by(self, user: str, *, action: str | None = None,
                             since: float | None = None) -> set[Oid]:
        """Documents a user created/read/wrote, optionally since a time."""
        query = self.db.query(S.ACCESS_LOG).where(col("user") == user)
        if action is not None:
            query = query.where(col("action") == action)
        if since is not None:
            query = query.where(col("at") >= since)
        return {r["doc"] for r in query.run()}

    def user_activity(self, user: str) -> dict:
        """Summary of one user's footprint across the document space."""
        rows = self.db.query(S.ACCESS_LOG).where(col("user") == user).run()
        by_action: dict[str, set] = defaultdict(set)
        last_seen = 0.0
        for row in rows:
            by_action[row["action"]].add(row["doc"])
            last_seen = max(last_seen, row["at"])
        return {
            "user": user,
            "created": len(by_action["create"]),
            "read": len(by_action["read"]),
            "edited": len(by_action["write"]),
            "last_seen": last_seen,
        }

    # ------------------------------------------------------------------
    # Copy/citation metadata
    # ------------------------------------------------------------------

    def citation_counts(self) -> dict[Oid, int]:
        """doc -> number of copy operations taking content *from* it.

        This is the "most cited" signal the search demo ranks by.
        """
        counts: dict[Oid, int] = defaultdict(int)
        for row in self.db.query(S.COPYLOG).run():
            src = row["src_doc"]
            if src is not None and src != row["dst_doc"]:
                counts[src] += 1
        return dict(counts)

    # ------------------------------------------------------------------
    # The consolidated profile
    # ------------------------------------------------------------------

    def document_profile(self, doc: Oid, txn=None) -> dict:
        """The full document-level metadata record of §2.

        Without an explicit ``txn`` the whole profile is assembled inside
        one snapshot transaction: around ten queries feed it, and a
        commit landing between any two of them must not produce a record
        no actual database state ever matched (size from one state,
        contributions from another).
        """
        if txn is None:
            with self.db.snapshot() as snap:
                return self.document_profile(doc, txn=snap)
        meta_row = txn.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if meta_row is None:
            from ..errors import UnknownDocumentError
            raise UnknownDocumentError(f"no document {doc}")
        contributions = self.author_contributions(doc, txn=txn)
        copies_in = txn.query(S.COPYLOG).where(
            col("dst_doc") == doc).count()
        copies_out = txn.query(S.COPYLOG).where(
            col("src_doc") == doc).count()
        notes = txn.query(S.NOTES).where(col("doc") == doc).count()
        versions = txn.query(S.VERSIONS).where(col("doc") == doc).count()
        return {
            "doc": doc,
            "name": meta_row["name"],
            "creator": meta_row["creator"],
            "created_at": meta_row["created_at"],
            "last_modified": meta_row["last_modified"],
            "last_modified_by": meta_row["last_modified_by"],
            "state": meta_row["state"],
            "size": meta_row["size"],
            "template": meta_row["template"],
            "props": dict(meta_row["props"] or {}),
            "authors": sorted(contributions),
            "contributions": contributions,
            "readers": sorted(self.readers_of(doc, txn=txn)),
            "copies_in": copies_in,
            "copies_out": copies_out,
            "notes": notes,
            "versions": versions,
            "provenance": self.char_provenance(doc, txn=txn),
            "edit_counters": self.edit_counters(doc),
        }
