"""Automatic metadata capture and user-defined properties."""

from .collector import MetadataCollector
from .properties import PropertyManager

__all__ = ["MetadataCollector", "PropertyManager"]
