"""Editing operations and their undo records.

Every action a TeNDaX editor performs — typing, deleting, pasting, layout,
structure changes — is expressed as an :class:`Operation`.  Applying an
operation through a session (a) enforces security, (b) runs the underlying
database transaction(s), and (c) yields an :class:`UndoRecord` that knows
how to invert itself — the raw material for the paper's local *and* global
undo/redo.

Operations are anchored at character OIDs, never at offsets, so an
operation prepared by one editor stays valid no matter what other editors
commit in the meantime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..ids import Oid
from ..text.document import DocumentHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


@dataclass
class UndoRecord:
    """How to invert one applied operation.

    ``kind`` is the operation type; ``oids`` the characters involved;
    ``prior_styles`` (style ops only) maps char OID -> previous style OID.
    """

    #: "insert" | "delete" | "style" | "object_insert" | "object_delete"
    kind: str
    doc: Oid
    user: str
    oids: tuple[Oid, ...]
    prior_styles: dict = field(default_factory=dict)
    new_style: Oid | None = None
    undone: bool = False

    def invert(self, handle: DocumentHandle, user: str) -> None:
        """Apply the inverse of the recorded operation."""
        if self.kind == "insert":
            handle.delete_chars(list(self.oids), user)
        elif self.kind == "delete":
            handle.undelete_chars(list(self.oids), user)
        elif self.kind == "style":
            for oid, style in self.prior_styles.items():
                handle.style_chars([oid], style, user)
        elif self.kind == "object_insert":
            self._objects(handle).delete_object(self.oids[0], user)
        elif self.kind == "object_delete":
            self._objects(handle).restore_object(self.oids[0], user)
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot invert {self.kind!r}")

    def reapply(self, handle: DocumentHandle, user: str) -> None:
        """Redo the recorded operation after an undo."""
        if self.kind == "insert":
            handle.undelete_chars(list(self.oids), user)
        elif self.kind == "delete":
            handle.delete_chars(list(self.oids), user)
        elif self.kind == "style":
            handle.style_chars(list(self.oids), self.new_style, user)
        elif self.kind == "object_insert":
            self._objects(handle).restore_object(self.oids[0], user)
        elif self.kind == "object_delete":
            self._objects(handle).delete_object(self.oids[0], user)
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot reapply {self.kind!r}")

    @staticmethod
    def _objects(handle: DocumentHandle):
        from ..text.objects import ObjectManager
        return ObjectManager(handle.db)


class Operation:
    """Base class for editing operations."""

    #: Permission the acting user needs on the target document.
    required_perm = "write"

    def apply(self, handle: DocumentHandle, user: str) -> UndoRecord | None:
        """Execute against ``handle``; returns the undo record (or None)."""
        raise NotImplementedError

    def char_oids_touched(self, handle: DocumentHandle) -> Sequence[Oid]:
        """Existing characters the op modifies (for range protections)."""
        return ()


@dataclass
class InsertText(Operation):
    """Insert ``text`` after the character ``anchor``."""

    anchor: Oid
    text: str
    style: Oid | None = None
    copy_srcs: tuple = ()
    copy_op: Oid | None = None

    required_perm = "write"

    def apply(self, handle: DocumentHandle, user: str) -> UndoRecord | None:
        """Insert the text after the anchor character."""
        if not self.text:
            return None
        oids = handle.insert_after(
            self.anchor, self.text, user, style=self.style,
            copy_srcs=self.copy_srcs or None, copy_op=self.copy_op,
        )
        return UndoRecord("insert", handle.doc, user, tuple(oids))

    def char_oids_touched(self, handle: DocumentHandle) -> Sequence[Oid]:
        # Inserting *between* protected characters is allowed; only the
        # characters themselves are guarded.
        """Inserts touch no existing characters."""
        return ()


@dataclass
class DeleteChars(Operation):
    """Logically delete the given characters."""

    oids: tuple

    required_perm = "write"

    def apply(self, handle: DocumentHandle, user: str) -> UndoRecord | None:
        """Logically delete the targeted characters."""
        if not self.oids:
            return None
        handle.delete_chars(list(self.oids), user)
        return UndoRecord("delete", handle.doc, user, tuple(self.oids))

    def char_oids_touched(self, handle: DocumentHandle) -> Sequence[Oid]:
        """The characters being deleted (range-guard input)."""
        return self.oids


@dataclass
class ApplyStyle(Operation):
    """Point the given characters at a style (collaborative layout)."""

    oids: tuple
    style: Oid | None

    required_perm = "layout"

    def apply(self, handle: DocumentHandle, user: str) -> UndoRecord | None:
        """Restyle the characters, remembering their prior styles."""
        if not self.oids:
            return None
        prior: dict[Oid, Oid | None] = {}
        from ..text import chars as C
        for oid in self.oids:
            __, row = C.char_row(handle.db, oid)
            prior[oid] = row["style"]
        handle.style_chars(list(self.oids), self.style, user)
        return UndoRecord("style", handle.doc, user, tuple(self.oids),
                          prior_styles=prior, new_style=self.style)

    def char_oids_touched(self, handle: DocumentHandle) -> Sequence[Oid]:
        """The characters being restyled (range-guard input)."""
        return self.oids
