"""The headless editor client.

This replaces the paper's GUI editors (Windows XP / Linux / Mac OS X in the
demo) with a scriptable client exercising the *same* server-side paths:
every keypress below turns into the same database transactions the real
editors issued.  The client keeps a cursor and a selection — both anchored
at character OIDs, so they stay meaningful under concurrent remote edits —
and can render the document (plain or ANSI-styled, with participant
cursors) for demo output.
"""

from __future__ import annotations

from ..errors import ClipboardError, InvalidPositionError
from ..ids import Oid
from ..text.document import DocumentHandle
from .awareness import resolve_anchor_position
from .session import EditingSession


class EditorClient:
    """A scriptable editor bound to one session and one open document."""

    def __init__(self, session: EditingSession, doc: Oid) -> None:
        self.session = session
        self.doc = doc
        self.handle: DocumentHandle = session.open(doc)
        #: Cursor sits *after* this character (BEGIN sentinel = position 0).
        self._cursor_anchor: Oid = self.handle.begin_char
        #: Selected character OIDs, in document order.
        self._selection: tuple[Oid, ...] = ()

    # ------------------------------------------------------------------
    # Cursor and selection
    # ------------------------------------------------------------------

    @property
    def user(self) -> str:
        return self.session.user

    @property
    def os_name(self) -> str:
        return self.session.os_name

    def cursor(self) -> int:
        """Current cursor position (resolved against live state)."""
        return resolve_anchor_position(self.handle, self._cursor_anchor)

    def move_to(self, pos: int, *, keep_selection: bool = False) -> int:
        """Place the cursor at ``pos``; returns the position.

        Moving the cursor drops the selection (as editors do) unless
        ``keep_selection`` is set.
        """
        if pos < 0 or pos > self.handle.length():
            raise InvalidPositionError(
                f"cursor position {pos} outside document"
            )
        self._cursor_anchor = self.handle.anchor_for(pos)
        if not keep_selection:
            self._selection = ()
        self._publish_cursor()
        return pos

    def move_home(self) -> int:
        """Cursor to the start of the document."""
        return self.move_to(0)

    def move_end(self) -> int:
        """Cursor past the last character."""
        return self.move_to(self.handle.length())

    def move_left(self, n: int = 1) -> int:
        """Cursor ``n`` positions left (clamped at 0)."""
        return self.move_to(max(0, self.cursor() - n))

    def move_right(self, n: int = 1) -> int:
        """Cursor ``n`` positions right (clamped at the end)."""
        return self.move_to(min(self.handle.length(), self.cursor() + n))

    def select(self, pos: int, count: int) -> str:
        """Select ``count`` characters at ``pos``; returns the text."""
        oids = self.handle.char_oids_range(pos, count)
        if len(oids) != count:
            raise InvalidPositionError("selection outside document")
        self._selection = tuple(oids)
        self.move_to(pos + count, keep_selection=True)
        return self.selected_text()

    def clear_selection(self) -> None:
        """Drop the selection, keeping the cursor."""
        self._selection = ()
        self._publish_cursor()

    def selection(self) -> tuple[Oid, ...]:
        """Selected characters that still exist (remote deletes shrink it)."""
        present = [oid for oid in self._selection
                   if self.handle.position_of(oid) is not None]
        return tuple(present)

    def selected_text(self) -> str:
        """The text of the (still-visible) selection."""
        return self.handle.text_of(self.selection())

    def _publish_cursor(self) -> None:
        self.session.server.awareness.update_cursor(
            self.doc, self.session.id, self._cursor_anchor,
            self.selection(), self.session.server.db.now(),
        )

    # ------------------------------------------------------------------
    # Typing
    # ------------------------------------------------------------------

    def batch(self):
        """Typing-burst batching: coalesce the edits made inside into
        one transaction (see :meth:`EditingSession.batch`).  A burst of
        ``type()`` calls — or a replace (selection delete + insert) —
        then costs one commit record and one grouped fsync instead of
        one per keystroke.
        """
        return self.session.batch()

    def type(self, text: str, *, style: Oid | None = None) -> list[Oid]:
        """Type ``text`` at the cursor (replacing any selection)."""
        if self._selection:
            self.delete_selection()
        oids = self.session.insert_after(
            self.doc, self._cursor_anchor, text, style=style,
        )
        if oids:
            self._cursor_anchor = oids[-1]
        self._publish_cursor()
        return oids

    def backspace(self, n: int = 1) -> int:
        """Delete ``n`` characters before the cursor; returns how many."""
        pos = self.cursor()
        n = min(n, pos)
        if n == 0:
            return 0
        self.session.delete(self.doc, pos - n, n)
        self.move_to(pos - n)
        return n

    def delete_forward(self, n: int = 1) -> int:
        """Delete ``n`` characters after the cursor."""
        pos = self.cursor()
        n = min(n, self.handle.length() - pos)
        if n == 0:
            return 0
        self.session.delete(self.doc, pos, n)
        self._publish_cursor()
        return n

    def delete_selection(self) -> int:
        """Delete the selected characters."""
        oids = self.selection()
        if not oids:
            return 0
        self.session.delete_chars(self.doc, list(oids))
        self._selection = ()
        self._publish_cursor()
        return len(oids)

    # ------------------------------------------------------------------
    # Clipboard
    # ------------------------------------------------------------------

    def copy(self) -> str:
        """Copy the selection to the session clipboard."""
        oids = self.selection()
        if not oids:
            raise ClipboardError("nothing selected")
        pos = self.handle.position_of(oids[0])
        return self.session.copy(self.doc, pos, len(oids))

    def cut(self) -> str:
        """Copy the selection, then delete it."""
        text = self.copy()
        self.delete_selection()
        return text

    def paste(self) -> list[Oid]:
        """Paste at the cursor (with lineage capture)."""
        if self._selection:
            self.delete_selection()
        pos = self.cursor()
        oids = self.session.paste(self.doc, pos)
        if oids:
            self._cursor_anchor = oids[-1]
        self._publish_cursor()
        return oids

    # ------------------------------------------------------------------
    # Layout, undo
    # ------------------------------------------------------------------

    def style_selection(self, style: Oid | None) -> None:
        """Apply a style to the selection (kept selected)."""
        oids = self.selection()
        if oids:
            self.session.style_chars(self.doc, list(oids), style)

    def undo(self) -> None:
        """Local undo: revert this user's last operation."""
        self.session.undo(self.doc)

    def redo(self) -> None:
        """Local redo of this user's last undone operation."""
        self.session.redo(self.doc)

    def undo_global(self) -> None:
        """Global undo: revert the last operation by anyone."""
        self.session.undo_global(self.doc)

    def redo_global(self) -> None:
        """Global redo of the last globally undone operation."""
        self.session.redo_global(self.doc)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def text(self) -> str:
        """The document's current visible text."""
        return self.handle.text()

    def render(self, *, show_cursors: bool = False, ansi: bool = False) -> str:
        """Render the document, optionally with everyone's cursors.

        Cursors render as ``|user|`` markers at their current positions
        (the awareness view the demo shows).
        """
        if ansi:
            from ..text.layout import render_ansi
            base = render_ansi(self.handle, self.session.server.styles)
            if not show_cursors:
                return base
        text = self.text()
        if not show_cursors:
            return text
        positions = self.session.server.awareness.cursor_positions(
            self.handle
        )
        markers = sorted(positions.items(), key=lambda kv: kv[1],
                         reverse=True)
        for user, pos in markers:
            text = text[:pos] + f"|{user}|" + text[pos:]
        return text

    def close(self) -> None:
        """Close the underlying document handle and leave awareness."""
        self.session.close(self.doc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"EditorClient(user={self.user!r}, os={self.os_name!r}, "
                f"doc={self.doc})")
