"""Collaborative real-time editing: server, sessions, editors, undo."""

from .awareness import AwarenessRegistry, CursorState, resolve_anchor_position
from .bus import DeliveryBus
from .clipboard import Clipboard, ClipboardContent
from .editor import EditorClient
from .operations import ApplyStyle, DeleteChars, InsertText, Operation, UndoRecord
from .server import CollaborationServer
from .session import EditingSession, Notification
from .undo import UndoManager

__all__ = [
    "ApplyStyle",
    "AwarenessRegistry",
    "Clipboard",
    "ClipboardContent",
    "CollaborationServer",
    "CursorState",
    "DeleteChars",
    "DeliveryBus",
    "EditingSession",
    "EditorClient",
    "InsertText",
    "Notification",
    "Operation",
    "UndoManager",
    "UndoRecord",
    "resolve_anchor_position",
]
