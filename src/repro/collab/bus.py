"""Notification delivery: the collab layer's simulated network.

The paper's editors sit on different machines; here "the network" is the
hop between a database commit and each session's inbox.  By default that
hop is instantaneous, exactly as before.  With a
:class:`~repro.faults.plan.DeliveryFault` in the server's fault plan, the
:class:`DeliveryBus` holds a seeded fraction of notifications back and
releases the backlog — optionally out of order — on :meth:`drain`,
simulating delayed and reordered propagation.  The torture suite's
convergence property is stated against this bus: once delivery drains,
every replica must agree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector
    from .session import EditingSession, Notification


class DeliveryBus:
    """Routes notifications to session inboxes, with injectable faults."""

    def __init__(self, faults: "FaultInjector | None" = None) -> None:
        from ..faults.injector import NO_FAULTS
        self.faults = faults if faults is not None else NO_FAULTS
        self._pending: list[tuple["EditingSession", "Notification"]] = []
        self.stats = {"delivered": 0, "held": 0, "drains": 0}

    def send(self, session: "EditingSession",
             notification: "Notification") -> bool:
        """Deliver now, or hold per the fault plan.  True if delivered."""
        if self.faults.delivery_action() == "hold":
            self._pending.append((session, notification))
            self.stats["held"] += 1
            return False
        self._deliver(session, notification)
        return True

    def drain(self) -> int:
        """Deliver every held notification; returns how many.

        The fault plan chooses the release order, so replicas can observe
        out-of-order propagation — but never loss: drain always empties
        the backlog (the convergence property's precondition).
        """
        pending, self._pending = self._pending, []
        for index in self.faults.drain_order(len(pending)):
            self._deliver(*pending[index])
        self.stats["drains"] += 1
        return len(pending)

    @property
    def pending(self) -> int:
        """Held notifications not yet delivered."""
        return len(self._pending)

    def _deliver(self, session: "EditingSession",
                 notification: "Notification") -> None:
        # Dropping a notification for a session that disconnected while
        # it was in flight mirrors a network send to a closed socket.
        if session.connected:
            session._notify(notification)
        self.stats["delivered"] += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeliveryBus(pending={self.pending}, "
                f"delivered={self.stats['delivered']})")
