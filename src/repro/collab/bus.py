"""Notification delivery: the collab layer's simulated network.

The paper's editors sit on different machines; here "the network" is the
hop between a database commit and each session's inbox.  By default that
hop is instantaneous, exactly as before.  With a
:class:`~repro.faults.plan.DeliveryFault` in the server's fault plan, the
:class:`DeliveryBus` holds a seeded fraction of notifications back and
releases the backlog — optionally out of order — on :meth:`drain`,
simulating delayed and reordered propagation.  The torture suite's
convergence property is stated against this bus: once delivery drains,
every replica must agree.

Delivery is also where the paper's *real-time* claim is measured: every
notification handed to a session observes the end-to-end
``collab.replication_seconds`` histogram (keystroke start, carried on
the envelope, to inbox arrival — held time included), and each delivery
opens a ``collab.deliver`` span whose parent is the originating
keystroke's dispatch span (resumed from the envelope's trace context,
so the causal chain survives holds, reordering and cross-thread drains).
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import TYPE_CHECKING

from ..obs.metrics import NULL_REGISTRY
from ..obs.tracing import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector
    from .session import EditingSession, Notification


class DeliveryBus:
    """Routes notifications to session inboxes, with injectable faults.

    The backlog *list* is guarded by a lock: sessions may commit from
    multiple threads, and a racy ``list.append`` against a concurrent
    :meth:`drain` could drop a held notification — which would break
    the convergence property the torture suite asserts.  The counters
    need no such guard: they live in the (thread-safe) metrics
    registry, and :attr:`stats` just reads them back out.
    """

    def __init__(self, faults: "FaultInjector | None" = None,
                 registry=None, tracer=None) -> None:
        from ..faults.injector import NO_FAULTS
        self.faults = faults if faults is not None else NO_FAULTS
        #: (session, notification, held_at perf_counter stamp).
        self._pending: list[tuple["EditingSession", "Notification",
                                  float]] = []
        self._lock = threading.Lock()
        reg = registry if registry is not None else NULL_REGISTRY
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._m_delivered = reg.counter("collab.deliveries")
        self._m_held = reg.counter("collab.held")
        self._m_drains = reg.counter("collab.drains")
        self._m_depth = reg.gauge("collab.queue_depth")
        self._m_replication = reg.histogram("collab.replication_seconds")
        self._m_held_seconds = reg.histogram("collab.held_seconds")

    @property
    def stats(self) -> dict:
        """Delivery counts in the historical dict shape, read from the
        metrics registry (the registry is the single source of truth;
        the bus keeps no counters of its own)."""
        return {
            "delivered": self._m_delivered.value,
            "held": self._m_held.value,
            "drains": self._m_drains.value,
        }

    def send(self, session: "EditingSession",
             notification: "Notification") -> bool:
        """Deliver now, or hold per the fault plan.  True if delivered."""
        if self.faults.delivery_action() == "hold":
            with self._lock:
                self._pending.append((session, notification,
                                      perf_counter()))
                self._m_held.inc()
                self._m_depth.set(len(self._pending))
            return False
        self._deliver(session, notification)
        return True

    def drain(self) -> int:
        """Deliver every held notification; returns how many.

        The fault plan chooses the release order, so replicas can observe
        out-of-order propagation — but never loss: drain always empties
        the backlog (the convergence property's precondition).
        """
        with self._lock:
            pending, self._pending = self._pending, []
            self._m_depth.set(0)
        for index in self.faults.drain_order(len(pending)):
            session, notification, held_at = pending[index]
            self._deliver(session, notification, held_at=held_at)
        self._m_drains.inc()
        return len(pending)

    @property
    def pending(self) -> int:
        """Held notifications not yet delivered."""
        with self._lock:
            return len(self._pending)

    def _deliver(self, session: "EditingSession",
                 notification: "Notification",
                 held_at: float | None = None) -> None:
        # The deliver span resumes the originating keystroke's trace
        # from the envelope context — explicitly, because a drain may
        # run on another thread long after the dispatch span closed.
        with self._tracer.span("collab.deliver", notification.trace_ctx,
                               session=session.id, seq=notification.seq,
                               held=held_at is not None):
            now = perf_counter()
            if held_at is not None:
                self._m_held_seconds.observe(now - held_at)
            if notification.origin_started is not None:
                self._m_replication.observe(now -
                                            notification.origin_started)
            # Dropping a notification for a session that disconnected
            # while it was in flight mirrors a network send to a closed
            # socket.
            if session.connected:
                session._notify(notification)
        self._m_delivered.inc()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeliveryBus(pending={self.pending}, "
                f"delivered={self.stats['delivered']})")
