"""Awareness: who is editing where.

TeNDaX lists "awareness" among its collaboration features: editors show
the presence, cursors and selections of everyone working on the document.
Cursors are anchored at character OIDs (a cursor sits *after* its anchor),
so remote edits never displace them incorrectly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ids import Oid
from ..text.document import DocumentHandle


@dataclass
class CursorState:
    """One participant's cursor/selection in one document."""

    user: str
    session_id: int
    anchor: Oid                      # cursor sits after this character
    selection: tuple = ()            # selected char OIDs (may be empty)
    updated_at: float = 0.0

    def position(self, handle: DocumentHandle) -> int:
        """Resolve the cursor to a current document position."""
        return resolve_anchor_position(handle, self.anchor)


def resolve_anchor_position(handle: DocumentHandle, anchor: Oid) -> int:
    """Current position of a cursor sitting after ``anchor``.

    If the anchor character has been deleted, the cursor slides left to
    the nearest surviving predecessor — the behaviour users expect when
    someone else deletes the text under their cursor.
    """
    return handle.visible_position_after(anchor)


class AwarenessRegistry:
    """Presence and cursor registry for all open documents."""

    def __init__(self) -> None:
        #: doc -> session_id -> CursorState
        self._cursors: dict[Oid, dict[int, CursorState]] = {}
        #: activity feed entries (bounded).
        self._activity: list[dict] = []
        self.activity_limit = 1000

    # -- presence -----------------------------------------------------------

    def joined(self, doc: Oid, session_id: int, user: str,
               begin_char: Oid, now: float) -> None:
        """Register a participant with a cursor at document start."""
        self._cursors.setdefault(doc, {})[session_id] = CursorState(
            user, session_id, begin_char, (), now,
        )
        self._log(now, user, doc, "joined")

    def left(self, doc: Oid, session_id: int, user: str, now: float) -> None:
        """Drop a participant's presence from a document."""
        doc_cursors = self._cursors.get(doc)
        if doc_cursors is not None:
            doc_cursors.pop(session_id, None)
            if not doc_cursors:
                del self._cursors[doc]
        self._log(now, user, doc, "left")

    def participants(self, doc: Oid) -> list[str]:
        """Users currently present in a document (sorted, unique)."""
        return sorted({
            c.user for c in self._cursors.get(doc, {}).values()
        })

    # -- cursors ---------------------------------------------------------------

    def update_cursor(self, doc: Oid, session_id: int, anchor: Oid,
                      selection: tuple, now: float) -> None:
        """Move a session's cursor/selection anchors."""
        doc_cursors = self._cursors.get(doc, {})
        state = doc_cursors.get(session_id)
        if state is not None:
            state.anchor = anchor
            state.selection = selection
            state.updated_at = now

    def cursors(self, doc: Oid) -> list[CursorState]:
        """All cursor states currently in a document."""
        return list(self._cursors.get(doc, {}).values())

    def cursor_positions(self, handle: DocumentHandle) -> dict[str, int]:
        """user -> resolved cursor position, for display."""
        return {
            state.user: state.position(handle)
            for state in self.cursors(handle.doc)
        }

    # -- activity feed ------------------------------------------------------------

    def note_activity(self, now: float, user: str, doc: Oid,
                      what: str) -> None:
        """Append an entry to the activity feed."""
        self._log(now, user, doc, what)

    def _log(self, now: float, user: str, doc: Oid, what: str) -> None:
        self._activity.append(
            {"at": now, "user": user, "doc": doc, "what": what}
        )
        if len(self._activity) > self.activity_limit:
            del self._activity[: len(self._activity) - self.activity_limit]

    def recent_activity(self, limit: int = 20) -> list[dict]:
        """The most recent activity entries, oldest first."""
        return list(self._activity[-limit:])
