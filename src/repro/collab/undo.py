"""Local and global undo/redo.

The demo shows "local and global undo- and redo operations":

* **local undo** reverts the *acting user's* most recent operation on a
  document, even if other users have edited since — possible because
  operations are recorded against character OIDs, not positions.
* **global undo** reverts the most recent operation on the document by
  *anyone* (with the authority of the user requesting it).

Undo history lives per document.  Undoing pushes the record onto the
appropriate redo stack; any fresh operation clears redo state for that
scope (the usual emacs-style linearity, applied per user for local undo).
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import UndoError
from ..ids import Oid
from ..text.document import DocumentHandle
from .operations import UndoRecord


class UndoManager:
    """Per-document undo/redo stacks with local and global scopes."""

    def __init__(self) -> None:
        #: doc -> ordered list of applied records (the operation log).
        self._history: dict[Oid, list[UndoRecord]] = defaultdict(list)
        #: (doc, user) -> redo stack of that user's undone records.
        self._redo_local: dict[tuple[Oid, str], list[UndoRecord]] = \
            defaultdict(list)
        #: doc -> redo stack for global undo.
        self._redo_global: dict[Oid, list[UndoRecord]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, record: UndoRecord) -> None:
        """Log a freshly applied operation (clears the user's redo)."""
        self._history[record.doc].append(record)
        self._redo_local[(record.doc, record.user)].clear()
        self._redo_global[record.doc].clear()

    def history(self, doc: Oid) -> list[UndoRecord]:
        """The applied-operation log (oldest first)."""
        return list(self._history[doc])

    def undo_depth(self, doc: Oid, user: str | None = None) -> int:
        """How many operations are currently undoable."""
        return sum(
            1 for r in self._history[doc]
            if not r.undone and (user is None or r.user == user)
        )

    # ------------------------------------------------------------------
    # Undo
    # ------------------------------------------------------------------

    def undo_local(self, handle: DocumentHandle, user: str) -> UndoRecord:
        """Undo ``user``'s most recent not-yet-undone operation."""
        record = self._latest(handle.doc, user)
        if record is None:
            raise UndoError(f"nothing to undo for {user!r}")
        record.invert(handle, user)
        record.undone = True
        self._redo_local[(handle.doc, user)].append(record)
        return record

    def undo_global(self, handle: DocumentHandle, user: str) -> UndoRecord:
        """Undo the most recent operation on the document by anyone."""
        record = self._latest(handle.doc, None)
        if record is None:
            raise UndoError("nothing to undo")
        record.invert(handle, user)
        record.undone = True
        self._redo_global[handle.doc].append(record)
        return record

    def _latest(self, doc: Oid, user: str | None) -> UndoRecord | None:
        for record in reversed(self._history[doc]):
            if record.undone:
                continue
            if user is None or record.user == user:
                return record
        return None

    # ------------------------------------------------------------------
    # Redo
    # ------------------------------------------------------------------

    def redo_local(self, handle: DocumentHandle, user: str) -> UndoRecord:
        """Re-apply ``user``'s most recently undone operation."""
        stack = self._redo_local[(handle.doc, user)]
        if not stack:
            raise UndoError(f"nothing to redo for {user!r}")
        record = stack.pop()
        record.reapply(handle, user)
        record.undone = False
        return record

    def redo_global(self, handle: DocumentHandle, user: str) -> UndoRecord:
        """Re-apply the most recently globally undone operation."""
        stack = self._redo_global[handle.doc]
        if not stack:
            raise UndoError("nothing to redo")
        record = stack.pop()
        record.reapply(handle, user)
        record.undone = False
        return record
