"""Copy & paste with lineage capture.

Copying in TeNDaX remembers *which characters* were copied; pasting stores,
per pasted character, a ``copy_src`` reference to its source character and
a ``copy_op`` reference to a ``tx_copylog`` row describing the whole paste.
That is the raw data behind the data-lineage visualisation (Fig. 1):
"information about the source of the new document part, e.g. from which
other document a text has been copied (either internal or external
sources)".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..db import Database
from ..errors import ClipboardError
from ..ids import Oid
from ..text import dbschema as S
from ..text.document import DocumentHandle


@dataclass(frozen=True)
class ClipboardContent:
    """What a copy put on the clipboard."""

    text: str
    src_doc: Oid | None                  # None for external content
    src_chars: tuple = ()                # parallel to text for internal
    external_source: str | None = None   # e.g. "https://..." or "mail"

    def __post_init__(self) -> None:
        if self.src_doc is not None and len(self.src_chars) != len(self.text):
            raise ClipboardError("src_chars must parallel text")


class Clipboard:
    """One user's clipboard (each session owns one)."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._content: ClipboardContent | None = None

    @property
    def content(self) -> ClipboardContent | None:
        return self._content

    def is_empty(self) -> bool:
        """True when nothing has been copied yet."""
        return self._content is None

    # ------------------------------------------------------------------
    # Filling the clipboard
    # ------------------------------------------------------------------

    def copy_range(self, handle: DocumentHandle, pos: int,
                   count: int) -> ClipboardContent:
        """Copy ``count`` characters at ``pos`` (with their OIDs)."""
        if count <= 0 or pos < 0:
            raise ClipboardError(
                f"copy range [{pos}, {pos + count}) outside document"
            )
        oids = handle.char_oids_range(pos, count)
        if len(oids) != count:
            raise ClipboardError(
                f"copy range [{pos}, {pos + count}) outside document"
            )
        self._content = ClipboardContent(handle.text_of(oids), handle.doc,
                                         tuple(oids))
        return self._content

    def set_external(self, text: str, source: str) -> ClipboardContent:
        """Simulate copying from outside TeNDaX (browser, mail ...)."""
        if not text:
            raise ClipboardError("external content must be non-empty")
        self._content = ClipboardContent(text, None,
                                         external_source=source)
        return self._content

    # ------------------------------------------------------------------
    # Pasting
    # ------------------------------------------------------------------

    def paste_spec(self, dst_doc: Oid, user: str) -> tuple[Oid, "ClipboardContent"]:
        """Log the paste and return ``(copy_op, content)``.

        The caller (session) performs the actual insert, passing the
        returned ``copy_op`` and the content's ``src_chars`` so every
        pasted character carries its lineage references.
        """
        if self._content is None:
            raise ClipboardError("clipboard is empty")
        content = self._content
        op = self.db.new_oid("copyop")
        self.db.insert(S.COPYLOG, {
            "op": op,
            "src_doc": content.src_doc,
            "external_source": content.external_source,
            "dst_doc": dst_doc,
            "n_chars": len(content.text),
            "user": user,
            "at": self.db.now(),
        })
        return op, content
