"""Editing sessions: the server-side representation of one connected editor.

A session belongs to one user, holds open document handles, a clipboard,
and an inbox of change notifications.  All editing verbs go through
:meth:`EditingSession._apply`, which enforces document permissions and
character-range protections, records undo information, and updates the
awareness registry — i.e. the full per-operation pipeline the paper's
editor clients drive against the database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..errors import ClipboardError, SessionError
from ..ids import Oid
from ..text.document import DocumentHandle
from .clipboard import Clipboard
from .operations import ApplyStyle, DeleteChars, InsertText, Operation, UndoRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import CollaborationServer


@dataclass(frozen=True)
class Notification:
    """A change delivered to a session's inbox.

    ``seq`` is the server's global send order; an inbox whose sequence
    numbers are not ascending observed out-of-order delivery (possible
    only under injected delivery faults — see
    :class:`~repro.collab.bus.DeliveryBus`).

    The last three fields are the *causal envelope*: ``trace_id`` /
    ``parent_span`` carry the originating keystroke's dispatch-span
    context across the session boundary (so delivery and remote apply
    link into the same trace, even when the bus holds or reorders the
    notification), and ``origin_started`` is the ``perf_counter`` stamp
    of the editor operation that caused the change — the zero point of
    the ``collab.replication_seconds`` histogram.  All three default to
    ``None``: with tracing off the trace fields are never populated
    (the null fast path), and non-session commits carry no origin stamp.
    """

    doc: Oid
    origin_session: int | None
    origin_user: str | None
    tables: tuple[str, ...]
    n_changes: int
    at: float
    seq: int = 0
    trace_id: int | None = None
    parent_span: int | None = None
    origin_started: float | None = None

    @property
    def trace_ctx(self) -> tuple[int, int] | None:
        """The envelope's span context, or ``None`` when tracing was off."""
        if self.trace_id is None or self.parent_span is None:
            return None
        return (self.trace_id, self.parent_span)


class EditingSession:
    """One connected editor for one user."""

    def __init__(self, server: "CollaborationServer", session_id: int,
                 user: str, *, editor: str = "headless",
                 os_name: str = "linux") -> None:
        self.server = server
        self.id = session_id
        self.user = user
        self.editor = editor
        self.os_name = os_name
        self.clipboard = Clipboard(server.db)
        self.inbox: list[Notification] = []
        self._handles: dict[Oid, DocumentHandle] = {}
        self.connected = True

    # ------------------------------------------------------------------
    # Document lifecycle
    # ------------------------------------------------------------------

    def create_document(self, name: str, *, text: str = "",
                        template: Oid | None = None,
                        props: dict | None = None) -> DocumentHandle:
        """Create a document owned by this session's user and open it."""
        self._require_connected()
        handle = self.server.documents.create(
            name, self.user, text=text, template=template, props=props,
        )
        if template is not None:
            self.server.apply_template(handle, template, self.user)
        self._handles[handle.doc] = handle
        self.server.awareness.joined(
            handle.doc, self.id, self.user, handle.begin_char,
            self.server.db.now(),
        )
        return handle

    def open(self, doc: Oid) -> DocumentHandle:
        """Open a document (requires read permission)."""
        self._require_connected()
        if doc in self._handles:
            return self._handles[doc]
        self.server.acl.require(doc, self.user, "read")
        handle = self.server.documents.open(doc, self.user)
        self._handles[doc] = handle
        self.server.awareness.joined(
            doc, self.id, self.user, handle.begin_char,
            self.server.db.now(),
        )
        return handle

    def close(self, doc: Oid) -> None:
        """Close one open document (leaves awareness)."""
        handle = self._handles.pop(doc, None)
        if handle is not None:
            handle.close()
            self.server.awareness.left(doc, self.id, self.user,
                                       self.server.db.now())

    def handle(self, doc: Oid) -> DocumentHandle:
        """The open handle for ``doc`` (raises if not open)."""
        try:
            return self._handles[doc]
        except KeyError:
            raise SessionError(
                f"session {self.id} has no open document {doc}"
            ) from None

    def open_documents(self) -> list[Oid]:
        """OIDs of the documents this session has open."""
        return list(self._handles)

    def disconnect(self) -> None:
        """Close every document and detach from the server."""
        for doc in list(self._handles):
            self.close(doc)
        self.connected = False
        self.server._forget(self)

    def _require_connected(self) -> None:
        if not self.connected:
            raise SessionError(f"session {self.id} is disconnected")

    def batch(self):
        """Coalesce a burst of this session's edits into one transaction.

        Delegates to :meth:`~repro.db.engine.Database.batch`: every
        editing verb issued inside the ``with`` block joins a single
        transaction that commits once (one COMMIT record, one grouped
        fsync) when the block exits, and rolls back atomically on error.
        Opt-in — outside a batch the engine keeps the paper's
        one-operation-one-transaction behaviour.
        """
        self._require_connected()
        return self.server.db.batch()

    # ------------------------------------------------------------------
    # Editing verbs (position addressed)
    # ------------------------------------------------------------------

    def insert(self, doc: Oid, pos: int, text: str,
               *, style: Oid | None = None) -> list[Oid]:
        """Type ``text`` at ``pos``."""
        handle = self.handle(doc)
        anchor = handle.anchor_for(pos)
        record = self._apply(doc, InsertText(anchor, text, style=style))
        return list(record.oids) if record else []

    def insert_after(self, doc: Oid, anchor: Oid, text: str,
                     *, style: Oid | None = None) -> list[Oid]:
        """OID-anchored insert (used by editor clients)."""
        record = self._apply(doc, InsertText(anchor, text, style=style))
        return list(record.oids) if record else []

    def delete(self, doc: Oid, pos: int, count: int) -> list[Oid]:
        """Delete ``count`` characters at ``pos``."""
        handle = self.handle(doc)
        oids = tuple(handle.char_oids_range(pos, count))
        if len(oids) != count:
            from ..errors import InvalidPositionError
            raise InvalidPositionError(
                f"delete range [{pos}, {pos + count}) outside document"
            )
        record = self._apply(doc, DeleteChars(oids))
        return list(record.oids) if record else []

    def delete_chars(self, doc: Oid, oids: Sequence[Oid]) -> None:
        """OID-addressed delete (editor clients use this)."""
        self._apply(doc, DeleteChars(tuple(oids)))

    def apply_style(self, doc: Oid, pos: int, count: int,
                    style: Oid | None) -> None:
        """Apply layout to a range."""
        handle = self.handle(doc)
        oids = tuple(handle.char_oids_range(pos, count))
        self._apply(doc, ApplyStyle(oids, style))

    def style_chars(self, doc: Oid, oids: Sequence[Oid],
                    style: Oid | None) -> None:
        """OID-addressed style application."""
        self._apply(doc, ApplyStyle(tuple(oids), style))

    def _apply(self, doc: Oid, op: Operation) -> UndoRecord | None:
        """Security -> execute -> undo-record -> awareness pipeline."""
        self._require_connected()
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, op.required_perm)
        touched = op.char_oids_touched(handle)
        if touched:
            self.server.acl.check_chars_editable(doc, self.user, touched)
        with self.server._operating(self, verb=type(op).__name__):
            record = op.apply(handle, self.user)
        if record is not None:
            self.server.undo.record(record)
        self.server.awareness.note_activity(
            self.server.db.now(), self.user, doc,
            type(op).__name__,
        )
        return record

    # ------------------------------------------------------------------
    # Structure (guarded by the dedicated "structure" permission)
    # ------------------------------------------------------------------

    def add_structure_node(self, doc: Oid, kind: str, *,
                           parent: Oid | None = None, label: str = "",
                           start_pos: int | None = None,
                           end_pos: int | None = None) -> Oid:
        """Add a structure node, optionally spanning a character range."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "structure")
        start_char = (handle.char_oid_at(start_pos)
                      if start_pos is not None else None)
        end_char = (handle.char_oid_at(end_pos)
                    if end_pos is not None else None)
        with self.server._operating(self):
            return self.server.structure.add_node(
                doc, kind, self.user, parent=parent, label=label,
                start_char=start_char, end_char=end_char,
            )

    def move_structure_node(self, doc: Oid, node: Oid,
                            new_parent: Oid | None, pos: int) -> None:
        """Re-parent/re-order a structure node."""
        self.handle(doc)
        self.server.acl.require(doc, self.user, "structure")
        with self.server._operating(self):
            self.server.structure.move_node(node, new_parent, pos)

    def remove_structure_node(self, doc: Oid, node: Oid, *,
                              recursive: bool = False) -> int:
        """Delete a structure node (optionally its subtree)."""
        self.handle(doc)
        self.server.acl.require(doc, self.user, "structure")
        with self.server._operating(self):
            return self.server.structure.remove_node(
                node, recursive=recursive)

    # ------------------------------------------------------------------
    # Embedded objects (undoable, like every §2 editing action)
    # ------------------------------------------------------------------

    def insert_image(self, doc: Oid, pos: int, *, name: str, width: int,
                     height: int, content_ref: str = "") -> Oid:
        """Insert an image at ``pos`` (recorded for undo)."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            obj = self.server.objects.insert_image(
                handle, pos, self.user, name=name, width=width,
                height=height, content_ref=content_ref,
            )
        self.server.undo.record(UndoRecord(
            "object_insert", doc, self.user, (obj,)))
        return obj

    def insert_table(self, doc: Oid, pos: int, *, rows: int,
                     cols: int) -> Oid:
        """Insert a table at ``pos`` (recorded for undo)."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            obj = self.server.objects.insert_table(
                handle, pos, self.user, rows=rows, cols=cols,
            )
        self.server.undo.record(UndoRecord(
            "object_insert", doc, self.user, (obj,)))
        return obj

    def set_cell(self, doc: Oid, obj: Oid, row: int, col: int,
                 value: str) -> None:
        """Edit one table cell (collaborative, not undo-tracked)."""
        self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            self.server.objects.set_cell(obj, row, col, value, self.user)

    def delete_object(self, doc: Oid, obj: Oid) -> None:
        """Delete an embedded object (recorded for undo)."""
        self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            self.server.objects.delete_object(obj, self.user)
        self.server.undo.record(UndoRecord(
            "object_delete", doc, self.user, (obj,)))

    # ------------------------------------------------------------------
    # Clipboard
    # ------------------------------------------------------------------

    def copy(self, doc: Oid, pos: int, count: int) -> str:
        """Copy a range onto this session's clipboard; returns the text."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "read")
        return self.clipboard.copy_range(handle, pos, count).text

    def copy_external(self, text: str, source: str) -> None:
        """Put external (non-TeNDaX) content on the clipboard."""
        self.clipboard.set_external(text, source)

    def paste(self, doc: Oid, pos: int) -> list[Oid]:
        """Paste the clipboard at ``pos``, recording lineage."""
        handle = self.handle(doc)
        if self.clipboard.is_empty():
            raise ClipboardError("clipboard is empty")
        # Validate the target and the permission *before* logging the
        # copy operation — a rejected paste must not leave a phantom
        # lineage edge in the copy log.
        anchor = handle.anchor_for(pos)
        self.server.acl.require(doc, self.user, "write")
        copy_op, content = self.clipboard.paste_spec(doc, self.user)
        record = self._apply(doc, InsertText(
            anchor, content.text,
            copy_srcs=content.src_chars or tuple([None] * len(content.text)),
            copy_op=copy_op,
        ))
        return list(record.oids) if record else []

    # ------------------------------------------------------------------
    # Notes
    # ------------------------------------------------------------------

    def add_note(self, doc: Oid, pos: int, body: str) -> Oid:
        """Attach a margin note at ``pos`` (requires write access)."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            return self.server.notes.add_note(handle, pos, body, self.user)

    def resolve_note(self, doc: Oid, note: Oid) -> None:
        """Mark a margin note handled."""
        self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            self.server.notes.resolve(note, self.user)

    # ------------------------------------------------------------------
    # Undo / redo
    # ------------------------------------------------------------------

    def undo(self, doc: Oid) -> UndoRecord:
        """Local undo: revert this user's last operation."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            return self.server.undo.undo_local(handle, self.user)

    def redo(self, doc: Oid) -> UndoRecord:
        """Local redo of this user's last undone operation."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            return self.server.undo.redo_local(handle, self.user)

    def undo_global(self, doc: Oid) -> UndoRecord:
        """Global undo: revert the last operation by anyone."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            return self.server.undo.undo_global(handle, self.user)

    def redo_global(self, doc: Oid) -> UndoRecord:
        """Global redo of the last globally undone operation."""
        handle = self.handle(doc)
        self.server.acl.require(doc, self.user, "write")
        with self.server._operating(self):
            return self.server.undo.redo_global(handle, self.user)

    # ------------------------------------------------------------------
    # Awareness
    # ------------------------------------------------------------------

    def set_cursor(self, doc: Oid, pos: int,
                   selection: Sequence[Oid] = ()) -> None:
        """Publish this session's cursor position to awareness."""
        handle = self.handle(doc)
        anchor = handle.anchor_for(pos)
        self.server.awareness.update_cursor(
            doc, self.id, anchor, tuple(selection), self.server.db.now(),
        )

    # ------------------------------------------------------------------
    # Notifications
    # ------------------------------------------------------------------

    def notifications(self) -> list[Notification]:
        """Drain and return pending change notifications."""
        out, self.inbox = self.inbox, []
        return out

    def _notify(self, notification: Notification) -> None:
        """Land a delivered notification in the inbox (the remote-apply
        moment: the editor's cached view was already spliced by the
        commit trigger, so inbox arrival is when the change becomes
        *visible* to this session).  Traced as ``collab.apply``, child
        of the delivery span via the thread context stack."""
        with self.server.db.obs.tracer.span("collab.apply",
                                            session=self.id,
                                            seq=notification.seq):
            self.inbox.append(notification)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"EditingSession(id={self.id}, user={self.user!r}, "
                f"os={self.os_name!r}, docs={len(self._handles)})")
