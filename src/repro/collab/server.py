"""The collaboration server: sessions, real-time propagation, awareness.

:class:`CollaborationServer` is the top-level object of the reproduction —
the piece the LAN-party demo runs against.  It owns the database, the
document store, security, layout/structure/object/note/version managers,
the undo manager and the awareness registry, and it fans committed changes
out to every connected session with the affected document open.

The paper's editors run on different machines; here sessions live in one
process and "network delivery" is the per-session inbox (instantaneous by
default; benchmarks can interleave arbitrarily).  The database commit is
the serialisation point either way.
"""

from __future__ import annotations

import contextlib
import itertools
from time import perf_counter
from typing import TYPE_CHECKING, Iterator

from ..clock import Clock
from ..db import Database
from ..security import AccessController, PrincipalRegistry
from ..text import (
    DocumentStore,
    NoteManager,
    ObjectManager,
    StructureManager,
    StyleManager,
    VersionManager,
)
from ..text import dbschema as S
from .awareness import AwarenessRegistry
from .bus import DeliveryBus
from .session import EditingSession, Notification
from .undo import UndoManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.transaction import Change, Transaction

#: Tables whose commits are pushed to sessions as change notifications.
_WATCHED_TABLES = (S.CHARS, S.OBJECTS, S.NOTES, S.STRUCTURE, S.DOCUMENTS)


class CollaborationServer:
    """The multi-user editing server ("the database side of the party")."""

    def __init__(self, db: Database | None = None, *, node: str = "tendax",
                 clock: Clock | None = None,
                 wal_path: str | None = None,
                 faults=None) -> None:
        self.db = db if db is not None else Database(
            node, clock=clock, wal_path=wal_path, faults=faults,
        )
        self.faults = faults if faults is not None else self.db.faults
        #: Collab metrics live in the database's registry, so one
        #: ``Database.metrics_snapshot()`` covers the whole server.
        registry = self.db.obs.registry
        self._tracer = self.db.obs.tracer
        self._m_operations = registry.counter("collab.operations")
        self._m_op_seconds = registry.histogram("collab.op_seconds")
        self._m_notifications = registry.counter("collab.notifications")
        self._m_sessions = registry.gauge("collab.sessions")
        # Dimensioned families: op latency by verb, fan-out by document.
        self._f_op_seconds = registry.family("collab.op_seconds",
                                             "histogram")
        self._f_notifications = registry.family("collab.notifications",
                                                "counter")
        #: The "network" between commits and session inboxes.
        self.delivery = DeliveryBus(self.faults, registry=registry,
                                    tracer=self._tracer)
        self.documents = DocumentStore(self.db)
        self.principals = PrincipalRegistry(self.db)
        self.acl = AccessController(self.db, self.principals)
        self.styles = StyleManager(self.db)
        self.structure = StructureManager(self.db)
        self.objects = ObjectManager(self.db)
        self.notes = NoteManager(self.db)
        self.versions = VersionManager(self.db)
        self.undo = UndoManager()
        self.awareness = AwarenessRegistry()
        self._sessions: dict[int, EditingSession] = {}
        self._session_counter = itertools.count(1)
        self._notification_seq = itertools.count(1)
        self._operating_session: EditingSession | None = None
        #: ``perf_counter`` at the start of the in-flight operation —
        #: the keystroke zero point stamped onto notification envelopes.
        self._operating_started: float | None = None
        self._subscription = self.db.bus.subscribe("db.commit",
                                                   self._on_commit)

    @property
    def stats(self) -> dict:
        """Operation/notification counts, read from the obs registry.

        Historically a plain dict mutated with ``+=`` — which silently
        lost updates when sessions operated from multiple threads.  The
        counters now live in the (thread-safe) metrics registry; this
        property keeps the old read shape.
        """
        return {
            "notifications": self._m_notifications.value,
            "operations": self._m_operations.value,
        }

    def statistics(self) -> dict:
        """A live snapshot of the whole server's state (monitoring)."""
        return {
            "sessions": len(self._sessions),
            "documents": self.db.table(S.DOCUMENTS).row_count()
            if self.db.has_table(S.DOCUMENTS) else 0,
            "characters": self.db.table(S.CHARS).row_count()
            if self.db.has_table(S.CHARS) else 0,
            "operations": self.stats["operations"],
            "notifications": self.stats["notifications"],
            "db_commits": self.db.stats["commits"],
            "db_aborts": self.db.stats["aborts"],
            "wal_records": len(self.db.wal),
            "lock_stats": dict(self.db.locks.stats),
            "delivery": dict(self.delivery.stats,
                             pending=self.delivery.pending),
        }

    # ------------------------------------------------------------------
    # Users and sessions
    # ------------------------------------------------------------------

    def register_user(self, name: str, *, display: str = "",
                      roles: tuple = ()) -> str:
        """Register a user (creating any missing roles)."""
        if not self.principals.has_user(name):
            self.principals.add_user(name, display)
        for role in roles:
            if not self.principals.has_role(role):
                self.principals.add_role(role)
            self.principals.assign_role(name, role)
        return name

    def connect(self, user: str, *, editor: str = "headless",
                os_name: str = "linux") -> EditingSession:
        """Connect a user; returns their editing session."""
        self.principals.require_user(user)
        session = EditingSession(self, next(self._session_counter), user,
                                 editor=editor, os_name=os_name)
        self._sessions[session.id] = session
        self._m_sessions.inc()
        return session

    def _forget(self, session: EditingSession) -> None:
        if self._sessions.pop(session.id, None) is not None:
            self._m_sessions.dec()

    def sessions(self) -> list[EditingSession]:
        """All currently connected sessions."""
        return list(self._sessions.values())

    def sessions_on(self, doc) -> list[EditingSession]:
        """Sessions that have ``doc`` open."""
        return [s for s in list(self._sessions.values())
                if doc in s.open_documents()]

    # ------------------------------------------------------------------
    # Templates
    # ------------------------------------------------------------------

    def apply_template(self, handle, template, user: str) -> dict:
        """Instantiate a template on a document.

        Creates the template's styles as document-local styles and its
        structure outline as the document's structure tree.  Returns
        ``{"styles": {name: oid}, "nodes": [oids]}``.
        """
        spec = self.styles.get_template(template)
        created_styles = self.styles.instantiate_template(
            template, handle.doc, user)
        nodes = self.structure.instantiate_outline(
            handle.doc, spec["structure"], user)
        return {"styles": created_styles, "nodes": nodes}

    # ------------------------------------------------------------------
    # Change propagation
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _operating(self, session: EditingSession, *,
                   verb: str = "") -> Iterator[None]:
        """Mark ``session`` as the origin of commits made inside.

        Opens the keystroke's *root* trace span (``collab.op``): the
        transaction started inside parents under it, and through the
        notification envelope so do dispatch, delivery and every remote
        session's apply — one causally linked trace per editor
        operation.  ``_operating_started`` is the replication-latency
        zero point the envelope carries.

        Inside a :meth:`~repro.db.engine.Database.batch` the op's span
        parents under the batch *transaction* span instead of rooting a
        fresh trace: every coalesced keystroke then links to the batch's
        single commit and its group's fsync.
        """
        previous = self._operating_session
        previous_started = self._operating_started
        self._operating_session = session
        self._operating_started = started = perf_counter()
        self._m_operations.inc()
        batch = self.db.current_batch()
        parent = batch.span.ctx if batch is not None else None
        with self._tracer.span("collab.op", parent_ctx=parent,
                               session=session.id,
                               user=session.user, verb=verb):
            try:
                yield
            finally:
                elapsed = perf_counter() - started
                self._m_op_seconds.observe(elapsed)
                if verb:
                    self._f_op_seconds.labels(verb=verb).observe(elapsed)
                self._operating_session = previous
                self._operating_started = previous_started

    def _on_commit(self, event) -> None:
        changes: list[Change] = event["changes"]
        by_doc: dict = {}
        for change in changes:
            if change.table not in _WATCHED_TABLES:
                continue
            row = change.row
            doc = None
            if row is not None:
                doc = row.get("doc") if change.table != S.DOCUMENTS \
                    else row.get("doc")
            if doc is None:
                continue
            entry = by_doc.setdefault(doc, {"tables": set(), "count": 0})
            entry["tables"].add(change.table)
            entry["count"] += 1
        if not by_doc:
            return
        origin = self._operating_session
        origin_started = self._operating_started if origin else None
        now = self.db.now()
        for doc, entry in by_doc.items():
            # One dispatch span per notified document; its (trace, span)
            # context rides on the envelope so delivery/apply spans can
            # resume the trace after a hold or reorder.  With no trace
            # sink the scoped span is NULL_SPAN and ``ctx`` is None.
            with self._tracer.span("collab.dispatch", doc=str(doc),
                                   changes=entry["count"]) as dispatch:
                ctx = dispatch.ctx
                notification = Notification(
                    doc=doc,
                    origin_session=origin.id if origin else None,
                    origin_user=origin.user if origin else None,
                    tables=tuple(sorted(entry["tables"])),
                    n_changes=entry["count"],
                    at=now,
                    seq=next(self._notification_seq),
                    trace_id=ctx[0] if ctx else None,
                    parent_span=ctx[1] if ctx else None,
                    origin_started=origin_started,
                )
                doc_notifications = self._f_notifications.labels(
                    doc=doc)
                # Snapshot: connect()/disconnect() may run on another
                # thread while a commit fans out.
                for session in list(self._sessions.values()):
                    if doc in session.open_documents():
                        if origin is not None and session.id == origin.id:
                            continue
                        self.delivery.send(session, notification)
                        self._m_notifications.inc()
                        doc_notifications.inc()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Disconnect all sessions and stop listening to commits."""
        self.delivery.drain()
        for session in list(self._sessions.values()):
            session.disconnect()
        self._subscription.cancel()
        self.db.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CollaborationServer(sessions={len(self._sessions)}, "
                f"docs={len(self.documents.list_documents())})")
