"""Follower-side wire endpoints: subscription client, status server.

:class:`ReplicationClient` is the blocking counterpart of the server's
SUBSCRIBE lane (:meth:`CollabNetServer._serve_subscription`): it opens a
TCP connection whose first frame is SUBSCRIBE at ``applied_lsn + 1``,
then alternates receiving one WAL_SEGMENT and sending one REPL_ACK,
feeding every segment into a :class:`~repro.repl.follower.FollowerEngine`.
Restart resumption needs no protocol state — a reconnect simply
re-subscribes from the follower's recovered cursor.

:class:`ReplicaStatusServer` is the scrape endpoint a *following*
replica exposes.  A follower must not take editor writes (a full
:class:`~repro.net.server.CollabNetServer` would install schema and
register users against the replica database), so pre-promotion
``repro serve --follow`` fronts the follower with this read-only
server: the same STATS/HEALTH frames as the leader's scrape lane, with
the payload extended by the follower's replication status.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
from time import sleep, time
from typing import TYPE_CHECKING

from ..db.wal import WalRecord, encode_value
from ..errors import NetError, ProtocolError
from ..obs.export import prometheus_text
from ..obs.health import evaluate_health
from ..obs.slo import SLOEvaluator
from ..obs.timeseries import TelemetryStore
from .protocol import (
    Bye,
    Envelope,
    Error,
    FrameDecoder,
    Health,
    HealthReply,
    ReplAck,
    Stats,
    StatsReply,
    Subscribe,
    WalSegment,
    encode_frame,
    error_class,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..repl.follower import FollowerEngine

__all__ = ["ReplicaStatusServer", "ReplicationClient", "wire_to_record"]


def wire_to_record(raw: dict) -> WalRecord:
    """One WAL_SEGMENT wire record dict back to a :class:`WalRecord`.

    ``decode_envelope`` already untagged OIDs/bytes *inside* the shipped
    payloads; the applier and the local WAL mirror expect the tagged
    (JSON-safe) form, so the payload is re-encoded on the way in.
    """
    return WalRecord(raw["lsn"], raw["type"], raw["txn"],
                     encode_value(raw.get("payload") or {}))


class ReplicationClient:
    """Tails a leader over TCP into a :class:`FollowerEngine`.

    Blocking by design (run it on a dedicated thread, like
    :class:`~repro.net.client.NetworkClient`): the pull protocol means
    the socket only ever waits for the leader's immediate reply to the
    last ack, so a dead leader surfaces as EOF/reset within one
    round-trip.  ``poll_interval`` paces re-polling while caught up —
    an empty segment is the leader's heartbeat, not a reason to spin.
    """

    def __init__(self, host: str, port: int, follower: "FollowerEngine",
                 *, token: str | None = None, poll_interval: float = 0.05,
                 timeout: float = 10.0) -> None:
        self._host = host
        self._port = port
        self._follower = follower
        self._token = token
        self._poll_interval = max(0.001, poll_interval)
        self._timeout = timeout

    def run(self, stop=None) -> str:
        """Stream until stopped or the leader dies.

        Returns ``"stopped"`` when the ``stop`` event was set (orderly
        shutdown, BYE sent) or ``"disconnected"`` when an *established*
        stream failed or closed — the caller's cue that the leader died
        and the follower is a promotion candidate.  A leader that was
        never reachable raises :class:`~repro.errors.NetError` instead
        (a follower must not promote over a typo'd address), as do
        protocol/authentication errors.
        """
        decoder = FrameDecoder()
        try:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout)
        except OSError as exc:
            raise NetError(
                f"cannot reach leader at {self._host}:{self._port}: "
                f"{exc}") from exc
        with sock:
            try:
                sock.sendall(encode_frame(Subscribe(
                    from_lsn=self._follower.applied_lsn + 1,
                    node=self._follower.db.node, token=self._token)))
                while True:
                    segment = self._next_segment(sock, decoder)
                    records = [wire_to_record(raw)
                               for raw in segment.records]
                    self._follower.apply_records(
                        records, leader_lsn=segment.end_lsn,
                        shipped_at=segment.at or None)
                    if stop is not None and stop.is_set():
                        with contextlib.suppress(OSError):
                            sock.sendall(encode_frame(
                                Bye(reason="follower stopping")))
                        return "stopped"
                    if not records:
                        # Caught up: pace the next poll (interruptibly
                        # when the caller gave us a stop event).
                        if stop is not None:
                            if stop.wait(self._poll_interval):
                                with contextlib.suppress(OSError):
                                    sock.sendall(encode_frame(
                                        Bye(reason="follower stopping")))
                                return "stopped"
                        else:
                            sleep(self._poll_interval)
                    sock.sendall(encode_frame(ReplAck(
                        applied_lsn=self._follower.applied_lsn,
                        node=self._follower.db.node, at=time())))
            except (ConnectionError, socket.timeout, OSError):
                return "disconnected"

    def step(self) -> int:
        """One subscribe/segment/apply round trip (tests, catch-up).

        Connects, applies exactly one segment, says BYE; returns the
        number of records the segment carried.
        """
        decoder = FrameDecoder()
        with socket.create_connection((self._host, self._port),
                                      timeout=self._timeout) as sock:
            sock.sendall(encode_frame(Subscribe(
                from_lsn=self._follower.applied_lsn + 1,
                node=self._follower.db.node, token=self._token)))
            segment = self._next_segment(sock, decoder)
            records = [wire_to_record(raw) for raw in segment.records]
            self._follower.apply_records(
                records, leader_lsn=segment.end_lsn,
                shipped_at=segment.at or None)
            with contextlib.suppress(OSError):
                sock.sendall(encode_frame(Bye(reason="single step")))
            return len(records)

    def _next_segment(self, sock: socket.socket,
                      decoder: FrameDecoder) -> WalSegment:
        while True:
            data = sock.recv(65536)
            if not data:
                raise ConnectionError(
                    "leader closed the replication stream")
            for envelope in decoder.feed(data):
                if isinstance(envelope, WalSegment):
                    return envelope
                if isinstance(envelope, Error):
                    raise error_class(envelope.code)(envelope.message)
                raise ProtocolError(
                    f"unexpected {envelope.TYPE!r} on the replication "
                    f"stream")


class ReplicaStatusServer:
    """Read-only STATS/HEALTH endpoint over a follower's registry."""

    def __init__(self, follower: "FollowerEngine", *,
                 host: str = "127.0.0.1", port: int = 0,
                 token: str | None = None,
                 telemetry_interval: float = 1.0) -> None:
        self.follower = follower
        self.host = host
        self.port = port
        self.token = token
        self.telemetry_interval = telemetry_interval
        registry = follower.db.obs.registry
        self.telemetry = TelemetryStore(
            registry, follower.db.clock,
            interval=max(telemetry_interval, 0.05))
        self.slo = SLOEvaluator(self.telemetry)
        self._m_scrapes = registry.counter("net.scrapes")
        self._server: asyncio.AbstractServer | None = None
        self._sampler_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ReplicaStatusServer":
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.telemetry_interval > 0:
            self._sampler_task = asyncio.ensure_future(self._sample_loop())
        return self

    async def _sample_loop(self) -> None:
        while True:
            await asyncio.sleep(self.telemetry_interval)
            self.telemetry.sample()
            self.slo.evaluate()

    async def stop(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sampler_task
            self._sampler_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------

    def stats_payload(self, *, series: bool = True) -> dict:
        db = self.follower.db
        payload = {
            "node": db.node,
            "at": db.now(),
            "repl": self.follower.status(),
            "metrics": db.obs.registry.snapshot(),
        }
        if series:
            payload["telemetry"] = self.telemetry.snapshot()
        return payload

    def health_payload(self) -> dict:
        db = self.follower.db
        verdict = evaluate_health(db.obs.registry.snapshot(),
                                  self.telemetry)
        verdict["at"] = db.now()
        verdict["node"] = db.node
        return verdict

    def _reply(self, envelope: Envelope) -> Envelope:
        self._m_scrapes.inc()
        now = self.follower.db.now()
        if isinstance(envelope, Stats):
            if envelope.format == "prom":
                text = prometheus_text(
                    self.follower.db.obs.registry.snapshot())
                return StatsReply(format="prom", payload=text, at=now)
            return StatsReply(
                format="json",
                payload=self.stats_payload(series=envelope.series),
                at=now)
        verdict = self.health_payload()
        return HealthReply(status=verdict["status"],
                           checks=tuple(verdict["checks"]),
                           at=verdict["at"])

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        inbound: list[Envelope] = []

        async def next_envelope() -> Envelope | None:
            while not inbound:
                data = await reader.read(65536)
                if not data:
                    return None
                inbound.extend(decoder.feed(data))
            return inbound.pop(0)

        try:
            while True:
                envelope = await next_envelope()
                if envelope is None or isinstance(envelope, Bye):
                    return
                if not isinstance(envelope, (Stats, Health)):
                    writer.write(encode_frame(Error(
                        code="ProtocolError",
                        message=f"replica status endpoint serves "
                                f"STATS/HEALTH only, got "
                                f"{envelope.TYPE!r}",
                        fatal=True)))
                    await writer.drain()
                    return
                if self.token is not None \
                        and envelope.token != self.token:
                    writer.write(encode_frame(Error(
                        code="AccessDenied", message="bad shared token",
                        fatal=True)))
                    await writer.drain()
                    return
                writer.write(encode_frame(self._reply(envelope)))
                await writer.drain()
        except (ConnectionError, ProtocolError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
