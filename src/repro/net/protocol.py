"""The wire protocol: length-prefixed JSON envelopes.

Every frame on the socket is a 4-byte big-endian length header followed
by one UTF-8 JSON object.  The object's ``"t"`` key names the envelope
type; the remaining keys are that envelope's fields.  Values are encoded
with the WAL's tagging scheme (:func:`~repro.db.wal.encode_value`), so
OIDs and bytes survive the JSON round trip.

Envelope types
--------------
``HELLO`` / ``WELCOME``
    The auth handshake.  A connection's first frame must be HELLO
    (user, optional shared token, editor/OS identification, protocol
    version); anything else — or a failed check — draws a fatal ERROR
    and a close.  WELCOME carries the server-side session id.
``OP`` / ``ACK`` / ``ERROR``
    The RPC lane.  OP names a verb plus arguments and carries the
    client's trace context (``trace_id``/``parent_span``) so the
    server-side spans join the keystroke's causal trace.  ACK echoes
    the ``op_seq``, the verb's result, the WAL's **durable LSN** at
    completion, and the originator's own change deltas (``echo``) so a
    client's mirror reflects its own keystroke before the verb returns.
    ERROR with an ``op_seq`` is an application error (the connection
    lives on); ERROR without one is fatal.
``NOTIFY``
    Change fan-out: the changed character rows of one committed
    transaction for one document, stamped with a per-document
    replication sequence number (``rep_seq``).  Clients apply deltas in
    sequence order; a gap (dropped or reordered frame) is detected by
    the mirror and healed by an anti-entropy ``resync`` OP.
``AWARENESS``
    Cursor/selection presence, both directions (client publish, server
    broadcast).  Fire-and-forget: never acked, faultable like NOTIFY.
``PING`` / ``PONG`` / ``BYE``
    Liveness and orderly goodbye.
``SUBSCRIBE`` / ``WAL_SEGMENT`` / ``REPL_ACK``
    The replication lane.  SUBSCRIBE — accepted **as a connection's
    first frame**, like STATS/HEALTH, honouring the same shared token —
    asks the leader to ship WAL records starting at ``from_lsn``.  The
    leader answers each SUBSCRIBE / REPL_ACK with exactly one
    WAL_SEGMENT (records of the durable prefix, capped per segment,
    plus the leader's durable ``end_lsn``); the follower applies it and
    acks with its new ``applied_lsn``, which doubles as the request for
    the next segment.  Pull-based, so a slow follower is never overrun
    and restart resumption is just a re-subscribe from
    ``applied_lsn + 1`` (see ``docs/REPLICATION.md``).
``STATS`` / ``STATS_REPLY`` and ``HEALTH`` / ``HEALTH_REPLY``
    The telemetry scrape lane.  STATS asks for the server's labelled
    metrics snapshot — ``format="json"`` returns the structured payload
    (metrics + time-series windows), ``format="prom"`` returns
    Prometheus text exposition in ``StatsReply.payload``.  HEALTH
    returns the windowed health verdict (``ok``/``degraded``/
    ``unhealthy`` plus per-check detail).  Both are accepted **as a
    connection's first frame** — a monitoring agent scrapes without
    authenticating as an editor (the shared token, when configured, is
    still required) — and also mid-session after HELLO.

The protocol is deliberately strict: unknown envelope types, missing or
mistyped required fields, oversized or malformed frames all raise
:class:`~repro.errors.ProtocolError`, which the server answers with a
fatal ERROR envelope and a connection close — never a crash or a hang
(property-tested in ``tests/test_net_protocol.py``).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Iterator

from ..db.wal import decode_value, encode_value
from ..errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "Ack",
    "Awareness",
    "Bye",
    "ENVELOPE_TYPES",
    "Envelope",
    "Error",
    "FrameDecoder",
    "Health",
    "HealthReply",
    "Hello",
    "Notify",
    "Op",
    "Ping",
    "Pong",
    "ProtocolError",
    "ReplAck",
    "Stats",
    "StatsReply",
    "Subscribe",
    "WalSegment",
    "Welcome",
    "decode_envelope",
    "encode_frame",
    "error_class",
]

#: Bumped on incompatible envelope changes; HELLO carries the client's.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload.  Large enough for a full
#: document snapshot in a resync ACK, small enough that a hostile
#: length header cannot balloon memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!I")


@dataclass(frozen=True)
class Envelope:
    """Base class: one wire message.  Subclasses set ``TYPE``."""

    TYPE: ClassVar[str] = ""

    def to_wire(self) -> dict:
        """The JSON-ready dict (``"t"`` + the dataclass fields)."""
        out: dict[str, Any] = {"t": self.TYPE}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_wire(cls, obj: dict) -> "Envelope":
        """Build the envelope from a decoded wire dict (strict)."""
        kwargs = {}
        for f in fields(cls):
            if f.name in obj:
                kwargs[f.name] = obj[f.name]
            elif f.default is not _MISSING or f.default_factory is not _MISSING:  # type: ignore[misc]
                continue
            else:
                raise ProtocolError(
                    f"{cls.TYPE} envelope missing required field {f.name!r}")
        try:
            env = cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad {cls.TYPE} envelope: {exc}") from None
        env._validate()
        return env

    def _validate(self) -> None:
        """Subclass hook: raise :class:`ProtocolError` on bad fields."""


_MISSING = field().default  # dataclasses.MISSING, without importing it


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError(message)


@dataclass(frozen=True)
class Hello(Envelope):
    """Client's opening frame: who is connecting, with what."""

    TYPE: ClassVar[str] = "hello"

    user: str
    token: str | None = None
    editor: str = "net"
    os_name: str = "linux"
    register: bool = False
    protocol: int = PROTOCOL_VERSION

    def _validate(self) -> None:
        _require(isinstance(self.user, str) and bool(self.user),
                 "hello.user must be a non-empty string")
        _require(isinstance(self.protocol, int),
                 "hello.protocol must be an int")


@dataclass(frozen=True)
class Welcome(Envelope):
    """Server's handshake acceptance."""

    TYPE: ClassVar[str] = "welcome"

    session_id: int
    node: str = ""
    protocol: int = PROTOCOL_VERSION

    def _validate(self) -> None:
        _require(isinstance(self.session_id, int),
                 "welcome.session_id must be an int")


@dataclass(frozen=True)
class Op(Envelope):
    """One RPC request: a verb plus keyword arguments."""

    TYPE: ClassVar[str] = "op"

    op_seq: int
    verb: str
    args: dict = field(default_factory=dict)
    trace_id: int | None = None
    parent_span: int | None = None

    def _validate(self) -> None:
        _require(isinstance(self.op_seq, int), "op.op_seq must be an int")
        _require(isinstance(self.verb, str) and bool(self.verb),
                 "op.verb must be a non-empty string")
        _require(isinstance(self.args, dict), "op.args must be an object")

    @property
    def trace_ctx(self) -> tuple[int, int] | None:
        if self.trace_id is None or self.parent_span is None:
            return None
        return (self.trace_id, self.parent_span)


@dataclass(frozen=True)
class Ack(Envelope):
    """RPC success: result, durable LSN, and the originator's deltas.

    ``echo`` carries the change deltas the op's own commits produced
    (``[{"doc", "rep_seq", "rows"}, ...]``): the originator never gets a
    NOTIFY for its own keystroke (no echo over the faultable lane), so
    its mirror is updated synchronously from the ACK instead.
    """

    TYPE: ClassVar[str] = "ack"

    op_seq: int
    result: Any = None
    lsn: int = 0
    echo: tuple = ()

    def _validate(self) -> None:
        _require(isinstance(self.op_seq, int), "ack.op_seq must be an int")
        _require(isinstance(self.lsn, int), "ack.lsn must be an int")

    @classmethod
    def from_wire(cls, obj: dict) -> "Ack":
        env = super().from_wire(obj)
        echo = []
        for delta in env.echo:
            if isinstance(delta, dict) and isinstance(delta.get("rows"),
                                                      list):
                delta = {**delta, "rows": tuple(delta["rows"])}
            echo.append(delta)
        object.__setattr__(env, "echo", tuple(echo))
        return env  # type: ignore[return-value]


@dataclass(frozen=True)
class Error(Envelope):
    """An application error (``op_seq`` set) or a fatal protocol error."""

    TYPE: ClassVar[str] = "error"

    code: str
    message: str = ""
    op_seq: int | None = None
    fatal: bool = False

    def _validate(self) -> None:
        _require(isinstance(self.code, str) and bool(self.code),
                 "error.code must be a non-empty string")


@dataclass(frozen=True)
class Notify(Envelope):
    """Change fan-out: one commit's character-row delta for one doc.

    ``rows`` are full ``tx_chars`` rows (upsert semantics — logical
    deletes arrive as rows with ``deleted=True``); ``rep_seq`` is the
    per-document replication sequence the mirror orders deltas by.
    ``trace_id``/``parent_span`` resume the originating keystroke's
    trace on the receiving side; ``sent_at`` is the server's wall-clock
    send stamp (propagation-latency measurement in the smoke/load
    tools).
    """

    TYPE: ClassVar[str] = "notify"

    doc: Any
    rep_seq: int
    rows: tuple = ()
    tables: tuple = ()
    n_changes: int = 0
    origin_session: int | None = None
    origin_user: str | None = None
    at: float = 0.0
    sent_at: float = 0.0
    trace_id: int | None = None
    parent_span: int | None = None

    def _validate(self) -> None:
        _require(isinstance(self.rep_seq, int),
                 "notify.rep_seq must be an int")

    @classmethod
    def from_wire(cls, obj: dict) -> "Notify":
        env = super().from_wire(obj)
        if isinstance(env.rows, list):
            object.__setattr__(env, "rows", tuple(env.rows))
        if isinstance(env.tables, list):
            object.__setattr__(env, "tables", tuple(env.tables))
        return env  # type: ignore[return-value]

    @property
    def trace_ctx(self) -> tuple[int, int] | None:
        if self.trace_id is None or self.parent_span is None:
            return None
        return (self.trace_id, self.parent_span)


@dataclass(frozen=True)
class Awareness(Envelope):
    """Cursor/selection presence (client publish or server broadcast)."""

    TYPE: ClassVar[str] = "awareness"

    doc: Any
    anchor: Any = None
    selection: tuple = ()
    user: str = ""
    session_id: int = 0

    @classmethod
    def from_wire(cls, obj: dict) -> "Awareness":
        env = super().from_wire(obj)
        if isinstance(env.selection, list):
            object.__setattr__(env, "selection", tuple(env.selection))
        return env  # type: ignore[return-value]


@dataclass(frozen=True)
class Ping(Envelope):
    TYPE: ClassVar[str] = "ping"

    nonce: int = 0
    at: float = 0.0

    def _validate(self) -> None:
        _require(isinstance(self.nonce, int), "ping.nonce must be an int")


@dataclass(frozen=True)
class Pong(Envelope):
    TYPE: ClassVar[str] = "pong"

    nonce: int = 0
    at: float = 0.0

    def _validate(self) -> None:
        _require(isinstance(self.nonce, int), "pong.nonce must be an int")


@dataclass(frozen=True)
class Bye(Envelope):
    TYPE: ClassVar[str] = "bye"

    reason: str = ""


#: Exposition formats a STATS request may ask for.
STATS_FORMATS = ("json", "prom")


@dataclass(frozen=True)
class Stats(Envelope):
    """Telemetry scrape request (allowed pre-auth as a first frame)."""

    TYPE: ClassVar[str] = "stats"

    format: str = "json"
    series: bool = True
    token: str | None = None

    def _validate(self) -> None:
        _require(self.format in STATS_FORMATS,
                 f"stats.format must be one of {STATS_FORMATS}")


@dataclass(frozen=True)
class StatsReply(Envelope):
    """Scrape response: a JSON stats payload or Prometheus text."""

    TYPE: ClassVar[str] = "stats_reply"

    format: str = "json"
    payload: Any = None
    at: float = 0.0

    def _validate(self) -> None:
        _require(self.format in STATS_FORMATS,
                 f"stats_reply.format must be one of {STATS_FORMATS}")
        if self.format == "prom":
            _require(isinstance(self.payload, str),
                     "stats_reply.payload must be text for format=prom")


@dataclass(frozen=True)
class Health(Envelope):
    """Health-verdict request (allowed pre-auth as a first frame)."""

    TYPE: ClassVar[str] = "health"

    token: str | None = None


@dataclass(frozen=True)
class HealthReply(Envelope):
    """The windowed health verdict with per-check detail."""

    TYPE: ClassVar[str] = "health_reply"

    status: str = "ok"
    checks: tuple = ()
    at: float = 0.0

    def _validate(self) -> None:
        _require(self.status in ("ok", "degraded", "unhealthy"),
                 "health_reply.status must be ok|degraded|unhealthy")

    @classmethod
    def from_wire(cls, obj: dict) -> "HealthReply":
        env = super().from_wire(obj)
        if isinstance(env.checks, list):
            object.__setattr__(env, "checks", tuple(env.checks))
        return env  # type: ignore[return-value]


@dataclass(frozen=True)
class Subscribe(Envelope):
    """Replication subscription (allowed pre-auth as a first frame).

    A follower's opening frame: stream WAL records starting at
    ``from_lsn`` (its ``applied_lsn + 1`` — restart resumption is just
    a re-subscribe with a higher ``from_lsn``).  The lane is pull-based:
    the server answers each SUBSCRIBE / REPL_ACK with one WAL_SEGMENT,
    so a slow follower can never be overrun and the leader tracks
    exactly what each follower acknowledged.
    """

    TYPE: ClassVar[str] = "subscribe"

    from_lsn: int = 1
    node: str = ""
    token: str | None = None

    def _validate(self) -> None:
        _require(isinstance(self.from_lsn, int) and self.from_lsn >= 1,
                 "subscribe.from_lsn must be an int >= 1")


@dataclass(frozen=True)
class WalSegment(Envelope):
    """One shipped chunk of the leader's durable WAL prefix.

    ``records`` are wire-shaped record dicts (``{"lsn", "type", "txn",
    "payload"}`` — the WAL file's own line format); ``end_lsn`` is the
    leader's durable LSN at send time, so the follower's lag is
    ``end_lsn - applied_lsn`` even when the segment is empty (a
    heartbeat).  ``at`` is the leader's send stamp, the zero point of
    ``repl.apply_lag_seconds``.
    """

    TYPE: ClassVar[str] = "wal_segment"

    records: tuple = ()
    end_lsn: int = 0
    at: float = 0.0

    def _validate(self) -> None:
        _require(isinstance(self.end_lsn, int),
                 "wal_segment.end_lsn must be an int")
        _require(all(isinstance(r, dict) for r in self.records),
                 "wal_segment.records must be objects")

    @classmethod
    def from_wire(cls, obj: dict) -> "WalSegment":
        env = super().from_wire(obj)
        if isinstance(env.records, list):
            object.__setattr__(env, "records", tuple(env.records))
            env._validate()
        return env  # type: ignore[return-value]


@dataclass(frozen=True)
class ReplAck(Envelope):
    """Follower progress: everything through ``applied_lsn`` is applied
    and locally durable.  Doubles as the request for the next segment
    (from ``applied_lsn + 1``)."""

    TYPE: ClassVar[str] = "repl_ack"

    applied_lsn: int = 0
    node: str = ""
    at: float = 0.0

    def _validate(self) -> None:
        _require(isinstance(self.applied_lsn, int) and self.applied_lsn >= 0,
                 "repl_ack.applied_lsn must be an int >= 0")


#: type string -> envelope class (the decode dispatch table).
ENVELOPE_TYPES: dict[str, type[Envelope]] = {
    cls.TYPE: cls
    for cls in (Hello, Welcome, Op, Ack, Error, Notify, Awareness,
                Ping, Pong, Bye, Stats, StatsReply, Health, HealthReply,
                Subscribe, WalSegment, ReplAck)
}


def encode_frame(envelope: Envelope) -> bytes:
    """Serialise one envelope as a length-prefixed wire frame."""
    payload = json.dumps(
        encode_value(envelope.to_wire()), separators=(",", ":"),
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def decode_envelope(obj: Any) -> Envelope:
    """Turn a decoded JSON object into a typed envelope (strict)."""
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload is not a JSON object")
    type_name = obj.get("t")
    cls = ENVELOPE_TYPES.get(type_name) if isinstance(type_name, str) \
        else None
    if cls is None:
        raise ProtocolError(f"unknown envelope type {type_name!r}")
    return cls.from_wire(decode_value({k: v for k, v in obj.items()
                                       if k != "t"}))


class FrameDecoder:
    """Incremental frame parser: feed bytes, iterate envelopes.

    Tolerates arbitrary fragmentation (a frame may arrive one byte at a
    time) but nothing else: a length header of zero or beyond
    ``max_frame``, undecodable UTF-8/JSON, or an out-of-contract
    envelope raises :class:`~repro.errors.ProtocolError` immediately.
    A buffer holding a partial frame at EOF simply never yields — the
    connection died mid-frame.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as a whole frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[Envelope]:
        """Buffer ``data`` and yield every complete envelope."""
        self._buffer.extend(data)
        while True:
            envelope = self._next()
            if envelope is None:
                return
            yield envelope

    def _next(self) -> Envelope | None:
        if len(self._buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(self._buffer)
        if length == 0:
            raise ProtocolError("zero-length frame")
        if length > self.max_frame:
            raise ProtocolError(
                f"declared frame length {length} exceeds the "
                f"{self.max_frame}-byte limit")
        if len(self._buffer) < _HEADER.size + length:
            return None
        payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
        del self._buffer[:_HEADER.size + length]
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable frame payload: {exc}") from None
        return decode_envelope(obj)


def error_class(code: str) -> type[Exception]:
    """Map a wire error ``code`` back to the repro exception class.

    Unknown codes fall back to :class:`~repro.errors.NetError`, so a
    newer server never crashes an older client with an unmappable name.
    """
    from .. import errors as _errors
    cls = getattr(_errors, code, None)
    if isinstance(cls, type) and issubclass(cls, _errors.TendaxError):
        return cls
    return _errors.NetError
