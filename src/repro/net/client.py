"""The client transport: a TeNDaX editor on the far side of a socket.

:class:`NetworkClient` opens one blocking TCP connection to a
:class:`~repro.net.server.CollabNetServer`, performs the HELLO/WELCOME
handshake, and exposes the connection as:

* :class:`RemoteSession` — the editing-verb surface of
  :class:`~repro.collab.session.EditingSession`, every verb an OP/ACK
  round trip;
* :class:`RemoteHandle` — the read surface of
  :class:`~repro.text.document.DocumentHandle`, answered entirely from
  the local :class:`~repro.net.mirror.DocMirror` replica (reads never
  touch the network);
* a server facade (awareness + clock) just wide enough that the
  unmodified :class:`~repro.collab.editor.EditorClient` rides on top.

Change propagation: the originator's own deltas arrive on the ACK
(``echo``) before the verb returns, so a keystroke is visible in the
local mirror synchronously — remote edits arrive as NOTIFY frames and
are applied during :meth:`NetworkClient.poll` (or opportunistically
while waiting for an ACK).  Sequence gaps — dropped or reordered frames
under a fault plan — are healed by anti-entropy ``resync`` snapshots.

The client is synchronous and single-threaded by design: the tests and
the load harness drive many clients from many *processes* (the paper's
actual topology), not many threads in one.
"""

from __future__ import annotations

import itertools
import select
import socket
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from time import time
from typing import Any, Sequence

from ..errors import InvalidPositionError, NetError, UnknownDocumentError
from ..ids import Oid
from ..obs.tracing import NULL_TRACER, Tracer
from .mirror import DocMirror
from .protocol import (
    Ack,
    Awareness,
    Bye,
    Error,
    FrameDecoder,
    Health,
    HealthReply,
    Hello,
    Notify,
    Op,
    Ping,
    Pong,
    Stats,
    StatsReply,
    Welcome,
    encode_frame,
    error_class,
)

__all__ = ["NetNotification", "NetworkClient", "RemoteHandle",
           "RemoteSession", "scrape"]


def scrape(host: str, port: int, *, kind: str = "stats",
           fmt: str = "json", series: bool = True,
           token: str | None = None, timeout: float = 5.0):
    """One-shot STATS/HEALTH scrape — no HELLO, no editor session.

    The monitoring path ``repro stats --remote`` and ``repro dash`` ride
    on: opens a TCP connection, sends a single :class:`Stats` (``kind=
    "stats"``, honouring ``fmt``/``series``) or :class:`Health` request
    as the first frame, and returns the reply payload — the structured
    stats dict, the Prometheus text, or the health-verdict dict.
    """
    if kind == "stats":
        request = Stats(format=fmt, series=series, token=token)
    elif kind == "health":
        request = Health(token=token)
    else:
        raise ValueError(f"scrape kind must be stats|health, not {kind!r}")
    decoder = FrameDecoder()
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_frame(request))
        while True:
            data = sock.recv(65536)
            if not data:
                raise NetError("scrape connection closed without a reply")
            for envelope in decoder.feed(data):
                if isinstance(envelope, StatsReply):
                    return envelope.payload
                if isinstance(envelope, HealthReply):
                    return {"status": envelope.status,
                            "checks": list(envelope.checks),
                            "at": envelope.at}
                if isinstance(envelope, Error):
                    raise error_class(envelope.code)(envelope.message)
                raise NetError(
                    f"unexpected {envelope.TYPE!r} scrape reply")

#: Buffered out-of-order deltas beyond which the client stops waiting
#: for the gap to fill and schedules an anti-entropy resync.
_RESYNC_PENDING_THRESHOLD = 2


@dataclass(frozen=True)
class NetNotification:
    """One applied remote change, as surfaced by :meth:`poll`.

    ``latency`` is receive time minus the server's send stamp —
    the wire half of the propagation the smoke/load tools measure.
    ``status`` is the mirror's verdict (``applied``/``buffered``/
    ``stale``).
    """

    doc: Any
    rep_seq: int
    tables: tuple
    n_changes: int
    origin_session: int | None
    origin_user: str | None
    sent_at: float
    received_at: float
    status: str
    trace_id: int | None = None

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


class NetworkClient:
    """One TCP connection, one remote editing session."""

    def __init__(self, host: str, port: int, user: str, *,
                 token: str | None = None, editor: str = "net",
                 os_name: str = "linux", register: bool = False,
                 timeout: float = 10.0, tracer: Tracer | None = None) -> None:
        self.host = host
        self.port = port
        self.user = user
        self.token = token
        self.editor = editor
        self.os_name = os_name
        self.register = register
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.session_id = 0
        self.node = ""
        #: doc oid -> local replica.
        self.mirrors: dict[Any, DocMirror] = {}
        #: Remote cursor states: doc -> session_id -> state dict.
        self.remote_cursors: dict[Any, dict[int, dict]] = {}
        #: Applied remote changes not yet collected by the caller.
        self.pending_notifications: list[NetNotification] = []
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()
        self._inbound: deque = deque()
        self._op_seq = itertools.count(1)
        self._in_rpc = False
        self._resync_due: set = set()
        self._connect()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._sock.settimeout(self.timeout)
        self._decoder = FrameDecoder()
        self._inbound.clear()
        self._send(Hello(user=self.user, token=self.token,
                         editor=self.editor, os_name=self.os_name,
                         register=self.register))
        reply = self._recv_blocking()
        if isinstance(reply, Error):
            raise error_class(reply.code)(reply.message)
        if not isinstance(reply, Welcome):
            raise NetError(f"expected WELCOME, got {reply.TYPE!r}")
        self.session_id = reply.session_id
        self.node = reply.node

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def reconnect(self) -> None:
        """Re-establish a severed connection and resync every open doc.

        Character OIDs are stable across connections, so cursors and
        selections survive; the server-side session id changes.
        """
        self.close(send_bye=False)
        self._connect()
        self.reconnects += 1
        for doc in list(self.mirrors):
            snapshot = self._rpc("open", {"doc": doc})
            self.mirrors[doc].load(snapshot)

    def close(self, *, send_bye: bool = True) -> None:
        """Say goodbye (best effort) and drop the socket."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        if send_bye:
            try:
                sock.sendall(encode_frame(Bye(reason="client close")))
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire I/O
    # ------------------------------------------------------------------

    def _send(self, envelope) -> None:
        if self._sock is None:
            raise NetError("client is closed")
        try:
            self._sock.sendall(encode_frame(envelope))
        except OSError as exc:
            self._sock = None
            raise NetError(f"send failed: {exc}") from None

    def _recv_blocking(self):
        """The next envelope, blocking up to the socket timeout."""
        while not self._inbound:
            if self._sock is None:
                raise NetError("connection lost")
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                raise NetError(
                    f"no reply within {self.timeout}s") from None
            except OSError as exc:
                self._sock = None
                raise NetError(f"recv failed: {exc}") from None
            if not data:
                self._sock = None
                raise NetError("server closed the connection")
            for envelope in self._decoder.feed(data):
                self._inbound.append(envelope)
        return self._inbound.popleft()

    def _rpc(self, verb: str, args: dict) -> Any:
        """One OP/ACK round trip; async frames are applied in passing."""
        was_nested = self._in_rpc
        self._in_rpc = True
        try:
            with self.tracer.span("net.rpc", verb=verb,
                                  user=self.user) as span:
                ctx = span.ctx
                seq = next(self._op_seq)
                self._send(Op(op_seq=seq, verb=verb, args=args,
                              trace_id=ctx[0] if ctx else None,
                              parent_span=ctx[1] if ctx else None))
                while True:
                    envelope = self._recv_blocking()
                    if isinstance(envelope, Ack):
                        if envelope.op_seq != seq:
                            continue  # stale ack of an abandoned rpc
                        self._apply_echo(envelope.echo)
                        return envelope.result
                    if isinstance(envelope, Error):
                        if envelope.fatal:
                            self.close(send_bye=False)
                            raise error_class(envelope.code)(
                                envelope.message)
                        if envelope.op_seq == seq:
                            raise error_class(envelope.code)(
                                envelope.message)
                        continue
                    self._handle_async(envelope)
        finally:
            self._in_rpc = was_nested
            if not was_nested:
                self._run_due_resyncs()

    def _apply_echo(self, echo: tuple) -> None:
        """Apply the ACK's own-commit deltas to the local mirrors."""
        for delta in echo:
            mirror = self.mirrors.get(delta["doc"])
            if mirror is None:
                continue
            status = mirror.apply(delta["rep_seq"], tuple(delta["rows"]))
            if status == "buffered":
                # Our own commit outran a NOTIFY we never got: a frame
                # was dropped ahead of us.  Heal after this RPC returns.
                self._resync_due.add(delta["doc"])

    def _handle_async(self, envelope) -> None:
        if isinstance(envelope, Notify):
            self._apply_notify(envelope)
        elif isinstance(envelope, Awareness):
            states = self.remote_cursors.setdefault(envelope.doc, {})
            states[envelope.session_id] = {
                "user": envelope.user,
                "anchor": envelope.anchor,
                "selection": tuple(envelope.selection),
            }
        elif isinstance(envelope, (Pong, Ping)):
            pass
        else:
            raise NetError(
                f"unexpected {envelope.TYPE!r} envelope from server")

    def _apply_notify(self, notify: Notify) -> None:
        mirror = self.mirrors.get(notify.doc)
        if mirror is None:
            return
        # Resume the originating keystroke's trace: this span shares its
        # trace_id with the remote editor's net.rpc and the server's
        # net.op/net.fanout spans — one causal chain across three
        # processes.
        with self.tracer.span("net.apply", parent_ctx=notify.trace_ctx,
                              doc=str(notify.doc), rep_seq=notify.rep_seq,
                              user=self.user):
            status = mirror.apply(notify.rep_seq, tuple(notify.rows))
        if status == "buffered" and \
                len(mirror.pending) > _RESYNC_PENDING_THRESHOLD:
            self._resync_due.add(notify.doc)
        self.pending_notifications.append(NetNotification(
            doc=notify.doc,
            rep_seq=notify.rep_seq,
            tables=tuple(notify.tables),
            n_changes=notify.n_changes,
            origin_session=notify.origin_session,
            origin_user=notify.origin_user,
            sent_at=notify.sent_at,
            received_at=time(),
            status=status,
            trace_id=notify.trace_id,
        ))

    def _run_due_resyncs(self) -> None:
        while self._resync_due:
            doc = self._resync_due.pop()
            mirror = self.mirrors.get(doc)
            if mirror is None:
                continue
            snapshot = self._rpc("resync", {"doc": doc})
            if snapshot["rep_seq"] > mirror.last_seq or mirror.gap:
                mirror.load(snapshot)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    def poll(self, timeout: float = 0.0) -> list[NetNotification]:
        """Drain arrived frames; returns the remote changes applied.

        ``timeout`` > 0 waits up to that long for the *first* frame,
        then keeps draining whatever is immediately available.
        """
        deadline = time() + timeout
        while self._sock is not None:
            wait = max(0.0, deadline - time())
            ready, _, _ = select.select([self._sock], [], [], wait)
            if not ready:
                break
            try:
                data = self._sock.recv(65536)
            except OSError:
                self._sock = None
                break
            if not data:
                self._sock = None
                break
            for envelope in self._decoder.feed(data):
                self._inbound.append(envelope)
            # Got something; subsequent rounds only sweep what's queued.
            deadline = time()
        while self._inbound:
            self._handle_async(self._inbound.popleft())
        self._run_due_resyncs()
        out, self.pending_notifications = self.pending_notifications, []
        return out

    def sync(self, doc) -> None:
        """Force an anti-entropy round trip for one document."""
        self.poll()
        mirror = self.mirrors[doc]
        snapshot = self._rpc("resync", {"doc": doc})
        if snapshot["rep_seq"] > mirror.last_seq or mirror.gap:
            mirror.load(snapshot)

    def ping(self) -> float:
        """Round-trip the control lane; returns elapsed seconds."""
        started = time()
        nonce = next(self._op_seq)
        self._send(Ping(nonce=nonce, at=started))
        while True:
            envelope = self._recv_blocking()
            if isinstance(envelope, Pong) and envelope.nonce == nonce:
                return time() - started
            self._handle_async(envelope)

    def publish_cursor(self, doc, anchor, selection: tuple = ()) -> None:
        """Fire-and-forget cursor/selection presence."""
        self._send(Awareness(doc=doc, anchor=anchor,
                             selection=tuple(selection)))

    def server_stats(self) -> dict:
        return self._rpc("stats", {})

    def server_health(self) -> dict:
        """The server's windowed health verdict (authenticated lane)."""
        return self._rpc("health", {})

    def session(self) -> "RemoteSession":
        """The session facade an :class:`EditorClient` binds to."""
        return RemoteSession(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"NetworkClient(user={self.user!r}, "
                f"session={self.session_id}, docs={len(self.mirrors)})")


class RemoteHandle:
    """Mirror-backed stand-in for a :class:`DocumentHandle`."""

    def __init__(self, client: NetworkClient, mirror: DocMirror) -> None:
        self._client = client
        self.mirror = mirror
        self.doc = mirror.doc

    @property
    def begin_char(self) -> Oid:
        return self.mirror.begin

    @property
    def end_char(self) -> Oid:
        return self.mirror.end

    def text(self) -> str:
        return self.mirror.text()

    def length(self) -> int:
        return self.mirror.length()

    def char_oids(self) -> list[Oid]:
        return self.mirror.char_oids()

    def char_oids_range(self, pos: int, count: int) -> list[Oid]:
        if pos < 0 or count < 0:
            raise InvalidPositionError(
                f"range [{pos}, {pos + count}) has a negative bound")
        return self.mirror.oid_slice(pos, pos + count)

    def char_oid_at(self, pos: int) -> Oid:
        try:
            return self.mirror.oid_at(pos)
        except IndexError:
            raise InvalidPositionError(
                f"position {pos} outside document of "
                f"length {self.mirror.length()}") from None

    def position_of(self, oid: Oid) -> int | None:
        return self.mirror.position_of(oid)

    def visible_position_after(self, anchor: Oid) -> int:
        return self.mirror.visible_position_after(anchor)

    def text_of(self, oids: Sequence[Oid]) -> str:
        return self.mirror.text_of(oids)

    def anchor_for(self, pos: int) -> Oid:
        if pos < 0 or pos > self.mirror.length():
            raise InvalidPositionError(
                f"position {pos} outside document of "
                f"length {self.mirror.length()}")
        return self.mirror.begin if pos == 0 else self.mirror.oid_at(pos - 1)

    def styled_runs(self) -> list[tuple[str, Oid | None]]:
        return self.mirror.styled_runs()

    def authors(self) -> dict[str, int]:
        return self.mirror.authors()

    def check_integrity(self) -> list[str]:
        return self.mirror.check_integrity()

    def refresh(self) -> None:
        self._client.sync(self.doc)

    def close(self) -> None:
        pass  # lifecycle owned by RemoteSession.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RemoteHandle({self.mirror!r})"


class _RemoteAwareness:
    """Awareness facade: publishes over the wire, resolves locally."""

    def __init__(self, client: NetworkClient) -> None:
        self._client = client
        #: Our own last published cursor per doc (anchor, selection).
        self._own: dict[Any, tuple] = {}

    def update_cursor(self, doc, session_id: int, anchor,
                      selection: tuple, now: float) -> None:
        self._own[doc] = (anchor, tuple(selection))
        self._client.publish_cursor(doc, anchor, tuple(selection))

    def cursor_positions(self, handle) -> dict[str, int]:
        """user -> resolved position, from received broadcasts + own."""
        positions: dict[str, int] = {}
        states = self._client.remote_cursors.get(handle.doc, {})
        for state in states.values():
            positions[state["user"]] = handle.visible_position_after(
                state["anchor"])
        own = self._own.get(handle.doc)
        if own is not None:
            positions[self._client.user] = handle.visible_position_after(
                own[0])
        return positions

    def participants(self, doc) -> list[str]:
        users = {state["user"]
                 for state in self._client.remote_cursors.get(doc, {}).values()}
        users.add(self._client.user)
        return sorted(users)


class _RemoteClock:
    def __init__(self) -> None:
        pass

    def now(self) -> float:
        return time()


class _RemoteServer:
    """Just enough server surface for :class:`EditorClient`."""

    def __init__(self, client: NetworkClient) -> None:
        self.awareness = _RemoteAwareness(client)
        self.db = _RemoteClock()


class RemoteSession:
    """Editing-verb facade matching :class:`EditingSession`."""

    def __init__(self, client: NetworkClient) -> None:
        self.client = client
        self.server = _RemoteServer(client)
        self._handles: dict[Any, RemoteHandle] = {}

    @property
    def id(self) -> int:
        return self.client.session_id

    @property
    def user(self) -> str:
        return self.client.user

    @property
    def editor(self) -> str:
        return self.client.editor

    @property
    def os_name(self) -> str:
        return self.client.os_name

    @property
    def connected(self) -> bool:
        return self.client.connected

    # -- document lifecycle --------------------------------------------------

    def create_document(self, name: str, *, text: str = "",
                        props: dict | None = None) -> RemoteHandle:
        snapshot = self.client._rpc("create_document", {
            "name": name, "text": text, "props": props})
        return self._adopt(snapshot)

    def open(self, doc) -> RemoteHandle:
        if doc in self._handles:
            return self._handles[doc]
        snapshot = self.client._rpc("open", {"doc": doc})
        return self._adopt(snapshot)

    def find_document(self, name: str) -> list[Oid]:
        """Oids of the server's documents named exactly ``name``."""
        result = self.client._rpc("resolve_document", {"name": name})
        return list(result["docs"])

    def open_named(self, name: str) -> RemoteHandle:
        """Open a document by name — the out-of-process rendezvous.

        Separate client processes share no Oids; they agree on a
        document *name* out of band and meet on the first match.
        """
        docs = self.find_document(name)
        if not docs:
            raise UnknownDocumentError(f"no document named {name!r}")
        return self.open(docs[0])

    def _adopt(self, snapshot: dict) -> RemoteHandle:
        mirror = DocMirror.from_snapshot(snapshot)
        self.client.mirrors[mirror.doc] = mirror
        handle = RemoteHandle(self.client, mirror)
        self._handles[mirror.doc] = handle
        return handle

    def close(self, doc) -> None:
        self._handles.pop(doc, None)
        self.client.mirrors.pop(doc, None)
        self.client._rpc("close", {"doc": doc})

    def handle(self, doc) -> RemoteHandle:
        return self._handles[doc]

    def open_documents(self) -> list:
        return list(self._handles)

    def disconnect(self) -> None:
        self.client.close()

    # -- editing verbs -------------------------------------------------------

    def insert(self, doc, pos: int, text: str, *, style=None) -> list[Oid]:
        return self.client._rpc("insert", {
            "doc": doc, "pos": pos, "text": text, "style": style})

    def insert_after(self, doc, anchor, text: str, *,
                     style=None) -> list[Oid]:
        return self.client._rpc("insert_after", {
            "doc": doc, "anchor": anchor, "text": text, "style": style})

    def delete(self, doc, pos: int, count: int) -> list[Oid]:
        return self.client._rpc("delete", {
            "doc": doc, "pos": pos, "count": count})

    def delete_chars(self, doc, oids: Sequence[Oid]) -> None:
        return self.client._rpc("delete_chars", {
            "doc": doc, "oids": list(oids)})

    def apply_style(self, doc, pos: int, count: int, style) -> None:
        return self.client._rpc("apply_style", {
            "doc": doc, "pos": pos, "count": count, "style": style})

    def style_chars(self, doc, oids: Sequence[Oid], style) -> None:
        return self.client._rpc("style_chars", {
            "doc": doc, "oids": list(oids), "style": style})

    def set_cursor(self, doc, pos: int, selection: Sequence[Oid] = ()) -> None:
        handle = self.handle(doc)
        anchor = handle.anchor_for(pos)
        self.server.awareness.update_cursor(
            doc, self.id, anchor, tuple(selection), time())

    # -- clipboard -----------------------------------------------------------

    def copy(self, doc, pos: int, count: int) -> str:
        return self.client._rpc("copy", {
            "doc": doc, "pos": pos, "count": count})

    def copy_external(self, text: str, source: str) -> None:
        return self.client._rpc("copy_external", {
            "text": text, "source": source})

    def paste(self, doc, pos: int) -> list[Oid]:
        return self.client._rpc("paste", {"doc": doc, "pos": pos})

    # -- notes ---------------------------------------------------------------

    def add_note(self, doc, pos: int, body: str):
        return self.client._rpc("add_note", {
            "doc": doc, "pos": pos, "body": body})

    def resolve_note(self, doc, note) -> None:
        return self.client._rpc("resolve_note", {"doc": doc, "note": note})

    # -- undo / redo ---------------------------------------------------------

    def undo(self, doc) -> dict:
        return self.client._rpc("undo", {"doc": doc})

    def redo(self, doc) -> dict:
        return self.client._rpc("redo", {"doc": doc})

    def undo_global(self, doc) -> dict:
        return self.client._rpc("undo_global", {"doc": doc})

    def redo_global(self, doc) -> dict:
        return self.client._rpc("redo_global", {"doc": doc})

    # -- batching ------------------------------------------------------------

    @contextmanager
    def batch(self):
        """Server-side batch: every verb inside is one transaction."""
        self.client._rpc("batch_begin", {})
        try:
            yield
        except BaseException:
            self.client._rpc("batch_abort", {})
            raise
        else:
            self.client._rpc("batch_end", {})

    # -- notifications -------------------------------------------------------

    def notifications(self) -> list[NetNotification]:
        """Poll the wire and drain applied remote changes."""
        return self.client.poll()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RemoteSession(id={self.id}, user={self.user!r}, "
                f"docs={len(self._handles)})")
