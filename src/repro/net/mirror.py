"""The client-side document replica: character rows over the wire.

TeNDaX editors keep a cached view of the document that the database
maintains for them; across a network, that cache becomes a *replica*.
:class:`DocMirror` holds the full ``tx_chars`` row set of one document
(sentinels and logically deleted rows included — the chain needs them)
and applies the per-commit row deltas that ride on NOTIFY envelopes /
ACK echoes.

Ordering and loss are handled with a per-document replication sequence:

* deltas apply strictly in ``rep_seq`` order;
* an out-of-order delta (reordered frames) is buffered until the gap
  fills;
* a gap that never fills (a dropped frame) is healed by *anti-entropy*:
  the transport notices the buffer growing — or an echo delta landing
  out of order — and requests a full ``resync`` snapshot, which
  replaces the mirror wholesale.

All read APIs mirror :class:`~repro.text.document.DocumentHandle`'s
(text, positions, anchors, styled runs, integrity) so the editor client
cannot tell a replica from a live handle.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..ids import Oid

__all__ = ["DocMirror"]


class DocMirror:
    """Replica of one document's character rows, delta-maintained."""

    def __init__(self, doc: Oid, begin: Oid, end: Oid, *,
                 rep_seq: int = 0) -> None:
        self.doc = doc
        self.begin = begin
        self.end = end
        #: char oid -> full tx_chars row (deleted rows and sentinels too).
        self.rows: dict[Oid, dict] = {}
        #: Highest rep_seq applied, contiguously, to ``rows``.
        self.last_seq = rep_seq
        #: Out-of-order deltas waiting for their gap to fill.
        self.pending: dict[int, tuple[dict, ...]] = {}
        #: Resyncs this mirror has performed (observability for tests).
        self.resyncs = 0

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "DocMirror":
        """Build a mirror from a server ``resync``/``open`` snapshot."""
        mirror = cls(snapshot["doc"], snapshot["begin"], snapshot["end"],
                     rep_seq=snapshot["rep_seq"])
        for row in snapshot["rows"]:
            mirror.rows[row["char"]] = dict(row)
        return mirror

    def load(self, snapshot: dict) -> None:
        """Replace the replica's state from a fresh snapshot."""
        self.rows = {row["char"]: dict(row) for row in snapshot["rows"]}
        self.begin = snapshot["begin"]
        self.end = snapshot["end"]
        seq = snapshot["rep_seq"]
        self.last_seq = seq
        self.resyncs += 1
        # Buffered deltas the snapshot already covers are obsolete; any
        # newer ones replay on top if they are contiguous.
        self.pending = {s: rows for s, rows in self.pending.items()
                        if s > seq}
        self._drain_pending()

    def apply(self, rep_seq: int, rows: tuple) -> str:
        """Apply one delta; returns ``applied``/``buffered``/``stale``.

        ``stale`` deltas (already covered by the replica, e.g. replayed
        after a resync) are dropped.  ``buffered`` means a gap precedes
        this delta — the caller should consider a resync once the
        buffer grows past its reorder tolerance.
        """
        if rep_seq <= self.last_seq:
            return "stale"
        if rep_seq == self.last_seq + 1:
            self._upsert(rows)
            self.last_seq = rep_seq
            self._drain_pending()
            return "applied"
        self.pending[rep_seq] = tuple(rows)
        return "buffered"

    def _drain_pending(self) -> None:
        while self.last_seq + 1 in self.pending:
            self.last_seq += 1
            self._upsert(self.pending.pop(self.last_seq))

    def _upsert(self, rows: tuple) -> None:
        for row in rows:
            self.rows[row["char"]] = dict(row)

    @property
    def gap(self) -> bool:
        """True when buffered deltas are waiting behind a sequence gap."""
        return bool(self.pending)

    # ------------------------------------------------------------------
    # DocumentHandle-compatible reads
    # ------------------------------------------------------------------

    def _chain(self) -> Iterator[dict]:
        """Walk every row begin→end in chain order (cycle-guarded)."""
        seen = 0
        current: Any = self.begin
        while current is not None:
            row = self.rows.get(current)
            if row is None:
                return
            yield row
            seen += 1
            if seen > len(self.rows):
                return  # cycle: integrity check reports it
            current = row["next"]

    def _visible(self) -> list[dict]:
        return [row for row in self._chain()
                if row["ch"] and not row["deleted"]]

    def text(self) -> str:
        return "".join(row["ch"] for row in self._visible())

    def length(self) -> int:
        return len(self._visible())

    def char_oids(self) -> list[Oid]:
        return [row["char"] for row in self._visible()]

    def oid_slice(self, start: int, stop: int) -> list[Oid]:
        return [row["char"] for row in self._visible()[start:stop]]

    def oid_at(self, pos: int) -> Oid:
        visible = self._visible()
        if pos < 0 or pos >= len(visible):
            raise IndexError(pos)
        return visible[pos]["char"]

    def position_of(self, oid: Oid) -> int | None:
        for index, row in enumerate(self._visible()):
            if row["char"] == oid:
                return index
        return None

    def visible_position_after(self, anchor: Oid) -> int:
        """Position after ``anchor``, sliding left over deleted rows —
        the same cursor-anchor rule as
        :meth:`~repro.text.document.DocumentHandle.visible_position_after`.
        """
        if anchor == self.begin:
            return 0
        positions = {row["char"]: index
                     for index, row in enumerate(self._visible())}
        current: Any = anchor
        hops = 0
        while current is not None and current != self.begin:
            index = positions.get(current)
            if index is not None:
                return index + 1
            row = self.rows.get(current)
            if row is None:
                return 0
            current = row["prev"]
            hops += 1
            if hops > len(self.rows):
                return 0
        return 0

    def text_of(self, oids) -> str:
        chars = {row["char"]: row["ch"] for row in self._visible()}
        return "".join(chars[oid] for oid in oids if oid in chars)

    def contains(self, oid: Oid) -> bool:
        row = self.rows.get(oid)
        return bool(row and row["ch"] and not row["deleted"])

    def styled_runs(self) -> list[tuple[str, Oid | None]]:
        runs: list[tuple[str, Oid | None]] = []
        for row in self._visible():
            style = row.get("style")
            if runs and runs[-1][1] == style:
                runs[-1] = (runs[-1][0] + row["ch"], style)
            else:
                runs.append((row["ch"], style))
        return runs

    def authors(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self._visible():
            counts[row["author"]] = counts.get(row["author"], 0) + 1
        return counts

    def check_integrity(self) -> list[str]:
        """Chain invariants on the replica (empty list = healthy)."""
        problems: list[str] = []
        reached = 0
        previous: Oid | None = None
        current: Any = self.begin
        seen: set[Oid] = set()
        while current is not None:
            if current in seen:
                problems.append(f"cycle at {current}")
                break
            seen.add(current)
            row = self.rows.get(current)
            if row is None:
                problems.append(f"chain reaches unknown char {current}")
                break
            if row["prev"] != previous:
                problems.append(
                    f"{current}: prev={row['prev']} expected {previous}")
            reached += 1
            previous = current
            current = row["next"]
        if previous != self.end:
            problems.append(f"chain ends at {previous}, not END sentinel")
        if reached != len(self.rows):
            problems.append(
                f"{len(self.rows) - reached} row(s) unreachable from BEGIN")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DocMirror({self.doc}, rows={len(self.rows)}, "
                f"seq={self.last_seq}, pending={len(self.pending)})")
