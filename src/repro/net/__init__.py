"""The network layer: TeNDaX editors on separate machines, for real.

The paper's editors connect to the database over a LAN; until now the
reproduction modelled that hop as an in-process message bus.  This
package is the actual wire:

* :mod:`repro.net.protocol` — the length-prefixed JSON envelope
  protocol (HELLO/WELCOME handshake, OP/ACK RPC with durable-LSN
  acknowledgement, NOTIFY change fan-out, AWARENESS, PING/PONG, BYE);
* :mod:`repro.net.server` — :class:`CollabNetServer`, an asyncio TCP
  server fronting a :class:`~repro.collab.server.CollaborationServer`
  with per-connection bounded send queues and backpressure;
* :mod:`repro.net.client` — :class:`NetworkClient`, a blocking-socket
  transport whose :class:`RemoteSession`/:class:`RemoteHandle` proxies
  let the existing :class:`~repro.collab.editor.EditorClient` ride the
  network unchanged;
* :mod:`repro.net.mirror` — :class:`DocMirror`, the client-side replica
  of a document's character rows, maintained from NOTIFY deltas with
  sequence-gap detection and anti-entropy resync;
* :mod:`repro.net.replica` — the WAL-shipping wire endpoints:
  :class:`ReplicationClient` (SUBSCRIBE/WAL_SEGMENT/REPL_ACK pull
  stream into a :class:`~repro.repl.follower.FollowerEngine`) and
  :class:`ReplicaStatusServer` (the STATS/HEALTH scrape endpoint a
  following replica exposes before promotion).

Socket-level fault injection (seeded latency, reorder, drop and
disconnect on outbound change frames) rides on the same
:class:`~repro.faults.plan.FaultPlan` machinery as the in-process
DeliveryBus — see :class:`~repro.faults.plan.NetFault`.
"""

from .client import (NetNotification, NetworkClient, RemoteHandle,
                     RemoteSession, scrape)
from .mirror import DocMirror
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Ack,
    Awareness,
    Bye,
    Envelope,
    Error,
    FrameDecoder,
    Health,
    HealthReply,
    Hello,
    Notify,
    Op,
    Ping,
    Pong,
    ProtocolError,
    ReplAck,
    Stats,
    StatsReply,
    Subscribe,
    WalSegment,
    Welcome,
    decode_envelope,
    encode_frame,
    error_class,
)
from .replica import ReplicaStatusServer, ReplicationClient, wire_to_record
from .server import CollabNetServer, ServerThread

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "Ack",
    "Awareness",
    "Bye",
    "CollabNetServer",
    "DocMirror",
    "Envelope",
    "Error",
    "FrameDecoder",
    "Health",
    "HealthReply",
    "Hello",
    "NetNotification",
    "NetworkClient",
    "Notify",
    "Op",
    "Ping",
    "Pong",
    "ProtocolError",
    "RemoteHandle",
    "RemoteSession",
    "ReplAck",
    "ReplicaStatusServer",
    "ReplicationClient",
    "ServerThread",
    "Stats",
    "StatsReply",
    "Subscribe",
    "WalSegment",
    "Welcome",
    "decode_envelope",
    "encode_frame",
    "error_class",
    "scrape",
    "wire_to_record",
]
