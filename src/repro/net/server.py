"""The asyncio TCP server fronting a :class:`CollaborationServer`.

:class:`CollabNetServer` is the piece that makes the reproduction's LAN
party real: editor clients on other machines (or just other processes)
connect over TCP, speak the envelope protocol of :mod:`repro.net.protocol`,
and drive the *same* :class:`~repro.collab.server.CollaborationServer`
verbs the in-process sessions use.  Design points:

* **One event loop, one op at a time.**  Editing verbs run synchronously
  in the loop under an :class:`asyncio.Lock` — the database commit stays
  the single serialisation point, exactly as in the paper.  A client
  batch (``batch_begin`` … ``batch_end``) holds the lock for its whole
  extent because :meth:`~repro.db.engine.Database.batch` is thread-local
  and every connection shares the loop thread; a client that dies
  mid-batch has its batch rolled back and the lock released by the
  connection reaper (no partial transactions, tested in
  ``tests/test_collab_server.py``).
* **Bounded send queues.**  Every connection owns an
  :class:`asyncio.Queue` drained by a sender task; a full queue means a
  consumer slower than the fan-out, and the server sheds it by aborting
  the connection (``net.backpressure_closes``).
* **Replication by sequence.**  Each commit's character-row delta is
  stamped with a per-document ``rep_seq``.  Remote mirrors apply deltas
  in order, buffer reordered ones, and heal gaps with a ``resync``
  snapshot RPC.  The originator's own deltas ride its ACK (``echo``) on
  the unfaultable control lane, never as a NOTIFY.
* **Socket-level faults.**  The sender consults the fault injector for
  every *faultable* frame (NOTIFY/AWARENESS): seeded drop, in-band
  delay, windowed reorder and forced disconnect — the DeliveryBus fault
  machinery re-targeted at the wire (see
  :class:`~repro.faults.plan.NetFault`).
* **Cross-process traces.**  OP envelopes carry the client's span
  context; the server's ``net.op`` span resumes that trace, and the
  ``net.fanout`` context rides outbound NOTIFYs so the remote apply
  joins the same ``trace_id``.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
from collections import deque
from dataclasses import replace
from time import perf_counter, time
from typing import TYPE_CHECKING, Any

from ..db.wal import CHECKPOINT
from ..errors import NetError, ProtocolError, TendaxError
from ..faults.injector import NO_FAULTS
from ..obs.export import prometheus_text
from ..obs.health import evaluate_health
from ..obs.slo import SLOEvaluator
from ..obs.timeseries import TelemetryStore
from ..text import chars as C
from ..text import dbschema as S
from .protocol import (
    PROTOCOL_VERSION,
    Ack,
    Awareness,
    Bye,
    Envelope,
    Error,
    FrameDecoder,
    Health,
    HealthReply,
    Hello,
    Notify,
    Op,
    Ping,
    Pong,
    ReplAck,
    Stats,
    StatsReply,
    Subscribe,
    WalSegment,
    Welcome,
    encode_frame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..collab.server import CollaborationServer
    from ..collab.session import EditingSession

__all__ = ["CollabNetServer", "ServerThread"]

#: Tables that flag a document as changed in NOTIFY metadata (the same
#: set the in-process server watches; only CHARS rows ride the wire).
_WATCHED_TABLES = (S.CHARS, S.OBJECTS, S.NOTES, S.STRUCTURE, S.DOCUMENTS)

#: Queue sentinel that tells a sender task to flush and exit.
_CLOSE = object()

#: How long a reorder window may sit before it is force-flushed.
_REORDER_FLUSH_SECONDS = 0.02

#: Upper bound on the records shipped in one WAL_SEGMENT frame (keeps a
#: segment far below MAX_FRAME_BYTES and bounds the follower's apply
#: batch; a lagging follower simply acks its way through more segments).
_SEGMENT_RECORDS = 256


class _Connection:
    """Server-side state of one authenticated TCP connection."""

    def __init__(self, conn_id: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, queue_size: int) -> None:
        self.id = conn_id
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.inbound: deque[Envelope] = deque()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.session: "EditingSession | None" = None
        #: Open ``db.batch()`` context manager while a client batch runs
        #: (the connection holds the server op lock for its extent).
        self.batch = None
        self.sender_task: asyncio.Task | None = None
        self.window: list[Envelope] = []
        self.faultable_sent = 0
        self.closing = False


class CollabNetServer:
    """TCP front end for one :class:`CollaborationServer`."""

    def __init__(self, collab: "CollaborationServer", *,
                 host: str = "127.0.0.1", port: int = 0,
                 token: str | None = None, send_queue: int = 256,
                 handshake_timeout: float = 10.0, faults=None,
                 telemetry_interval: float = 1.0) -> None:
        self.collab = collab
        self.host = host
        self.port = port
        self.token = token
        self.send_queue = send_queue
        self.handshake_timeout = handshake_timeout
        self.faults = faults if faults is not None else NO_FAULTS
        self.telemetry_interval = telemetry_interval
        registry = collab.db.obs.registry
        self._tracer = collab.db.obs.tracer
        #: The live telemetry rings behind STATS/HEALTH and repro dash,
        #: sampled on the database clock by the sampler task.
        self.telemetry = TelemetryStore(
            registry, collab.db.clock,
            interval=max(telemetry_interval, 0.05))
        self.slo = SLOEvaluator(self.telemetry)
        self._m_connections = registry.gauge("net.connections")
        self._m_connects = registry.counter("net.connects")
        self._m_frames_in = registry.counter("net.frames_in")
        self._m_frames_out = registry.counter("net.frames_out")
        self._m_bytes_in = registry.counter("net.bytes_in")
        self._m_bytes_out = registry.counter("net.bytes_out")
        self._m_ops = registry.counter("net.ops")
        self._m_op_seconds = registry.histogram("net.op_seconds")
        self._m_notifies = registry.counter("net.notifies")
        self._m_protocol_errors = registry.counter("net.protocol_errors")
        self._m_backpressure = registry.counter("net.backpressure_closes")
        self._m_dropped = registry.counter("net.frames_dropped")
        self._m_delayed = registry.counter("net.frames_delayed")
        self._m_resyncs = registry.counter("net.resyncs")
        self._m_scrapes = registry.counter("net.scrapes")
        self._m_segments = registry.counter("repl.segments_shipped")
        # Dimensioned families (pre-resolved; .labels() per event).
        self._f_op_seconds = registry.family("net.op_seconds", "histogram")
        self._f_notifies = registry.family("net.notifies", "counter")
        self._f_queue_depth = registry.family("net.send_queue_depth",
                                              "gauge")
        self._connections: dict[int, _Connection] = {}
        self._conn_ids = itertools.count(1)
        #: doc oid -> replication sequence of the last fanned-out commit.
        self._rep_seq: dict[Any, int] = {}
        self._op_lock: asyncio.Lock | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: int | None = None
        #: Connection whose OP is executing right now (echo/suppression
        #: attribution inside commit fan-out).
        self._current_conn: _Connection | None = None
        self._current_echo: list[dict] | None = None
        self._commit_sub = None
        self._handler_tasks: set[asyncio.Task] = set()
        self._repl_conns: set[_Connection] = set()
        self._sampler_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "CollabNetServer":
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._loop = asyncio.get_running_loop()
        self._loop_thread = threading.get_ident()
        self._op_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        # Subscribed *after* the collab server's own commit subscription
        # (made in its constructor), so in-process handles have already
        # spliced their caches when the wire fan-out reads state.
        self._commit_sub = self.collab.db.bus.subscribe(
            "db.commit", self._on_commit)
        if self.telemetry_interval > 0:
            self._sampler_task = asyncio.ensure_future(self._sample_loop())
        return self

    async def _sample_loop(self) -> None:
        """Feed the telemetry rings and SLO gauges on a fixed cadence."""
        while True:
            await asyncio.sleep(self.telemetry_interval)
            self.telemetry.sample()
            self.slo.evaluate()

    async def stop(self) -> None:
        """Close every connection and stop listening."""
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sampler_task
            self._sampler_task = None
        if self._commit_sub is not None:
            self._commit_sub.cancel()
            self._commit_sub = None
        for conn in list(self._connections.values()):
            await self._close_connection(conn, reason="server shutdown")
        for conn in list(self._repl_conns):
            await self._close_connection(conn, reason="server shutdown")
        handlers = [t for t in self._handler_tasks if not t.done()]
        if handlers:
            await asyncio.wait(handlers, timeout=2.0)
            stragglers = [t for t in handlers if not t.done()]
            for task in stragglers:
                task.cancel()
            if stragglers:
                # Let the cancelled handlers run their ``finally`` so
                # their sockets actually close before the loop dies.
                await asyncio.wait(stragglers, timeout=2.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    def stats(self) -> dict:
        """Wire-level counters (names match the metric catalogue)."""
        return {
            "connections": self._m_connections.value,
            "connects": self._m_connects.value,
            "frames_in": self._m_frames_in.value,
            "frames_out": self._m_frames_out.value,
            "ops": self._m_ops.value,
            "notifies": self._m_notifies.value,
            "protocol_errors": self._m_protocol_errors.value,
            "backpressure_closes": self._m_backpressure.value,
            "frames_dropped": self._m_dropped.value,
            "frames_delayed": self._m_delayed.value,
            "resyncs": self._m_resyncs.value,
            "scrapes": self._m_scrapes.value,
        }

    # ------------------------------------------------------------------
    # Telemetry scrape payloads (STATS / HEALTH)
    # ------------------------------------------------------------------

    def stats_payload(self, *, series: bool = True) -> dict:
        """The structured STATS payload (metrics + telemetry windows)."""
        payload = {
            "node": self.collab.db.node,
            "at": self.collab.db.now(),
            "server": self.collab.statistics(),
            "net": self.stats(),
            "wal": {"durable_lsn": self.collab.db.wal.durable_lsn,
                    "last_lsn": self.collab.db.wal.last_lsn()},
            "metrics": self.collab.db.obs.registry.snapshot(),
        }
        if series:
            payload["telemetry"] = self.telemetry.snapshot()
        return payload

    def health_payload(self) -> dict:
        """The HEALTH verdict over the current telemetry windows."""
        verdict = evaluate_health(
            self.collab.db.obs.registry.snapshot(), self.telemetry,
            context={"send_queue_limit": self.send_queue})
        verdict["at"] = self.collab.db.now()
        verdict["node"] = self.collab.db.node
        return verdict

    def _scrape_reply(self, envelope: Envelope) -> Envelope:
        self._m_scrapes.inc()
        now = self.collab.db.now()
        if isinstance(envelope, Stats):
            if envelope.format == "prom":
                text = prometheus_text(
                    self.collab.db.obs.registry.snapshot())
                return StatsReply(format="prom", payload=text, at=now)
            return StatsReply(
                format="json",
                payload=self.stats_payload(series=envelope.series), at=now)
        verdict = self.health_payload()
        return HealthReply(status=verdict["status"],
                           checks=tuple(verdict["checks"]),
                           at=verdict["at"])

    async def _serve_scrape(self, conn: _Connection,
                            envelope: Envelope) -> None:
        """A monitoring connection: consecutive STATS/HEALTH, no HELLO.

        The shared token (when the server has one) is still checked on
        every request; an editor session is never created.
        """
        while True:
            if not isinstance(envelope, (Stats, Health)):
                raise ProtocolError(
                    f"scrape connection got {envelope.TYPE!r} envelope")
            if self.token is not None and envelope.token != self.token:
                await self._send_now(conn, Error(
                    code="AccessDenied", message="bad shared token",
                    fatal=True))
                return
            await self._send_now(conn, self._scrape_reply(envelope))
            envelope = await self._next_envelope(conn)
            if envelope is None or isinstance(envelope, Bye):
                return

    # ------------------------------------------------------------------
    # Replication shipping (SUBSCRIBE / WAL_SEGMENT / REPL_ACK)
    # ------------------------------------------------------------------

    def _collect_segment(self, from_lsn: int) -> WalSegment:
        """One WAL_SEGMENT of the durable prefix starting at ``from_lsn``.

        Only durably acked records ship — a power loss on this leader
        can then never leave a follower *ahead* of what leader recovery
        would rebuild.  If checkpoint compaction truncated the in-memory
        log below the cursor, shipping resumes from the newest
        checkpoint record, whose payload carries the full state (the
        applier's documented mid-stream entry point).
        """
        wal = self.collab.db.wal
        durable = wal.durable_lsn
        records = [r for r in wal.records_from(from_lsn, _SEGMENT_RECORDS)
                   if r.lsn <= durable]
        if records and records[0].lsn > from_lsn:
            checkpoints = [r for r in wal.records_from(0)
                           if r.type == CHECKPOINT and r.lsn <= durable]
            if checkpoints:
                records = [r for r in
                           wal.records_from(checkpoints[-1].lsn,
                                            _SEGMENT_RECORDS)
                           if r.lsn <= durable]
        if records:
            self._m_segments.inc()
        wire = tuple({"lsn": r.lsn, "type": r.type, "txn": r.txn_id,
                      "payload": r.payload} for r in records)
        return WalSegment(records=wire, end_lsn=durable, at=time())

    async def _serve_subscription(self, conn: _Connection,
                                  sub: Subscribe) -> None:
        """A follower connection: SUBSCRIBE, then segment/ack ping-pong.

        Pull-based like the scrape lane: each SUBSCRIBE or REPL_ACK
        draws exactly one WAL_SEGMENT, so the follower's apply speed is
        the shipping speed and backpressure needs no queueing.  An empty
        segment is a heartbeat carrying the leader's durable
        ``end_lsn`` (the follower's lag reference); the follower paces
        its own re-polling.
        """
        if self.token is not None and sub.token != self.token:
            await self._send_now(conn, Error(
                code="AccessDenied", message="bad shared token",
                fatal=True))
            return
        # Tracked separately from editor sessions (no HELLO, no sender
        # task, no connections gauge) so shutdown can sever the stream:
        # a follower blocked on ``recv`` relies on this close for its
        # leader-death signal.
        self._repl_conns.add(conn)
        try:
            cursor = sub.from_lsn
            while True:
                await self._send_now(conn, self._collect_segment(cursor))
                envelope = await self._next_envelope(conn)
                if envelope is None or isinstance(envelope, Bye):
                    return
                if not isinstance(envelope, ReplAck):
                    raise ProtocolError(
                        f"replication connection got {envelope.TYPE!r} "
                        f"envelope")
                cursor = envelope.applied_lsn + 1
        finally:
            self._repl_conns.discard(conn)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        conn = _Connection(next(self._conn_ids), reader, writer,
                           self.send_queue)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        try:
            try:
                hello = await asyncio.wait_for(
                    self._next_envelope(conn), self.handshake_timeout)
            except asyncio.TimeoutError:
                return
            if hello is None:
                return
            if isinstance(hello, (Stats, Health)):
                await self._serve_scrape(conn, hello)
                return
            if isinstance(hello, Subscribe):
                await self._serve_subscription(conn, hello)
                return
            if not await self._handshake(conn, hello):
                return
            conn.sender_task = asyncio.ensure_future(self._sender(conn))
            self._connections[conn.id] = conn
            self._m_connections.inc()
            self._m_connects.inc()
            await self._serve(conn)
        except ProtocolError as exc:
            self._m_protocol_errors.inc()
            await self._send_now(conn, Error(code="ProtocolError",
                                             message=str(exc), fatal=True))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._close_connection(conn)

    async def _handshake(self, conn: _Connection, hello: Envelope) -> bool:
        if not isinstance(hello, Hello):
            raise ProtocolError(
                f"first frame must be HELLO, got {hello.TYPE!r}")
        if hello.protocol != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {hello.protocol} unsupported "
                f"(server speaks {PROTOCOL_VERSION})")
        if self.token is not None and hello.token != self.token:
            await self._send_now(conn, Error(
                code="AccessDenied", message="bad shared token",
                fatal=True))
            return False
        try:
            if hello.register:
                self.collab.register_user(hello.user)
            conn.session = self.collab.connect(
                hello.user, editor=hello.editor, os_name=hello.os_name)
        except TendaxError as exc:
            await self._send_now(conn, Error(
                code=type(exc).__name__, message=str(exc), fatal=True))
            return False
        await self._send_now(conn, Welcome(session_id=conn.session.id,
                                           node=self.collab.db.node))
        return True

    async def _serve(self, conn: _Connection) -> None:
        while not conn.closing:
            envelope = await self._next_envelope(conn)
            if envelope is None:
                return
            if isinstance(envelope, Op):
                await self._handle_op(conn, envelope)
            elif isinstance(envelope, Awareness):
                self._handle_awareness(conn, envelope)
            elif isinstance(envelope, Ping):
                self._enqueue(conn, Pong(nonce=envelope.nonce,
                                         at=envelope.at))
            elif isinstance(envelope, (Stats, Health)):
                # Mid-session scrape: the HELLO already authenticated.
                self._enqueue(conn, self._scrape_reply(envelope))
            elif isinstance(envelope, Bye):
                return
            else:
                raise ProtocolError(
                    f"unexpected {envelope.TYPE!r} envelope from client")

    async def _next_envelope(self, conn: _Connection) -> Envelope | None:
        """The next decoded envelope, or ``None`` on EOF."""
        while not conn.inbound:
            data = await conn.reader.read(65536)
            if not data:
                return None
            self._m_bytes_in.inc(len(data))
            for envelope in conn.decoder.feed(data):
                conn.inbound.append(envelope)
                self._m_frames_in.inc()
        return conn.inbound.popleft()

    async def _close_connection(self, conn: _Connection,
                                *, reason: str = "") -> None:
        if conn.closing:
            return
        conn.closing = True
        self._release_batch(conn)
        if self._connections.pop(conn.id, None) is not None:
            self._m_connections.dec()
            self._f_queue_depth.labels(conn=conn.id).set(0)
        if conn.sender_task is not None:
            with contextlib.suppress(asyncio.QueueFull):
                conn.queue.put_nowait(_CLOSE)
            with contextlib.suppress(Exception):
                await asyncio.wait_for(conn.sender_task, 1.0)
            if not conn.sender_task.done():
                conn.sender_task.cancel()
        if conn.session is not None and conn.session.connected:
            conn.session.disconnect()
        with contextlib.suppress(Exception):
            conn.writer.close()

    def _release_batch(self, conn: _Connection) -> None:
        """Roll back a batch left open by a dead client; free the lock.

        The reaper half of the disconnect-mid-batch guarantee: a client
        killed between ``batch_begin`` and ``batch_end`` leaves no
        partial transaction and cannot wedge the server op lock.
        """
        if conn.batch is None:
            return
        batch, conn.batch = conn.batch, None
        exc = NetError("client disconnected mid-batch")
        with contextlib.suppress(BaseException):
            batch.__exit__(type(exc), exc, None)
        self._unlock()

    def _unlock(self) -> None:
        if self._op_lock is not None and self._op_lock.locked():
            self._op_lock.release()

    # ------------------------------------------------------------------
    # Outbound path (sender task, faults, backpressure)
    # ------------------------------------------------------------------

    def _enqueue(self, conn: _Connection, envelope: Envelope) -> None:
        """Queue a frame for the sender; shed the consumer if full."""
        if conn.closing:
            return
        try:
            conn.queue.put_nowait(envelope)
        except asyncio.QueueFull:
            self._m_backpressure.inc()
            self._shed(conn)
        else:
            self._f_queue_depth.labels(conn=conn.id).set(conn.queue.qsize())

    def _shed(self, conn: _Connection) -> None:
        """Abort a connection from synchronous context; the reader's EOF
        then drives the full cleanup path."""
        conn.closing = True
        transport = conn.writer.transport
        if transport is not None:
            with contextlib.suppress(Exception):
                transport.abort()

    async def _send_now(self, conn: _Connection, envelope: Envelope) -> None:
        """Write one frame directly (handshake/fatal paths only)."""
        with contextlib.suppress(ConnectionError, RuntimeError):
            self._write(conn, envelope)
            await conn.writer.drain()

    def _write(self, conn: _Connection, envelope: Envelope) -> None:
        if isinstance(envelope, Notify):
            envelope = replace(envelope, sent_at=time())
        frame = encode_frame(envelope)
        conn.writer.write(frame)
        self._m_frames_out.inc()
        self._m_bytes_out.inc(len(frame))

    async def _sender(self, conn: _Connection) -> None:
        """Drain the send queue, applying socket faults to change frames."""
        try:
            while True:
                if conn.window:
                    try:
                        envelope = await asyncio.wait_for(
                            conn.queue.get(), _REORDER_FLUSH_SECONDS)
                    except asyncio.TimeoutError:
                        await self._flush_window(conn)
                        continue
                else:
                    envelope = await conn.queue.get()
                if envelope is _CLOSE:
                    await self._flush_window(conn)
                    return
                if isinstance(envelope, (Notify, Awareness)):
                    await self._send_faultable(conn, envelope)
                else:
                    self._write(conn, envelope)
                    await conn.writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        except asyncio.CancelledError:  # pragma: no cover - teardown
            raise

    async def _send_faultable(self, conn: _Connection,
                              envelope: Envelope) -> None:
        action, delay = self.faults.net_frame_action()
        if action == "drop":
            self._m_dropped.inc()
            return
        if action == "delay":
            self._m_delayed.inc()
            # In-band: later frames on this connection queue behind the
            # delay, like packets behind link latency.
            await asyncio.sleep(delay)
        window = self.faults.net_reorder_window()
        if window > 1:
            conn.window.append(envelope)
            if len(conn.window) >= window:
                await self._flush_window(conn)
            return
        await self._deliver_faultable(conn, envelope)

    async def _flush_window(self, conn: _Connection) -> None:
        pending, conn.window = conn.window, []
        for index in self.faults.net_reorder_order(len(pending)):
            await self._deliver_faultable(conn, pending[index])

    async def _deliver_faultable(self, conn: _Connection,
                                 envelope: Envelope) -> None:
        self._write(conn, envelope)
        await conn.writer.drain()
        conn.faultable_sent += 1
        limit = self.faults.net_disconnect_after()
        if limit is not None and conn.faultable_sent >= limit:
            self._shed(conn)

    # ------------------------------------------------------------------
    # RPC handling
    # ------------------------------------------------------------------

    async def _handle_op(self, conn: _Connection, op: Op) -> None:
        started = perf_counter()
        self._m_ops.inc()
        # Resume the client's trace across the process boundary: the
        # OP envelope carries the originating span context, so this
        # server-side span (and the collab.op/txn spans under it) share
        # the keystroke's trace_id.
        with self._tracer.span("net.op", parent_ctx=op.trace_ctx,
                               verb=op.verb, session=conn.session.id,
                               conn=conn.id):
            in_batch = conn.batch is not None
            if not in_batch:
                await self._op_lock.acquire()
            keep_lock = False
            try:
                result, echo = self._execute(conn, op)
            except TendaxError as exc:
                self._enqueue(conn, Error(code=type(exc).__name__,
                                          message=str(exc),
                                          op_seq=op.op_seq))
                return
            else:
                keep_lock = conn.batch is not None
                self._enqueue(conn, Ack(
                    op_seq=op.op_seq, result=result,
                    lsn=self.collab.db.wal.durable_lsn, echo=tuple(echo)))
            finally:
                if not keep_lock and (not in_batch or conn.batch is None):
                    self._unlock()
                elapsed = perf_counter() - started
                self._m_op_seconds.observe(elapsed)
                self._f_op_seconds.labels(verb=op.verb).observe(elapsed)

    def _execute(self, conn: _Connection, op: Op) -> tuple[Any, list]:
        """Run one verb; returns ``(result, echo_deltas)``."""
        self._current_conn = conn
        self._current_echo = []
        try:
            result = self._dispatch(conn, op.verb, op.args)
            return result, self._current_echo
        finally:
            self._current_conn = None
            self._current_echo = None

    def _dispatch(self, conn: _Connection, verb: str, args: dict) -> Any:
        session = conn.session
        if verb == "insert":
            return session.insert(args["doc"], args["pos"], args["text"],
                                  style=args.get("style"))
        if verb == "insert_after":
            return session.insert_after(args["doc"], args["anchor"],
                                        args["text"],
                                        style=args.get("style"))
        if verb == "delete":
            return session.delete(args["doc"], args["pos"], args["count"])
        if verb == "delete_chars":
            return session.delete_chars(args["doc"], list(args["oids"]))
        if verb == "apply_style":
            return session.apply_style(args["doc"], args["pos"],
                                       args["count"], args.get("style"))
        if verb == "style_chars":
            return session.style_chars(args["doc"], list(args["oids"]),
                                       args.get("style"))
        if verb == "create_document":
            handle = session.create_document(
                args["name"], text=args.get("text", ""),
                props=args.get("props"))
            return self._doc_snapshot(conn, handle.doc)
        if verb == "open":
            session.open(args["doc"])
            return self._doc_snapshot(conn, args["doc"])
        if verb == "resolve_document":
            rows = self.collab.documents.find_by_name(args["name"])
            return {"docs": [row["doc"] for row in rows]}
        if verb == "close":
            return session.close(args["doc"])
        if verb == "resync":
            self._m_resyncs.inc()
            return self._doc_snapshot(conn, args["doc"])
        if verb == "set_cursor":
            return session.set_cursor(args["doc"], args["pos"],
                                      tuple(args.get("selection", ())))
        if verb == "copy":
            return session.copy(args["doc"], args["pos"], args["count"])
        if verb == "copy_external":
            return session.copy_external(args["text"], args["source"])
        if verb == "paste":
            return session.paste(args["doc"], args["pos"])
        if verb == "add_note":
            return session.add_note(args["doc"], args["pos"], args["body"])
        if verb == "resolve_note":
            return session.resolve_note(args["doc"], args["note"])
        if verb in ("undo", "redo", "undo_global", "redo_global"):
            record = getattr(session, verb)(args["doc"])
            return {"kind": record.kind, "oids": list(record.oids)}
        if verb == "register_user":
            return self.collab.register_user(
                args["user"], display=args.get("display", ""),
                roles=tuple(args.get("roles", ())))
        if verb == "batch_begin":
            if conn.batch is not None:
                raise NetError("batch already open on this connection")
            batch = self.collab.db.batch()
            batch.__enter__()
            conn.batch = batch
            return None
        if verb == "batch_end":
            if conn.batch is None:
                raise NetError("no batch open on this connection")
            batch, conn.batch = conn.batch, None
            batch.__exit__(None, None, None)
            return None
        if verb == "batch_abort":
            if conn.batch is None:
                raise NetError("no batch open on this connection")
            batch, conn.batch = conn.batch, None
            exc = NetError("batch aborted by client")
            with contextlib.suppress(BaseException):
                batch.__exit__(type(exc), exc, None)
            return None
        if verb == "stats":
            return {"server": self.collab.statistics(),
                    "net": self.stats()}
        if verb == "health":
            return self.health_payload()
        raise NetError(f"unknown verb {verb!r}")

    def _doc_snapshot(self, conn: _Connection, doc) -> dict:
        """Full character-row snapshot + current rep_seq (open/resync).

        Consistent by construction: snapshots are built inside an OP
        (under the op lock, on the loop thread), so no commit can land
        between the row scan and the sequence read.
        """
        handle = conn.session.handle(doc)
        rows = C.doc_char_rows(self.collab.db, doc)
        return {
            "doc": doc,
            "begin": handle.begin_char,
            "end": handle.end_char,
            "rep_seq": self._rep_seq.get(doc, 0),
            "rows": list(rows.values()),
        }

    # ------------------------------------------------------------------
    # Awareness
    # ------------------------------------------------------------------

    def _handle_awareness(self, conn: _Connection,
                          envelope: Awareness) -> None:
        session = conn.session
        doc = envelope.doc
        if doc not in session.open_documents():
            return
        self.collab.awareness.update_cursor(
            doc, session.id, envelope.anchor, tuple(envelope.selection),
            self.collab.db.now())
        broadcast = Awareness(doc=doc, anchor=envelope.anchor,
                              selection=tuple(envelope.selection),
                              user=session.user, session_id=session.id)
        for other in self._connections.values():
            if other.id == conn.id or other.session is None:
                continue
            if doc in other.session.open_documents():
                self._enqueue(other, broadcast)

    # ------------------------------------------------------------------
    # Commit fan-out
    # ------------------------------------------------------------------

    def _on_commit(self, event) -> None:
        deltas = self._collect(event["changes"])
        if not deltas:
            return
        if self._loop is None:
            return
        if threading.get_ident() == self._loop_thread:
            self._fanout(deltas, self._current_conn)
        else:
            # A commit from outside the event loop (an in-process
            # session sharing the collab server): hand the prepared
            # deltas to the loop; no originating connection to suppress.
            self._loop.call_soon_threadsafe(self._fanout, deltas, None)

    def _collect(self, changes) -> list[dict]:
        """Per-document deltas of one commit (rep_seq already bumped)."""
        by_doc: dict[Any, dict] = {}
        for change in changes:
            if change.table not in _WATCHED_TABLES or change.row is None:
                continue
            doc = change.row.get("doc")
            if doc is None:
                continue
            entry = by_doc.setdefault(
                doc, {"tables": set(), "count": 0, "rows": []})
            entry["tables"].add(change.table)
            entry["count"] += 1
            if change.table == S.CHARS:
                entry["rows"].append(dict(change.row))
        deltas = []
        for doc, entry in by_doc.items():
            seq = self._rep_seq.get(doc, 0) + 1
            self._rep_seq[doc] = seq
            deltas.append({
                "doc": doc,
                "rep_seq": seq,
                "rows": tuple(entry["rows"]),
                "tables": tuple(sorted(entry["tables"])),
                "n_changes": entry["count"],
            })
        return deltas

    def _fanout(self, deltas: list[dict],
                origin: _Connection | None) -> None:
        # The fan-out span parents under whatever is open on this thread
        # (net.op -> collab.op -> txn during an RPC), so its context —
        # carried on every NOTIFY — extends the keystroke's trace to the
        # remote appliers.
        with self._tracer.span("net.fanout", docs=len(deltas)) as span:
            ctx = span.ctx
            now = self.collab.db.now()
            origin_session = origin.session if origin is not None else None
            # The wire replaces the inbox for net sessions: drop whatever
            # the in-process DeliveryBus parked there so long-lived
            # connections don't leak undrained Notifications.
            for conn in self._connections.values():
                if conn.session is not None:
                    conn.session.inbox.clear()
            for delta in deltas:
                doc_notifies = self._f_notifies.labels(doc=delta["doc"])
                if origin is not None and self._current_echo is not None:
                    self._current_echo.append({
                        "doc": delta["doc"],
                        "rep_seq": delta["rep_seq"],
                        "rows": delta["rows"],
                    })
                notify = Notify(
                    doc=delta["doc"],
                    rep_seq=delta["rep_seq"],
                    rows=delta["rows"],
                    tables=delta["tables"],
                    n_changes=delta["n_changes"],
                    origin_session=origin_session.id
                    if origin_session else None,
                    origin_user=origin_session.user
                    if origin_session else None,
                    at=now,
                    trace_id=ctx[0] if ctx else None,
                    parent_span=ctx[1] if ctx else None,
                )
                for conn in list(self._connections.values()):
                    if conn.session is None or conn.closing:
                        continue
                    if origin is not None and conn.id == origin.id:
                        continue  # the originator gets the echo instead
                    if delta["doc"] in conn.session.open_documents():
                        self._m_notifies.inc()
                        doc_notifies.inc()
                        self._enqueue(conn, notify)


class ServerThread:
    """Run a :class:`CollabNetServer` on a background event loop.

    The in-process twin of ``repro serve`` for tests and benchmarks:
    the calling thread gets a live TCP endpoint (:attr:`port`) while the
    server spins in its own thread.  Use as a context manager.
    """

    def __init__(self, collab: "CollaborationServer", **kwargs) -> None:
        self.server = CollabNetServer(collab, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="collab-net-server",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(10.0):
            raise NetError("network server failed to start in time")
        if self._startup_error is not None:
            raise NetError(
                f"network server failed to start: {self._startup_error}")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # startup failed: surface it
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10.0)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
