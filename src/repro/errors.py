"""Exception hierarchy for the TeNDaX reproduction.

All library errors derive from :class:`TendaxError` so callers can catch one
base class.  Subsystem errors derive from intermediate classes mirroring the
package layout (database, text, collaboration, security, process, search).
"""

from __future__ import annotations


class TendaxError(Exception):
    """Base class for every error raised by this library."""


class CrashSignal(BaseException):
    """Simulated process death (see :mod:`repro.faults.plan`).

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so it
    flies through ``except Exception`` / ``except TendaxError`` handlers —
    a dead process does not run error handling.  Defined here (not in
    :mod:`repro.faults`) so the engine's instrumented hot paths can close
    spans on crash without importing the fault package.
    """


# ---------------------------------------------------------------------------
# Database engine errors
# ---------------------------------------------------------------------------

class DatabaseError(TendaxError):
    """Base class for errors raised by the relational engine."""


class SchemaError(DatabaseError):
    """A table or column definition is invalid or violated."""


class DuplicateTableError(SchemaError):
    """A table with the same name already exists."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the table schema."""


class TypeMismatchError(SchemaError):
    """A value does not match the declared column type."""


class NotNullViolation(SchemaError):
    """A NULL was supplied for a non-nullable column."""


class UniqueViolation(DatabaseError):
    """A uniqueness constraint (primary key or unique index) was violated."""


class RowNotFoundError(DatabaseError):
    """A row id referenced a row that does not exist (or is deleted)."""


class TransactionError(DatabaseError):
    """Base class for transaction lifecycle errors."""


class TransactionStateError(TransactionError):
    """Operation attempted on a transaction in the wrong state."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (explicitly or by the engine)."""


class ReadOnlyTransactionError(TransactionError):
    """A write was attempted through a read-only (snapshot) transaction."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class DeadlockError(TransactionError):
    """The lock manager detected a deadlock and chose this victim."""


class WalError(DatabaseError):
    """The write-ahead log is corrupt or was misused."""


class RecoveryError(DatabaseError):
    """Crash recovery could not be completed."""


class ReplicationError(DatabaseError):
    """The replication stream or follower apply path was violated
    (gap in the shipped LSN sequence, apply after promotion, ...)."""


class FeedError(DatabaseError):
    """Base class for post-commit changefeed errors."""


class FeedGapError(FeedError):
    """A consumer asked for batches the feed no longer retains; it must
    rebuild (or catch up from the WAL) instead of resuming in-memory."""


# ---------------------------------------------------------------------------
# Text extension errors
# ---------------------------------------------------------------------------

class TextError(TendaxError):
    """Base class for errors in the native text extension."""


class UnknownDocumentError(TextError):
    """A referenced document does not exist."""


class UnknownCharacterError(TextError):
    """A referenced character tuple does not exist in the document."""


class InvalidPositionError(TextError):
    """An index or range lies outside the document."""


class StructureError(TextError):
    """The structure tree (sections, paragraphs) was manipulated invalidly."""


class LayoutError(TextError):
    """A style or template operation is invalid."""


# ---------------------------------------------------------------------------
# Collaboration errors
# ---------------------------------------------------------------------------

class CollaborationError(TendaxError):
    """Base class for collaboration-server errors."""


class SessionError(CollaborationError):
    """A session operation is invalid (closed session, unknown session...)."""


class OperationError(CollaborationError):
    """An editing operation could not be applied."""


class UndoError(CollaborationError):
    """Nothing to undo/redo, or the undo target is no longer undoable."""


class ClipboardError(CollaborationError):
    """Copy/paste failed (empty clipboard, bad source range...)."""


class NetError(CollaborationError):
    """Network-layer failure: transport loss, handshake or RPC problems."""


class ProtocolError(NetError):
    """A wire frame violated the protocol (malformed, oversized,
    unknown envelope type, or out-of-contract fields).  Fatal for the
    connection that produced it — the peer answers with an ERROR
    envelope and closes."""


class BackpressureError(NetError):
    """A session's bounded send queue overflowed; the server sheds the
    slow consumer by closing its connection."""


# ---------------------------------------------------------------------------
# Security errors
# ---------------------------------------------------------------------------

class SecurityError(TendaxError):
    """Base class for security subsystem errors."""


class AccessDenied(SecurityError):
    """The acting user lacks the required permission."""


class UnknownPrincipalError(SecurityError):
    """A referenced user or role does not exist."""


# ---------------------------------------------------------------------------
# Business process errors
# ---------------------------------------------------------------------------

class ProcessError(TendaxError):
    """Base class for in-document workflow errors."""


class TaskStateError(ProcessError):
    """A task transition is not allowed from its current state."""


class RoutingError(ProcessError):
    """A task could not be routed to a user or role."""


# ---------------------------------------------------------------------------
# Folders / search / mining errors
# ---------------------------------------------------------------------------

class FolderError(TendaxError):
    """Base class for folder subsystem errors."""


class SearchError(TendaxError):
    """Base class for search subsystem errors."""


class QuerySyntaxError(SearchError):
    """A search query string could not be parsed."""


class MiningError(TendaxError):
    """Base class for visual/text mining errors."""
