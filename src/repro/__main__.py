"""Allow ``python -m repro`` to reach the CLI."""

import sys

from .cli import main

sys.exit(main())
