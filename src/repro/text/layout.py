"""Collaborative layout: styles and templates.

Layout in TeNDaX is data, not markup: a *style* is a named row of layout
attributes (bold, italic, font, size ...), and every character references
at most one style by OID.  Applying layout is therefore an ordinary
database transaction over character rows — which is what makes layout
*collaborative*: two users restyling different ranges of the same paragraph
are just two transactions (see Hodel et al., "Supporting Collaborative
Layouting in Word Processing", the paper's reference [2]).

A *template* bundles style definitions plus a default structure outline so
new documents start with a consistent look.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..db import Database, col
from ..errors import LayoutError
from ..ids import Oid
from . import dbschema as S
from .document import DocumentHandle

#: Attributes a style may define, with their expected types.
KNOWN_ATTRS = {
    "bold": bool,
    "italic": bool,
    "underline": bool,
    "font": str,
    "size": int,
    "color": str,
    "align": str,          # left | right | center | justify
    "heading_level": int,  # 0 = body text
}


def validate_attrs(attrs: Mapping[str, Any]) -> dict:
    """Check style attributes against :data:`KNOWN_ATTRS`."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        expected = KNOWN_ATTRS.get(key)
        if expected is None:
            raise LayoutError(f"unknown style attribute {key!r}")
        if not isinstance(value, expected):
            raise LayoutError(
                f"style attribute {key!r} expects {expected.__name__}, "
                f"got {value!r}"
            )
        out[key] = value
    return out


class StyleManager:
    """Create and resolve styles and templates in one database."""

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    # -- styles ---------------------------------------------------------

    def define_style(self, name: str, attrs: Mapping[str, Any], author: str,
                     *, doc: Oid | None = None) -> Oid:
        """Define a style; ``doc=None`` makes it globally available."""
        style = self.db.new_oid("style")
        self.db.insert(S.STYLES, {
            "style": style, "doc": doc, "name": name,
            "attrs": validate_attrs(attrs), "author": author,
            "created_at": self.db.now(),
        })
        return style

    def get_style(self, style: Oid) -> dict:
        """Fetch a style row by OID (raises if absent)."""
        row = self.db.query(S.STYLES).where(col("style") == style).first()
        if row is None:
            raise LayoutError(f"no style {style}")
        return dict(row)

    def find_style(self, name: str, *, doc: Oid | None = None) -> dict | None:
        """Resolve a style by name, preferring document-local definitions."""
        rows = self.db.query(S.STYLES).where(col("name") == name).run()
        local = [r for r in rows if r["doc"] == doc]
        if local:
            return dict(local[0])
        global_ = [r for r in rows if r["doc"] is None]
        return dict(global_[0]) if global_ else None

    def styles_for(self, doc: Oid) -> list[dict]:
        """All styles visible to a document (its own + global)."""
        rows = self.db.query(S.STYLES).run()
        return [dict(r) for r in rows if r["doc"] in (doc, None)]

    def effective_attrs(self, style: Oid | None) -> dict:
        """The attribute mapping a character with ``style`` renders with."""
        if style is None:
            return {}
        return dict(self.get_style(style)["attrs"])

    # -- templates --------------------------------------------------------

    def define_template(
        self,
        name: str,
        author: str,
        *,
        styles: Iterable[Mapping[str, Any]] = (),
        structure: Iterable[Mapping[str, Any]] = (),
    ) -> Oid:
        """Define a template.

        ``styles`` is a list of ``{"name": ..., "attrs": {...}}`` mappings;
        ``structure`` an outline of ``{"kind": ..., "label": ...}`` nodes.
        """
        template = self.db.new_oid("template")
        style_specs = [
            {"name": s["name"], "attrs": validate_attrs(s["attrs"])}
            for s in styles
        ]
        self.db.insert(S.TEMPLATES, {
            "template": template, "name": name,
            "styles": style_specs, "structure": list(map(dict, structure)),
            "author": author, "created_at": self.db.now(),
        })
        return template

    def get_template(self, template: Oid) -> dict:
        """Fetch a template row by OID (raises if absent)."""
        row = (self.db.query(S.TEMPLATES)
               .where(col("template") == template).first())
        if row is None:
            raise LayoutError(f"no template {template}")
        return dict(row)

    def instantiate_template(self, template: Oid, doc: Oid,
                             author: str) -> dict[str, Oid]:
        """Create the template's styles as document-local styles.

        Returns ``style name -> OID`` for the new document.  (The structure
        outline is instantiated by :class:`~repro.text.structure.StructureManager`.)
        """
        spec = self.get_template(template)
        created: dict[str, Oid] = {}
        for style_spec in spec["styles"]:
            created[style_spec["name"]] = self.define_style(
                style_spec["name"], style_spec["attrs"], author, doc=doc,
            )
        return created


def render_ansi(handle: DocumentHandle, styles: StyleManager) -> str:
    """Render a document's styled runs with ANSI escapes (demo output)."""
    pieces: list[str] = []
    for text, style in handle.styled_runs():
        attrs = styles.effective_attrs(style)
        codes: list[str] = []
        if attrs.get("bold"):
            codes.append("1")
        if attrs.get("italic"):
            codes.append("3")
        if attrs.get("underline"):
            codes.append("4")
        if codes:
            pieces.append(f"\x1b[{';'.join(codes)}m{text}\x1b[0m")
        else:
            pieces.append(text)
    return "".join(pieces)
