"""The Text Native Database eXtension (the paper's core contribution).

Documents stored as neighbour-linked character rows with full per-character
metadata, plus the surrounding document machinery: structure trees, styles
and templates, embedded objects, notes and versioning.
"""

from .dbschema import install_text_schema
from .document import DocumentHandle, DocumentStore
from .io import export_json, export_text, import_json
from .layout import StyleManager, render_ansi
from .notes import NoteManager
from .objects import ObjectManager
from .render import export_markdown
from .structure import StructureManager
from .versioning import VersionDiff, VersionManager

__all__ = [
    "DocumentHandle",
    "DocumentStore",
    "NoteManager",
    "ObjectManager",
    "StructureManager",
    "StyleManager",
    "VersionDiff",
    "VersionManager",
    "export_json",
    "export_markdown",
    "export_text",
    "import_json",
    "install_text_schema",
    "render_ansi",
]
