"""Document structure: a tree of sections, headings, paragraphs and lists.

Structure in TeNDaX is stored relationally (``tx_structure``): each node
has a kind, a parent, a sibling position and optionally a character range
(``start_char``/``end_char`` anchor OIDs).  Because ranges are anchored at
character OIDs rather than offsets, structure survives concurrent editing:
inserting text inside a section never invalidates the section's bounds.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..db import Database, col
from ..errors import StructureError
from ..ids import Oid
from . import dbschema as S
from .document import DocumentHandle

#: Node kinds the outline may contain, in "can contain" order.
KINDS = ("document", "section", "heading", "paragraph", "list", "list_item")


class StructureManager:
    """Create and query the structure tree of documents."""

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    # -- creation -----------------------------------------------------------

    def add_node(
        self,
        doc: Oid,
        kind: str,
        author: str,
        *,
        parent: Oid | None = None,
        label: str = "",
        pos: int | None = None,
        start_char: Oid | None = None,
        end_char: Oid | None = None,
    ) -> Oid:
        """Add a structure node; returns its OID.

        ``pos`` defaults to "after the last sibling".
        """
        if kind not in KINDS:
            raise StructureError(f"unknown structure kind {kind!r}")
        if parent is not None:
            parent_row = self._node_row(parent)
            if parent_row["doc"] != doc:
                raise StructureError("parent belongs to a different document")
        if pos is None:
            siblings = self.children(doc, parent)
            pos = (siblings[-1]["pos"] + 1) if siblings else 0
        node = self.db.new_oid("node")
        self.db.insert(S.STRUCTURE, {
            "node": node, "doc": doc, "kind": kind, "parent": parent,
            "pos": pos, "label": label, "start_char": start_char,
            "end_char": end_char, "author": author,
            "created_at": self.db.now(),
        })
        return node

    def instantiate_outline(self, doc: Oid, outline: Iterable[dict],
                            author: str, *, parent: Oid | None = None) -> list[Oid]:
        """Create nodes from a nested outline (template instantiation).

        Each outline entry is ``{"kind", "label", "children": [...]}``.
        """
        created: list[Oid] = []
        for entry in outline:
            node = self.add_node(
                doc, entry["kind"], author,
                parent=parent, label=entry.get("label", ""),
            )
            created.append(node)
            children = entry.get("children") or ()
            created.extend(
                self.instantiate_outline(doc, children, author, parent=node)
            )
        return created

    # -- mutation ------------------------------------------------------------

    def set_range(self, node: Oid, start_char: Oid | None,
                  end_char: Oid | None) -> None:
        """Anchor (or clear) the character range a node spans."""
        row = self._node_view(node)
        self.db.update(S.STRUCTURE, row.rowid, {
            "start_char": start_char, "end_char": end_char,
        })

    def relabel(self, node: Oid, label: str) -> None:
        """Change a node's label."""
        row = self._node_view(node)
        self.db.update(S.STRUCTURE, row.rowid, {"label": label})

    def move_node(self, node: Oid, new_parent: Oid | None,
                  pos: int) -> None:
        """Re-parent/re-order a node; rejects cycles."""
        row = self._node_row(node)
        if new_parent is not None:
            ancestor: Oid | None = new_parent
            while ancestor is not None:
                if ancestor == node:
                    raise StructureError("move would create a cycle")
                ancestor = self._node_row(ancestor)["parent"]
        view = self._node_view(node)
        self.db.update(S.STRUCTURE, view.rowid, {
            "parent": new_parent, "pos": pos,
        })

    def remove_node(self, node: Oid, *, recursive: bool = False) -> int:
        """Delete a node (and optionally its subtree); returns count."""
        children = [r["node"] for r in self._children_rows(node)]
        if children and not recursive:
            raise StructureError(f"node {node} has children")
        removed = 0
        for child in children:
            removed += self.remove_node(child, recursive=True)
        view = self._node_view(node)
        self.db.delete(S.STRUCTURE, view.rowid)
        return removed + 1

    # -- queries --------------------------------------------------------------

    def _node_view(self, node: Oid):
        row = self.db.query(S.STRUCTURE).where(col("node") == node).first()
        if row is None:
            raise StructureError(f"no structure node {node}")
        return row

    def _node_row(self, node: Oid) -> dict:
        return dict(self._node_view(node))

    def _children_rows(self, parent: Oid | None) -> list[dict]:
        rows = (self.db.query(S.STRUCTURE)
                .where(col("parent") == parent).run())
        return sorted((dict(r) for r in rows), key=lambda r: r["pos"])

    def node(self, node: Oid) -> dict:
        """Fetch a node row by OID (raises if absent)."""
        return self._node_row(node)

    def children(self, doc: Oid, parent: Oid | None) -> list[dict]:
        """Ordered children of ``parent`` (top-level nodes for ``None``)."""
        return [r for r in self._children_rows(parent) if r["doc"] == doc]

    def roots(self, doc: Oid) -> list[dict]:
        """Top-level nodes of a document, in order."""
        return self.children(doc, None)

    def walk(self, doc: Oid, parent: Oid | None = None,
             depth: int = 0) -> Iterator[tuple[int, dict]]:
        """Depth-first traversal yielding ``(depth, node_row)``."""
        for row in self.children(doc, parent):
            yield depth, row
            yield from self.walk(doc, row["node"], depth + 1)

    def outline_text(self, doc: Oid) -> str:
        """A printable outline of the structure tree."""
        lines = []
        for depth, row in self.walk(doc):
            label = f" {row['label']}" if row["label"] else ""
            lines.append(f"{'  ' * depth}- {row['kind']}{label}")
        return "\n".join(lines)

    def node_text(self, handle: DocumentHandle, node: Oid) -> str:
        """The text currently spanned by a node's character range."""
        row = self._node_row(node)
        start, end = row["start_char"], row["end_char"]
        if start is None or end is None:
            return ""
        start_pos = handle.position_of(start)
        end_pos = handle.position_of(end)
        if start_pos is None or end_pos is None or end_pos < start_pos:
            return ""
        oids = handle.char_oids()[start_pos:end_pos + 1]
        from . import chars as C
        rows = C.doc_char_rows(self.db, row["doc"])
        return "".join(rows[oid]["ch"] for oid in oids)

    def containing_nodes(self, handle: DocumentHandle, pos: int) -> list[dict]:
        """Structure nodes whose range contains document position ``pos``."""
        out = []
        for __, row in self.walk(handle.doc):
            start, end = row["start_char"], row["end_char"]
            if start is None or end is None:
                continue
            start_pos = handle.position_of(start)
            end_pos = handle.position_of(end)
            if (start_pos is not None and end_pos is not None
                    and start_pos <= pos <= end_pos):
                out.append(row)
        return out
