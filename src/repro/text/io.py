"""Document export and import.

"Uniform tool access" (§2) — TeNDaX documents can leave and re-enter the
database:

* **plain text** export/import (content only),
* **JSON** export/import carrying the full native representation —
  per-character metadata, styles, structure, objects and notes — so a
  document can be moved between TeNDaX databases without losing what
  makes it a TeNDaX document.

Imported characters get fresh OIDs in the target database; their original
ids are preserved in each character's user-defined properties under
``imported_from`` so provenance is never silently dropped.
"""

from __future__ import annotations

from typing import Any

from ..db import col
from ..errors import TextError
from ..ids import Oid
from . import chars as C
from . import dbschema as S
from .document import DocumentHandle, DocumentStore

FORMAT_VERSION = 1


def export_text(handle: DocumentHandle) -> str:
    """The document's visible text."""
    return handle.text()


def export_json(handle: DocumentHandle) -> dict:
    """Full native export of one document as a JSON-compatible dict."""
    db = handle.db
    meta = handle.meta()
    char_rows = [
        row for row in C.traverse(db, handle.doc, handle.begin_char,
                                  include_deleted=True)
    ]
    styles = [
        dict(r) for r in
        db.query(S.STYLES).where(col("doc") == handle.doc).run()
    ]
    structure = [
        dict(r) for r in
        db.query(S.STRUCTURE).where(col("doc") == handle.doc).run()
    ]
    objects = [
        dict(r) for r in
        db.query(S.OBJECTS).where(col("doc") == handle.doc).run()
    ]
    notes = [
        dict(r) for r in
        db.query(S.NOTES).where(col("doc") == handle.doc).run()
    ]

    def encode(value: Any) -> Any:
        if isinstance(value, Oid):
            return str(value)
        if isinstance(value, dict):
            return {k: encode(v) for k, v in value.items()}
        if isinstance(value, list):
            return [encode(v) for v in value]
        return value

    return {
        "format": FORMAT_VERSION,
        "document": encode({
            "name": meta["name"], "creator": meta["creator"],
            "created_at": meta["created_at"], "state": meta["state"],
            "props": meta["props"],
        }),
        "chars": [encode(row) for row in char_rows],
        "styles": [encode(row) for row in styles],
        "structure": [encode(row) for row in structure],
        "objects": [encode(row) for row in objects],
        "notes": [encode(row) for row in notes],
    }


def import_json(store: DocumentStore, payload: dict,
                user: str) -> DocumentHandle:
    """Recreate an exported document in ``store``'s database.

    Character authorship, timestamps, deletions, styles, structure,
    objects and notes are preserved; all OIDs are re-minted locally with
    the originals recorded under ``props["imported_from"]``.
    """
    if payload.get("format") != FORMAT_VERSION:
        raise TextError(
            f"unsupported export format {payload.get('format')!r}"
        )
    db = store.db
    doc_spec = payload["document"]
    handle = store.create(doc_spec["name"], user,
                          props=dict(doc_spec.get("props") or {}))
    if doc_spec.get("state", "draft") != "draft":
        store.set_state(handle.doc, doc_spec["state"], user)

    # Styles first (characters reference them).
    style_map: dict[str, Oid] = {}
    for style in payload.get("styles", []):
        new_style = db.new_oid("style")
        style_map[style["style"]] = new_style
        db.insert(S.STYLES, {
            "style": new_style, "doc": handle.doc,
            "name": style["name"], "attrs": style["attrs"],
            "author": style["author"], "created_at": style["created_at"],
        })

    # Characters, preserving order, deletion state and metadata.
    char_map: dict[str, Oid] = {}
    anchor = handle.begin_char
    now = db.now()
    with db.transaction() as txn:
        for row in payload.get("chars", []):
            new_oid = db.new_oid("char")
            char_map[row["char"]] = new_oid
            props = dict(row.get("props") or {})
            props["imported_from"] = row["char"]
            # Splice at the end of the chain, preserving source order.
            __, anchor_row = C.char_row(db, anchor, txn)
            successor = anchor_row["next"]
            anchor_rowid, __ = C.char_row(db, anchor, txn)
            txn.insert(S.CHARS, {
                "char": new_oid, "doc": handle.doc, "ch": row["ch"],
                "prev": anchor, "next": successor,
                "author": row["author"], "created_at": row["created_at"],
                "deleted": row["deleted"],
                "deleted_by": row.get("deleted_by"),
                "deleted_at": row.get("deleted_at"),
                "style": style_map.get(row.get("style")),
                "version": row.get("version", 0),
                "props": props,
            })
            txn.update(S.CHARS, anchor_rowid, {"next": new_oid})
            succ_rowid, __ = C.char_row(db, successor, txn)
            txn.update(S.CHARS, succ_rowid, {"prev": new_oid})
            anchor = new_oid
        # Fix the document size (visible characters only).
        visible = sum(1 for row in payload.get("chars", [])
                      if not row["deleted"])
        doc_row = txn.query(S.DOCUMENTS).where(
            col("doc") == handle.doc).first()
        txn.update(S.DOCUMENTS, doc_row.rowid, {
            "size": visible, "last_modified": now,
            "last_modified_by": user,
        })

    # Structure tree (two passes: nodes then parent links).
    node_map: dict[str, Oid] = {}
    for node in payload.get("structure", []):
        new_node = db.new_oid("node")
        node_map[node["node"]] = new_node
        db.insert(S.STRUCTURE, {
            "node": new_node, "doc": handle.doc, "kind": node["kind"],
            "parent": None, "pos": node["pos"], "label": node["label"],
            "start_char": char_map.get(node.get("start_char")),
            "end_char": char_map.get(node.get("end_char")),
            "author": node["author"], "created_at": node["created_at"],
            "props": node.get("props"),
        })
    for node in payload.get("structure", []):
        parent = node.get("parent")
        if parent is not None and parent in node_map:
            view = db.query(S.STRUCTURE).where(
                col("node") == node_map[node["node"]]).first()
            db.update(S.STRUCTURE, view.rowid,
                      {"parent": node_map[parent]})

    for obj in payload.get("objects", []):
        anchor_oid = char_map.get(obj["anchor"], handle.begin_char)
        db.insert(S.OBJECTS, {
            "obj": db.new_oid("obj"), "doc": handle.doc,
            "kind": obj["kind"], "anchor": anchor_oid,
            "data": obj["data"], "author": obj["author"],
            "created_at": obj["created_at"],
            "deleted": obj.get("deleted", False),
        })

    for note in payload.get("notes", []):
        anchor_oid = char_map.get(note["anchor"], handle.begin_char)
        db.insert(S.NOTES, {
            "note": db.new_oid("note"), "doc": handle.doc,
            "anchor": anchor_oid, "author": note["author"],
            "body": note["body"], "created_at": note["created_at"],
            "resolved": note.get("resolved", False),
        })

    handle.refresh()
    return handle
