"""Documents: creation, opening, and position-addressed editing.

:class:`DocumentStore` is the library's entry point for document management
(create/open/list), and :class:`DocumentHandle` is an open document — the
thing an editor client holds.  A handle keeps an in-memory *order cache*
(the live character OIDs in document order), maintained incrementally from
commit notifications, which is how the real TeNDaX editors mirror the
database state: the database stores neighbour-linked characters; the editor
materialises the sequence.

Editing through a handle is transactional: one call = one committed
"real-time transaction" (insert rows + neighbour pointer updates + document
metadata update + access log), exactly the granularity the paper describes
for collaborative keystroke-level editing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from ..db import Database, Transaction, col
from ..errors import InvalidPositionError, UnknownDocumentError
from ..ids import Oid
from . import chars as C
from . import dbschema as S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.transaction import Change


class DocumentStore:
    """Create, open and enumerate documents in one database.

    Parameters
    ----------
    db:
        The engine to store documents in.  The TeNDaX schema is installed
        on first use.
    log_reads / log_writes:
        Whether to append ``tx_access_log`` rows on opens and edits.  The
        log feeds dynamic folders and search ranking; benchmarks that only
        measure keystroke cost may switch write logging off.
    """

    def __init__(self, db: Database, *, log_reads: bool = True,
                 log_writes: bool = True) -> None:
        self.db = db
        self.log_reads = log_reads
        self.log_writes = log_writes
        S.install_text_schema(db)

    # ------------------------------------------------------------------
    # Document lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        name: str,
        creator: str,
        *,
        text: str = "",
        template: Oid | None = None,
        props: dict | None = None,
    ) -> "DocumentHandle":
        """Create a document (optionally with initial text) and open it."""
        doc = self.db.new_oid("doc")
        now = self.db.now()
        with self.db.transaction() as txn:
            rowid = txn.insert(S.DOCUMENTS, {
                "doc": doc, "name": name, "creator": creator,
                "created_at": now, "last_modified": now,
                "last_modified_by": creator, "template": template,
                "props": props,
            })
            begin, end = C.create_anchors(txn, self.db, doc, creator, now)
            txn.update(S.DOCUMENTS, rowid, {
                "begin_char": begin, "end_char": end,
            })
            txn.insert(S.ACCESS_LOG, {
                "entry": self.db.new_oid("log"), "doc": doc,
                "user": creator, "action": "create", "at": now,
            })
        handle = DocumentHandle(self, doc)
        if text:
            handle.insert_text(0, text, creator)
        return handle

    def open(self, doc: Oid, user: str) -> "DocumentHandle":
        """Open an existing document for ``user`` (logged as a read)."""
        self.meta(doc)  # raises if unknown
        if self.log_reads:
            self.db.insert(S.ACCESS_LOG, {
                "entry": self.db.new_oid("log"), "doc": doc,
                "user": user, "action": "read", "at": self.db.now(),
            })
        return DocumentHandle(self, doc)

    def handle(self, doc: Oid) -> "DocumentHandle":
        """Open without logging (internal tooling, tests)."""
        self.meta(doc)
        return DocumentHandle(self, doc)

    def meta(self, doc: Oid) -> dict:
        """The document-level metadata row."""
        row = self.db.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            raise UnknownDocumentError(f"no document {doc}")
        return dict(row)

    def find_by_name(self, name: str) -> list[dict]:
        """Documents with exactly this name (names may repeat)."""
        return [dict(r) for r in
                self.db.query(S.DOCUMENTS).where(col("name") == name).run()]

    def list_documents(self) -> list[dict]:
        """Metadata rows of every document."""
        return [dict(r) for r in self.db.query(S.DOCUMENTS).run()]

    def set_state(self, doc: Oid, state: str, user: str) -> None:
        """Move a document through its lifecycle (draft/review/final...)."""
        row = self.db.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            raise UnknownDocumentError(f"no document {doc}")
        now = self.db.now()
        with self.db.transaction() as txn:
            txn.update(S.DOCUMENTS, row.rowid, {
                "state": state, "last_modified": now,
                "last_modified_by": user,
            })

    def set_property(self, doc: Oid, key: str, value: Any,
                     user: str) -> None:
        """Set a user-defined document property (paper §2 metadata)."""
        row = self.db.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            raise UnknownDocumentError(f"no document {doc}")
        props = dict(row["props"] or {})
        props[key] = value
        with self.db.transaction() as txn:
            txn.update(S.DOCUMENTS, row.rowid, {"props": props})

    # ------------------------------------------------------------------
    # Access logging
    # ------------------------------------------------------------------

    def _log_write(self, txn: Transaction, doc: Oid, user: str,
                   now: float) -> None:
        if self.log_writes:
            txn.insert(S.ACCESS_LOG, {
                "entry": self.db.new_oid("log"), "doc": doc,
                "user": user, "action": "write", "at": now,
            })


class DocumentHandle:
    """An open document: position-addressed edits over the character chain.

    The handle's *order cache* lists live character OIDs in document order.
    It is updated incrementally by a commit trigger, so it reflects both
    this handle's edits and edits committed by any other handle/session on
    the same engine — the mechanism behind "everything which is typed
    appears within the editor as soon as [it is] stored persistently".
    """

    def __init__(self, store: DocumentStore, doc: Oid) -> None:
        self.store = store
        self.db = store.db
        self.doc = doc
        meta = store.meta(doc)
        self.begin_char: Oid = meta["begin_char"]
        self.end_char: Oid = meta["end_char"]
        self._order: list[Oid] = []
        self._present: set[Oid] = set()
        self._hint = 0
        self._closed = False
        self.refresh()
        self._trigger = self.db.triggers.on_commit(S.CHARS, self._on_commit)

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild the order cache from the database chain."""
        rows = C.traverse(self.db, self.doc, self.begin_char)
        self._order = [row["char"] for row in rows]
        self._present = set(self._order)
        self._hint = 0

    def close(self) -> None:
        """Detach from commit notifications."""
        if not self._closed:
            self._closed = True
            self._trigger.remove()

    def _on_commit(self, txn: Transaction, changes: "list[Change]") -> None:
        for change in changes:
            row = change.row
            if change.kind == "delete":
                # Physical char deletion only happens on document purge.
                continue
            if row is None or row["doc"] != self.doc or not row["ch"]:
                continue
            oid = row["char"]
            if change.kind == "insert":
                if not row["deleted"] and oid not in self._present:
                    self._splice_in(oid, row["prev"])
            elif change.kind == "update":
                if row["deleted"] and oid in self._present:
                    self._splice_out(oid)
                elif not row["deleted"] and oid not in self._present:
                    self._splice_in(oid, row["prev"])
                # style/pointer-only updates do not move the cache

    def _splice_in(self, oid: Oid, prev: Oid | None) -> None:
        index = self._position_after(prev)
        self._order.insert(index, oid)
        self._present.add(oid)
        self._hint = index

    def _splice_out(self, oid: Oid) -> None:
        index = self._index_of(oid)
        del self._order[index]
        self._present.discard(oid)
        self._hint = index

    def _position_after(self, prev: Oid | None) -> int:
        """Cache position just after ``prev``, skipping deleted ancestors.

        The walk may cross arbitrarily many deleted predecessors (far more
        than the cache holds visible characters), so the only stop
        conditions are reaching a visible character, reaching the BEGIN
        sentinel, or detecting a cycle (corrupt chain).
        """
        current = prev
        seen: set[Oid] = set()
        while current is not None and current != self.begin_char:
            if current in self._present:
                return self._index_of(current) + 1
            if current in seen:
                break  # corrupt chain; fall back to the front
            seen.add(current)
            # A deleted (or not-yet-spliced) predecessor: walk left.
            __, row = C.char_row(self.db, current)
            current = row["prev"]
        return 0

    def _index_of(self, oid: Oid) -> int:
        """Index with a locality hint (typing is usually sequential)."""
        order = self._order
        hint = self._hint
        for probe in (hint - 1, hint, hint + 1):
            if 0 <= probe < len(order) and order[probe] == oid:
                return probe
        return order.index(oid)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def text(self) -> str:
        """The document's visible text (from the cache)."""
        rows = C.doc_char_rows(self.db, self.doc)
        return "".join(rows[oid]["ch"] for oid in self._order)

    def length(self) -> int:
        """Number of visible characters."""
        return len(self._order)

    def char_oids(self) -> list[Oid]:
        """Live character OIDs in document order (copy)."""
        return list(self._order)

    def char_oid_at(self, pos: int) -> Oid:
        """OID of the character at position ``pos``."""
        if not 0 <= pos < len(self._order):
            raise InvalidPositionError(
                f"position {pos} outside document of length {len(self._order)}"
            )
        return self._order[pos]

    def position_of(self, oid: Oid) -> int | None:
        """Current position of a character, or ``None`` if not visible."""
        if oid not in self._present:
            return None
        return self._index_of(oid)

    def anchor_for(self, pos: int) -> Oid:
        """The character OID an insert *at* ``pos`` goes after."""
        if pos < 0 or pos > len(self._order):
            raise InvalidPositionError(
                f"position {pos} outside document of length {len(self._order)}"
            )
        return self.begin_char if pos == 0 else self._order[pos - 1]

    def char_meta(self, pos: int) -> dict:
        """Full character-level metadata row at ``pos``."""
        __, row = C.char_row(self.db, self.char_oid_at(pos))
        return row

    def meta(self) -> dict:
        """The document's metadata row."""
        return self.store.meta(self.doc)

    # ------------------------------------------------------------------
    # Editing (position addressed)
    # ------------------------------------------------------------------

    def insert_text(self, pos: int, text: str, user: str, *,
                    style: Oid | None = None) -> list[Oid]:
        """Insert ``text`` at ``pos`` in one transaction; returns OIDs."""
        anchor = self.anchor_for(pos)
        return self.insert_after(anchor, text, user, style=style)

    def insert_after(
        self,
        anchor: Oid,
        text: str,
        user: str,
        *,
        style: Oid | None = None,
        copy_srcs: Sequence[Oid | None] | None = None,
        copy_op: Oid | None = None,
    ) -> list[Oid]:
        """OID-anchored insert (what collaborative operations use)."""
        if not text:
            return []
        now = self.db.now()
        with self.db.transaction() as txn:
            oids = C.insert_chars(
                txn, self.db, self.doc, anchor, text, user, now,
                style=style, copy_srcs=copy_srcs, copy_op=copy_op,
            )
            self._touch(txn, user, now, size_delta=len(text))
            self.store._log_write(txn, self.doc, user, now)
        return oids

    def delete_range(self, pos: int, count: int, user: str) -> list[Oid]:
        """Logically delete ``count`` characters starting at ``pos``."""
        if count < 0:
            raise InvalidPositionError("count must be >= 0")
        if pos < 0 or pos + count > len(self._order):
            raise InvalidPositionError(
                f"range [{pos}, {pos + count}) outside document of "
                f"length {len(self._order)}"
            )
        oids = self._order[pos:pos + count]
        self.delete_chars(oids, user)
        return oids

    def delete_chars(self, oids: Sequence[Oid], user: str) -> None:
        """OID-addressed logical delete (collaborative operations)."""
        if not oids:
            return
        now = self.db.now()
        with self.db.transaction() as txn:
            flipped = C.logical_delete(txn, self.db, oids, user, now)
            self._touch(txn, user, now, size_delta=-flipped)
            self.store._log_write(txn, self.doc, user, now)

    def undelete_chars(self, oids: Sequence[Oid], user: str) -> None:
        """Resurrect logically deleted characters (undo of a delete)."""
        if not oids:
            return
        now = self.db.now()
        with self.db.transaction() as txn:
            flipped = C.undelete(txn, self.db, oids, user)
            self._touch(txn, user, now, size_delta=flipped)
            self.store._log_write(txn, self.doc, user, now)

    def apply_style(self, pos: int, count: int, style: Oid | None,
                    user: str) -> list[Oid]:
        """Apply a style to a range (collaborative layouting)."""
        if pos < 0 or count < 0 or pos + count > len(self._order):
            raise InvalidPositionError("style range outside document")
        oids = self._order[pos:pos + count]
        self.style_chars(oids, style, user)
        return oids

    def style_chars(self, oids: Sequence[Oid], style: Oid | None,
                    user: str) -> None:
        """OID-addressed style application."""
        if not oids:
            return
        now = self.db.now()
        with self.db.transaction() as txn:
            C.set_style(txn, self.db, oids, style)
            self._touch(txn, user, now, size_delta=0)
            self.store._log_write(txn, self.doc, user, now)

    def _touch(self, txn: Transaction, user: str, now: float,
               *, size_delta: int) -> None:
        row = txn.query(S.DOCUMENTS).where(col("doc") == self.doc).first()
        if row is None:  # pragma: no cover - handle outlived document
            raise UnknownDocumentError(f"no document {self.doc}")
        txn.update(S.DOCUMENTS, row.rowid, {
            "last_modified": now, "last_modified_by": user,
            "size": max(0, row["size"] + size_delta),
        })

    # ------------------------------------------------------------------
    # Rendering helpers
    # ------------------------------------------------------------------

    def styled_runs(self) -> list[tuple[str, Oid | None]]:
        """The text as maximal runs of identically-styled characters."""
        rows = C.doc_char_rows(self.db, self.doc)
        runs: list[tuple[str, Oid | None]] = []
        current_style: Oid | None = None
        buffer: list[str] = []
        for oid in self._order:
            row = rows[oid]
            if buffer and row["style"] != current_style:
                runs.append(("".join(buffer), current_style))
                buffer = []
            current_style = row["style"]
            buffer.append(row["ch"])
        if buffer:
            runs.append(("".join(buffer), current_style))
        return runs

    def authors(self) -> dict[str, int]:
        """Visible character counts per author (who wrote what)."""
        rows = C.doc_char_rows(self.db, self.doc)
        counts: dict[str, int] = {}
        for oid in self._order:
            author = rows[oid]["author"]
            counts[author] = counts.get(author, 0) + 1
        return counts

    def check_integrity(self) -> list[str]:
        """Verify the chain invariants (empty list = healthy)."""
        return C.check_chain_integrity(
            self.db, self.doc, self.begin_char, self.end_char
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DocumentHandle({self.doc}, length={len(self._order)})"
