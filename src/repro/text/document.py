"""Documents: creation, opening, and position-addressed editing.

:class:`DocumentStore` is the library's entry point for document management
(create/open/list), and :class:`DocumentHandle` is an open document — the
thing an editor client holds.  A handle keeps an in-memory *order cache*
(the live character OIDs in document order plus their render payload),
maintained incrementally from commit notifications, which is how the real
TeNDaX editors mirror the database state: the database stores
neighbour-linked characters; the editor materialises the sequence.  The
cache itself is a chunked order-statistic structure
(:mod:`repro.text.ordercache`) so splices and positional lookups stay
~O(√n) on large documents, and ``text()`` is served from per-chunk
segments instead of a table scan.

Editing through a handle is transactional: one call = one committed
"real-time transaction" (insert rows + neighbour pointer updates + document
metadata update + access log), exactly the granularity the paper describes
for collaborative keystroke-level editing.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Sequence

from ..db import Database, Transaction, col
from ..errors import InvalidPositionError, UnknownDocumentError
from ..ids import Oid
from . import chars as C
from . import dbschema as S
from .ordercache import make_order_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..feed.changefeed import CommitBatch


class DocumentStore:
    """Create, open and enumerate documents in one database.

    Parameters
    ----------
    db:
        The engine to store documents in.  The TeNDaX schema is installed
        on first use.
    log_reads / log_writes:
        Whether to append ``tx_access_log`` rows on opens and edits.  The
        log feeds dynamic folders and search ranking; benchmarks that only
        measure keystroke cost may switch write logging off.
    """

    def __init__(self, db: Database, *, log_reads: bool = True,
                 log_writes: bool = True) -> None:
        self.db = db
        self.log_reads = log_reads
        self.log_writes = log_writes
        S.install_text_schema(db)

    # ------------------------------------------------------------------
    # Document lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        name: str,
        creator: str,
        *,
        text: str = "",
        template: Oid | None = None,
        props: dict | None = None,
    ) -> "DocumentHandle":
        """Create a document (optionally with initial text) and open it."""
        doc = self.db.new_oid("doc")
        now = self.db.now()
        with self.db.transaction() as txn:
            rowid = txn.insert(S.DOCUMENTS, {
                "doc": doc, "name": name, "creator": creator,
                "created_at": now, "last_modified": now,
                "last_modified_by": creator, "template": template,
                "props": props,
            })
            begin, end = C.create_anchors(txn, self.db, doc, creator, now)
            txn.update(S.DOCUMENTS, rowid, {
                "begin_char": begin, "end_char": end,
            })
            txn.insert(S.ACCESS_LOG, {
                "entry": self.db.new_oid("log"), "doc": doc,
                "user": creator, "action": "create", "at": now,
            })
        handle = DocumentHandle(self, doc)
        if text:
            handle.insert_text(0, text, creator)
        return handle

    def open(self, doc: Oid, user: str, *,
             cache: str = "chunked") -> "DocumentHandle":
        """Open an existing document for ``user`` (logged as a read)."""
        self.meta(doc)  # raises if unknown
        if self.log_reads:
            self.db.insert(S.ACCESS_LOG, {
                "entry": self.db.new_oid("log"), "doc": doc,
                "user": user, "action": "read", "at": self.db.now(),
            })
        return DocumentHandle(self, doc, cache=cache)

    def handle(self, doc: Oid, *, cache: str = "chunked") -> "DocumentHandle":
        """Open without logging (internal tooling, tests, benchmarks).

        ``cache`` selects the order-cache implementation: ``"chunked"``
        (the default) or ``"flat"`` (the O(n) baseline the large-document
        benchmarks compare against).
        """
        self.meta(doc)
        return DocumentHandle(self, doc, cache=cache)

    def meta(self, doc: Oid) -> dict:
        """The document-level metadata row."""
        row = self.db.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            raise UnknownDocumentError(f"no document {doc}")
        return dict(row)

    def find_by_name(self, name: str) -> list[dict]:
        """Documents with exactly this name (names may repeat)."""
        return [dict(r) for r in
                self.db.query(S.DOCUMENTS).where(col("name") == name).run()]

    def list_documents(self) -> list[dict]:
        """Metadata rows of every document."""
        return [dict(r) for r in self.db.query(S.DOCUMENTS).run()]

    def set_state(self, doc: Oid, state: str, user: str) -> None:
        """Move a document through its lifecycle (draft/review/final...)."""
        now = self.db.now()
        with self.db.transaction() as txn:
            rowid = self._rowid_for(txn, doc)
            txn.get_for_update(S.DOCUMENTS, rowid)
            txn.update(S.DOCUMENTS, rowid, {
                "state": state, "last_modified": now,
                "last_modified_by": user,
            })

    def set_property(self, doc: Oid, key: str, value: Any,
                     user: str) -> None:
        """Set a user-defined document property (paper §2 metadata).

        The ``props`` dict is a read-modify-write: it must be re-read
        *inside* the transaction under the row's write lock, or two
        concurrent ``set_property`` calls each merge into the same stale
        snapshot and one key is silently lost.
        """
        with self.db.transaction() as txn:
            rowid = self._rowid_for(txn, doc)
            current = txn.get_for_update(S.DOCUMENTS, rowid)
            props = dict(current["props"] or {})
            props[key] = value
            txn.update(S.DOCUMENTS, rowid, {"props": props})

    def _rowid_for(self, txn: Transaction, doc: Oid) -> int:
        """Locate a document's rowid inside ``txn`` (raises if unknown)."""
        row = txn.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            raise UnknownDocumentError(f"no document {doc}")
        return row.rowid

    def import_archived(self, name: str, creator: str, *, text: str = "",
                        props: dict | None = None) -> Oid:
        """Create an *archived* document: whole text, no character chain.

        The archival-portal ingest path.  The row carries
        ``begin_char = None`` and the full text in
        ``props["archived_text"]``; readers that reconstruct text
        (feature extraction, search indexing) fall back to the stored
        blob.  The document is searchable and folder-eligible but not
        editable until rehydrated into a chain.
        """
        doc = self.db.new_oid("doc")
        now = self.db.now()
        full_props = dict(props or {})
        full_props["archived_text"] = text
        with self.db.transaction() as txn:
            txn.insert(S.DOCUMENTS, {
                "doc": doc, "name": name, "creator": creator,
                "created_at": now, "last_modified": now,
                "last_modified_by": creator, "size": len(text),
                "props": full_props,
            })
            txn.insert(S.ACCESS_LOG, {
                "entry": self.db.new_oid("log"), "doc": doc,
                "user": creator, "action": "create", "at": now,
            })
        return doc

    #: Per-document tables purged alongside the metadata row.
    _PURGE_TABLES = (S.CHARS, S.ACCESS_LOG, S.VERSIONS, S.STRUCTURE,
                     S.OBJECTS, S.NOTES)

    def delete_document(self, doc: Oid, user: str) -> int:
        """Physically purge a document and its per-document rows.

        One transaction deletes the character chain, access log,
        versions, structure, objects and notes of ``doc`` plus its
        metadata row; returns the number of rows removed.  Every delete
        reaches the changefeed with a before-image, which is how derived
        data (search postings, folder membership, open handles) learns
        the document is gone instead of serving it stale forever.  The
        copy log is deliberately kept: it records provenance of *other*
        documents' characters.
        """
        removed = 0
        with self.db.transaction() as txn:
            rowid = self._rowid_for(txn, doc)
            txn.get_for_update(S.DOCUMENTS, rowid)
            for table in self._PURGE_TABLES:
                for row in txn.query(table).where(col("doc") == doc).run():
                    txn.delete(table, row.rowid)
                    removed += 1
            txn.delete(S.DOCUMENTS, rowid)
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # Access logging
    # ------------------------------------------------------------------

    def _log_write(self, txn: Transaction, doc: Oid, user: str,
                   now: float) -> None:
        if self.log_writes:
            txn.insert(S.ACCESS_LOG, {
                "entry": self.db.new_oid("log"), "doc": doc,
                "user": user, "action": "write", "at": now,
            })


class DocumentHandle:
    """An open document: position-addressed edits over the character chain.

    The handle's *order cache* lists live character OIDs in document order.
    It is updated incrementally by a changefeed subscription, so it
    reflects both this handle's edits and edits committed by any other
    handle/session on the same engine — the mechanism behind "everything which is typed
    appears within the editor as soon as [it is] stored persistently".
    """

    def __init__(self, store: DocumentStore, doc: Oid, *,
                 cache: str = "chunked") -> None:
        self.store = store
        self.db = store.db
        self.doc = doc
        meta = store.meta(doc)
        self.begin_char: Oid = meta["begin_char"]
        self.end_char: Oid = meta["end_char"]
        registry = self.db.obs.registry
        self._m_splice = registry.histogram("doc.cache_splice_seconds")
        self._m_lookup = registry.histogram("doc.cache_lookup_seconds")
        self._m_full_scans = registry.counter("doc.full_scans")
        self._cache = make_order_cache(cache)
        self._closed = False
        self.refresh()
        self._sub = self.db.changefeed().subscribe(
            f"doc-cache:{self.doc}", self._on_batch, tables=(S.CHARS,))

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild the order cache from the database chain (full scan).

        The traversal issues one read per character, so the whole walk
        runs inside a snapshot transaction: a writer committing
        mid-rebuild can neither stall the scan (no locks) nor tear the
        chain out from under it (every hop sees the same commit point).
        """
        self._m_full_scans.inc()
        if self.begin_char is None:
            # Archived document: no chain to walk, nothing to render.
            self._cache.rebuild(iter(()))
            return
        with self.db.snapshot() as snap:
            self._cache.rebuild(
                C.traverse(self.db, self.doc, self.begin_char, txn=snap))

    def close(self) -> None:
        """Detach from commit notifications."""
        if not self._closed:
            self._closed = True
            self._sub.close()

    def _on_batch(self, batch: "CommitBatch") -> None:
        cache = self._cache
        for event in batch.events:
            row = event.row
            if event.kind == "delete":
                # Physical char removal (document purge / archival): the
                # before-image names the vanished character.
                before = event.before
                if before is not None and before.get("doc") == self.doc \
                        and before.get("ch") and before["char"] in cache:
                    self._splice_out(before["char"])
                continue
            if row is None or row["doc"] != self.doc or not row["ch"]:
                continue
            oid = row["char"]
            if event.kind == "insert":
                if not row["deleted"] and oid not in cache:
                    self._splice_in(row)
            elif event.kind == "update":
                if row["deleted"] and oid in cache:
                    self._splice_out(oid)
                elif not row["deleted"] and oid not in cache:
                    self._splice_in(row)
                else:
                    # Pointer/style update of an already-visible char:
                    # keep the render payload current (O(1)).
                    cache.set_style(oid, row["style"])

    def _splice_in(self, row: dict) -> None:
        started = perf_counter()
        index = self._position_after(row["prev"])
        self._cache.insert(index, row["char"], row["ch"], row["style"],
                           row["author"])
        self._m_splice.observe(perf_counter() - started)

    def _splice_out(self, oid: Oid) -> None:
        started = perf_counter()
        self._cache.remove(oid)
        self._m_splice.observe(perf_counter() - started)

    def _position_after(self, prev: Oid | None) -> int:
        """Cache position just after ``prev``, skipping deleted ancestors.

        The common cases are O(1): appending after the current last
        character (bulk loads, typing at the end), or inserting after a
        visible character (one oid→chunk probe).  Otherwise the walk may
        cross arbitrarily many deleted predecessors (far more than the
        cache holds visible characters), so the only stop conditions are
        reaching a visible character, reaching the BEGIN sentinel, or
        detecting a cycle (corrupt chain).
        """
        cache = self._cache
        if prev is not None and prev == cache.last_oid():
            return len(cache)
        current = prev
        seen: set[Oid] = set()
        while current is not None and current != self.begin_char:
            if current in cache:
                return cache.index_of(current) + 1
            if current in seen:
                break  # corrupt chain; fall back to the front
            seen.add(current)
            # A deleted (or not-yet-spliced) predecessor: walk left.
            __, row = C.char_row(self.db, current)
            current = row["prev"]
        return 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def text(self) -> str:
        """The document's visible text (cache only — no table scan)."""
        return self._cache.text()

    def length(self) -> int:
        """Number of visible characters."""
        return len(self._cache)

    def char_oids(self) -> list[Oid]:
        """Live character OIDs in document order (copy)."""
        return self._cache.oids()

    def char_oids_range(self, pos: int, count: int) -> list[Oid]:
        """OIDs of positions ``[pos, pos + count)`` without materialising
        the whole order (what range operations should use).  The range is
        clamped at the document end; a negative start is invalid."""
        if pos < 0 or count < 0:
            raise InvalidPositionError(
                f"range [{pos}, {pos + count}) has a negative bound"
            )
        started = perf_counter()
        oids = self._cache.oid_slice(pos, pos + count)
        self._m_lookup.observe(perf_counter() - started)
        return oids

    def char_oid_at(self, pos: int) -> Oid:
        """OID of the character at position ``pos``."""
        started = perf_counter()
        try:
            return self._cache.oid_at(pos)
        except IndexError:
            raise InvalidPositionError(
                f"position {pos} outside document of "
                f"length {len(self._cache)}"
            ) from None
        finally:
            self._m_lookup.observe(perf_counter() - started)

    def position_of(self, oid: Oid) -> int | None:
        """Current position of a character, or ``None`` if not visible."""
        if oid not in self._cache:
            return None
        started = perf_counter()
        index = self._cache.index_of(oid)
        self._m_lookup.observe(perf_counter() - started)
        return index

    def visible_position_after(self, anchor: Oid) -> int:
        """Position just after ``anchor``, sliding left over deleted
        predecessors — the cursor-anchor resolution rule (a cursor sits
        *after* its anchor; deleting the anchor slides the cursor left)."""
        if anchor == self.begin_char:
            return 0
        return self._position_after(anchor)

    def text_of(self, oids: Sequence[Oid]) -> str:
        """The text of still-visible characters among ``oids``."""
        cache = self._cache
        return "".join(cache.char_of(oid) for oid in oids if oid in cache)

    def anchor_for(self, pos: int) -> Oid:
        """The character OID an insert *at* ``pos`` goes after."""
        if pos < 0 or pos > len(self._cache):
            raise InvalidPositionError(
                f"position {pos} outside document of length {len(self._cache)}"
            )
        return self.begin_char if pos == 0 else self._cache.oid_at(pos - 1)

    def char_meta(self, pos: int) -> dict:
        """Full character-level metadata row at ``pos``."""
        __, row = C.char_row(self.db, self.char_oid_at(pos))
        return row

    def meta(self) -> dict:
        """The document's metadata row."""
        return self.store.meta(self.doc)

    # ------------------------------------------------------------------
    # Editing (position addressed)
    # ------------------------------------------------------------------

    def insert_text(self, pos: int, text: str, user: str, *,
                    style: Oid | None = None) -> list[Oid]:
        """Insert ``text`` at ``pos`` in one transaction; returns OIDs."""
        anchor = self.anchor_for(pos)
        return self.insert_after(anchor, text, user, style=style)

    def insert_after(
        self,
        anchor: Oid,
        text: str,
        user: str,
        *,
        style: Oid | None = None,
        copy_srcs: Sequence[Oid | None] | None = None,
        copy_op: Oid | None = None,
    ) -> list[Oid]:
        """OID-anchored insert (what collaborative operations use)."""
        if not text:
            return []
        now = self.db.now()
        with self.db.transaction() as txn:
            oids = C.insert_chars(
                txn, self.db, self.doc, anchor, text, user, now,
                style=style, copy_srcs=copy_srcs, copy_op=copy_op,
            )
            self._touch(txn, user, now, size_delta=len(text))
            self.store._log_write(txn, self.doc, user, now)
        return oids

    def delete_range(self, pos: int, count: int, user: str) -> list[Oid]:
        """Logically delete ``count`` characters starting at ``pos``."""
        if count < 0:
            raise InvalidPositionError("count must be >= 0")
        if pos < 0 or pos + count > len(self._cache):
            raise InvalidPositionError(
                f"range [{pos}, {pos + count}) outside document of "
                f"length {len(self._cache)}"
            )
        oids = self.char_oids_range(pos, count)
        self.delete_chars(oids, user)
        return oids

    def delete_chars(self, oids: Sequence[Oid], user: str) -> None:
        """OID-addressed logical delete (collaborative operations)."""
        if not oids:
            return
        now = self.db.now()
        with self.db.transaction() as txn:
            flipped = C.logical_delete(txn, self.db, oids, user, now)
            self._touch(txn, user, now, size_delta=-flipped)
            self.store._log_write(txn, self.doc, user, now)

    def undelete_chars(self, oids: Sequence[Oid], user: str) -> None:
        """Resurrect logically deleted characters (undo of a delete)."""
        if not oids:
            return
        now = self.db.now()
        with self.db.transaction() as txn:
            flipped = C.undelete(txn, self.db, oids, user)
            self._touch(txn, user, now, size_delta=flipped)
            self.store._log_write(txn, self.doc, user, now)

    def apply_style(self, pos: int, count: int, style: Oid | None,
                    user: str) -> list[Oid]:
        """Apply a style to a range (collaborative layouting)."""
        if pos < 0 or count < 0 or pos + count > len(self._cache):
            raise InvalidPositionError("style range outside document")
        oids = self.char_oids_range(pos, count)
        self.style_chars(oids, style, user)
        return oids

    def style_chars(self, oids: Sequence[Oid], style: Oid | None,
                    user: str) -> None:
        """OID-addressed style application."""
        if not oids:
            return
        now = self.db.now()
        with self.db.transaction() as txn:
            C.set_style(txn, self.db, oids, style)
            self._touch(txn, user, now, size_delta=0)
            self.store._log_write(txn, self.doc, user, now)

    def _touch(self, txn: Transaction, user: str, now: float,
               *, size_delta: int) -> None:
        row = txn.query(S.DOCUMENTS).where(col("doc") == self.doc).first()
        if row is None:  # pragma: no cover - handle outlived document
            raise UnknownDocumentError(f"no document {self.doc}")
        txn.update(S.DOCUMENTS, row.rowid, {
            "last_modified": now, "last_modified_by": user,
            "size": max(0, row["size"] + size_delta),
        })

    # ------------------------------------------------------------------
    # Rendering helpers
    # ------------------------------------------------------------------

    def styled_runs(self) -> list[tuple[str, Oid | None]]:
        """The text as maximal runs of identically-styled characters."""
        return self._cache.styled_runs()

    def authors(self) -> dict[str, int]:
        """Visible character counts per author (who wrote what)."""
        return self._cache.authors()

    def check_integrity(self) -> list[str]:
        """Verify the chain invariants (empty list = healthy)."""
        return C.check_chain_integrity(
            self.db, self.doc, self.begin_char, self.end_char
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DocumentHandle({self.doc}, length={len(self._cache)})"
