"""Rendering documents to portable formats.

Completes the "uniform tool access" story: a TeNDaX document — character
chain, styles, structure tree, objects, notes — can be rendered to
Markdown for consumption outside the system.  Headings come from the
structure tree (or from ``heading_level`` style attributes), bold/italic
from styles, tables and images from the object store, unresolved notes
as footnote-style annotations.
"""

from __future__ import annotations

from ..db import Database
from .document import DocumentHandle
from .layout import StyleManager
from .notes import NoteManager
from .objects import ObjectManager
from .structure import StructureManager


def _style_wrap(text: str, attrs: dict) -> str:
    """Apply Markdown emphasis for the style attributes."""
    if not text.strip():
        return text
    if attrs.get("bold") and attrs.get("italic"):
        return f"***{text}***"
    if attrs.get("bold"):
        return f"**{text}**"
    if attrs.get("italic"):
        return f"*{text}*"
    return text


def _render_body(handle: DocumentHandle, styles: StyleManager) -> str:
    """The text with inline styles applied, line structure preserved."""
    pieces: list[str] = []
    for run_text, style in handle.styled_runs():
        attrs = styles.effective_attrs(style)
        level = attrs.get("heading_level", 0)
        if level:
            prefix = "#" * min(level, 6)
            for line in run_text.splitlines() or [""]:
                if line.strip():
                    pieces.append(f"\n{prefix} {line.strip()}\n")
        else:
            # Apply emphasis per line so newlines stay outside markers.
            lines = run_text.split("\n")
            wrapped = "\n".join(_style_wrap(line, attrs) for line in lines)
            pieces.append(wrapped)
    return "".join(pieces)


def export_markdown(handle: DocumentHandle) -> str:
    """Render a document to Markdown.

    Sections:

    * a title line from the document name,
    * the structure outline (when the document has one),
    * the styled body,
    * embedded objects (tables as Markdown tables, images as links),
    * unresolved margin notes.
    """
    db: Database = handle.db
    styles = StyleManager(db)
    structure = StructureManager(db)
    objects = ObjectManager(db)
    notes = NoteManager(db)
    meta = handle.meta()

    parts: list[str] = [f"# {meta['name']}", ""]

    outline = structure.outline_text(handle.doc)
    if outline:
        parts.append("## Outline")
        parts.append("")
        for line in outline.splitlines():
            indent = (len(line) - len(line.lstrip())) // 2
            label = line.strip().lstrip("- ")
            parts.append(f"{'  ' * indent}- {label}")
        parts.append("")

    parts.append(_render_body(handle, styles).strip())
    parts.append("")

    doc_objects = objects.objects_with_positions(handle)
    if doc_objects:
        parts.append("## Objects")
        parts.append("")
        for pos, obj in doc_objects:
            where = f"at position {pos}" if pos is not None else "detached"
            if obj["kind"] == "image":
                data = obj["data"]
                parts.append(
                    f"![{data['name']}]({data.get('content_ref') or data['name']}) "
                    f"({data['width']}x{data['height']}, {where})"
                )
            else:
                parts.append(f"Table {where}:")
                parts.append("")
                parts.append(_markdown_table(obj["data"]))
            parts.append("")

    open_notes = notes.notes_with_positions(handle)
    if open_notes:
        parts.append("## Notes")
        parts.append("")
        for pos, note in open_notes:
            where = f"@{pos}" if pos is not None else "@deleted-text"
            parts.append(f"- [{note['author']} {where}] {note['body']}")
        parts.append("")

    parts.append(
        f"---\n*{meta['creator']}'s document, "
        f"state: {meta['state']}, {meta['size']} characters.*"
    )
    return "\n".join(parts).strip() + "\n"


def _markdown_table(data: dict) -> str:
    """Render an object-store table grid as a Markdown table."""
    cells = data["cells"]
    if not cells:
        return ""
    header = cells[0]
    out = ["| " + " | ".join(cell or " " for cell in header) + " |"]
    out.append("|" + "---|" * len(header))
    for row in cells[1:]:
        out.append("| " + " | ".join(cell or " " for cell in row) + " |")
    return "\n".join(out)
