"""Order caches: the editor-side materialisation of the character chain.

A :class:`~repro.text.document.DocumentHandle` mirrors the database's
neighbour-linked characters as a sequence of visible OIDs.  The paper's
scalability claim ("very fast transactions for all editing tasks",
regardless of document size) only survives on the client if that mirror
is cheap to maintain: a flat Python list pays an O(n) ``list.insert``
memmove and an O(n) ``list.index`` scan on every remote splice — exactly
the offset-array behaviour the chain representation exists to avoid.

:class:`ChunkedOrderCache` is the production structure: an
order-statistic blocked list (in the spirit of
:class:`~repro.db.sortedlist.BlockedSortedList`, but positional rather
than sorted).  Visible characters live in bounded chunks; an oid→chunk
map gives O(1) membership, and positional queries walk the chunk
directory, so splices and index lookups cost ~O(√n).  Each chunk also
keeps its characters and a lazily-joined text segment, so ``text()`` /
``styled_runs()`` / ``authors()`` are served from the cache instead of
re-materialising the whole ``tx_chars`` table per call.

:class:`FlatOrderCache` preserves the original flat-list behaviour and
exists as the measured baseline for the large-document benchmarks
(``benchmarks/bench_editing_transactions.py``).

Both caches maintain, per visible character, the payload the rendering
paths need (character, style, author); style changes are O(1) updates.

Complexity (n visible characters, chunk target B, so ~n/B chunks):

=================  ==================  =================
operation          ChunkedOrderCache   FlatOrderCache
=================  ==================  =================
``insert``         O(B + n/B)          O(n)
``remove``         O(B + n/B)          O(n)
``index_of``       O(B + n/B)          O(n) (hint: O(1))
``oid_at``         O(n/B)              O(1)
``text()``         O(dirty·B + n/B)    O(n)
``set_style``      O(1)                O(1)
membership         O(1)                O(1)
=================  ==================  =================

Invariants (checked by :meth:`ChunkedOrderCache.check`):

* every chunk is non-empty and no larger than ``2 * CHUNK``;
* the oid→chunk map contains exactly the oids of all chunks;
* per-chunk ``oids`` and ``chars`` stay parallel;
* a chunk's cached text, when present, equals ``"".join(chars)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..ids import Oid


class _Chunk:
    """One bounded run of consecutive visible characters."""

    __slots__ = ("oids", "chars", "joined")

    def __init__(self, oids: list[Oid], chars: list[str]) -> None:
        self.oids = oids
        self.chars = chars
        #: Lazily materialised "".join(chars); None when dirty.
        self.joined: str | None = None

    def text(self) -> str:
        if self.joined is None:
            self.joined = "".join(self.chars)
        return self.joined


class ChunkedOrderCache:
    """Blocked order-statistic sequence of visible characters."""

    #: Target chunk size; chunks split at 2x and merge below 1/4.
    CHUNK = 512

    def __init__(self, rows: Iterable[dict] = ()) -> None:
        self._chunks: list[_Chunk] = []
        self._where: dict[Oid, _Chunk] = {}
        self._style: dict[Oid, Oid | None] = {}
        self._author: dict[Oid, str] = {}
        self._len = 0
        self.rebuild(rows)

    # ------------------------------------------------------------------
    # Bulk (re)build
    # ------------------------------------------------------------------

    def rebuild(self, rows: Iterable[dict]) -> None:
        """Reset from character rows in document order (a chain walk)."""
        oids: list[Oid] = []
        chars: list[str] = []
        style: dict[Oid, Oid | None] = {}
        author: dict[Oid, str] = {}
        for row in rows:
            oid = row["char"]
            oids.append(oid)
            chars.append(row["ch"])
            style[oid] = row["style"]
            author[oid] = row["author"]
        self._chunks = []
        self._where = {}
        self._style = style
        self._author = author
        self._len = len(oids)
        for start in range(0, len(oids), self.CHUNK):
            chunk = _Chunk(oids[start:start + self.CHUNK],
                           chars[start:start + self.CHUNK])
            self._chunks.append(chunk)
            for oid in chunk.oids:
                self._where[oid] = chunk

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, index: int, oid: Oid, ch: str, style: Oid | None,
               author: str) -> None:
        """Splice a visible character in at ``index``."""
        if not 0 <= index <= self._len:
            raise IndexError(f"insert index {index} outside 0..{self._len}")
        if not self._chunks:
            chunk = _Chunk([oid], [ch])
            self._chunks.append(chunk)
            self._where[oid] = chunk
        else:
            at, offset = self._locate(index)
            chunk = self._chunks[at]
            chunk.oids.insert(offset, oid)
            chunk.chars.insert(offset, ch)
            chunk.joined = None
            self._where[oid] = chunk
            if len(chunk.oids) > 2 * self.CHUNK:
                self._split(at)
        self._style[oid] = style
        self._author[oid] = author
        self._len += 1

    def remove(self, oid: Oid) -> int:
        """Splice a character out; returns its former index."""
        chunk = self._where.pop(oid)
        offset = chunk.oids.index(oid)
        at = self._chunk_index(chunk)
        index = sum(len(c.oids) for c in self._chunks[:at]) + offset
        del chunk.oids[offset]
        del chunk.chars[offset]
        chunk.joined = None
        del self._style[oid]
        del self._author[oid]
        self._len -= 1
        if not chunk.oids:
            del self._chunks[at]
        elif len(chunk.oids) < self.CHUNK // 4:
            self._maybe_merge(at)
        return index

    def set_style(self, oid: Oid, style: Oid | None) -> bool:
        """Record a style change for a visible character (O(1))."""
        if oid not in self._where:
            return False
        self._style[oid] = style
        return True

    def _split(self, at: int) -> None:
        chunk = self._chunks[at]
        half = len(chunk.oids) // 2
        right = _Chunk(chunk.oids[half:], chunk.chars[half:])
        del chunk.oids[half:]
        del chunk.chars[half:]
        chunk.joined = None
        self._chunks.insert(at + 1, right)
        for oid in right.oids:
            self._where[oid] = right

    def _maybe_merge(self, at: int) -> None:
        """Fold a small chunk into a neighbour if the pair stays bounded."""
        for neighbour in (at - 1, at + 1):
            if not 0 <= neighbour < len(self._chunks):
                continue
            combined = (len(self._chunks[at].oids)
                        + len(self._chunks[neighbour].oids))
            if combined <= self.CHUNK:
                lo, hi = sorted((at, neighbour))
                left, right = self._chunks[lo], self._chunks[hi]
                left.oids.extend(right.oids)
                left.chars.extend(right.chars)
                left.joined = None
                for oid in right.oids:
                    self._where[oid] = left
                del self._chunks[hi]
                return

    # ------------------------------------------------------------------
    # Positional lookup
    # ------------------------------------------------------------------

    def _locate(self, index: int) -> tuple[int, int]:
        """(chunk position, offset) for a sequence index (insert-friendly:
        ``index == len`` maps to appending at the last chunk's end)."""
        if index >= self._len:
            last = len(self._chunks) - 1
            return last, len(self._chunks[last].oids)
        for at, chunk in enumerate(self._chunks):
            n = len(chunk.oids)
            if index < n:
                return at, index
            index -= n
        raise IndexError("unreachable: index inside bounds")  # pragma: no cover

    def _chunk_index(self, chunk: _Chunk) -> int:
        for at, candidate in enumerate(self._chunks):
            if candidate is chunk:
                return at
        raise ValueError("chunk not in directory")  # pragma: no cover

    def index_of(self, oid: Oid) -> int:
        """Current position of a visible character (raises KeyError)."""
        chunk = self._where[oid]
        prefix = 0
        for candidate in self._chunks:
            if candidate is chunk:
                return prefix + chunk.oids.index(oid)
            prefix += len(candidate.oids)
        raise ValueError("chunk not in directory")  # pragma: no cover

    def oid_at(self, index: int) -> Oid:
        """The character OID at ``index`` (raises IndexError)."""
        if not 0 <= index < self._len:
            raise IndexError(f"index {index} outside document of "
                             f"length {self._len}")
        at, offset = self._locate(index)
        return self._chunks[at].oids[offset]

    def oid_slice(self, start: int, stop: int) -> list[Oid]:
        """OIDs of positions ``[start, stop)``, clamped like list slices."""
        start = max(0, start)
        stop = min(self._len, stop)
        if start >= stop:
            return []
        out: list[Oid] = []
        at, offset = self._locate(start)
        remaining = stop - start
        while remaining > 0:
            chunk = self._chunks[at]
            take = chunk.oids[offset:offset + remaining]
            out.extend(take)
            remaining -= len(take)
            at += 1
            offset = 0
        return out

    def last_oid(self) -> Oid | None:
        """The final visible character (the append fast path probe)."""
        if not self._chunks:
            return None
        return self._chunks[-1].oids[-1]

    # ------------------------------------------------------------------
    # Membership and payload
    # ------------------------------------------------------------------

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._where

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[Oid]:
        for chunk in self._chunks:
            yield from chunk.oids

    def oids(self) -> list[Oid]:
        """All visible OIDs in document order (copy)."""
        out: list[Oid] = []
        for chunk in self._chunks:
            out.extend(chunk.oids)
        return out

    def char_of(self, oid: Oid) -> str:
        """The character a visible OID renders as."""
        chunk = self._where[oid]
        return chunk.chars[chunk.oids.index(oid)]

    def style_of(self, oid: Oid) -> Oid | None:
        return self._style[oid]

    def author_of(self, oid: Oid) -> str:
        return self._author[oid]

    # ------------------------------------------------------------------
    # Rendering (no database access)
    # ------------------------------------------------------------------

    def text(self) -> str:
        """The visible text, from per-chunk segments (no table scan)."""
        return "".join(chunk.text() for chunk in self._chunks)

    def styled_runs(self) -> list[tuple[str, Oid | None]]:
        """Maximal runs of identically-styled characters."""
        runs: list[tuple[str, Oid | None]] = []
        current: Oid | None = None
        buffer: list[str] = []
        style = self._style
        for chunk in self._chunks:
            for oid, ch in zip(chunk.oids, chunk.chars):
                s = style[oid]
                if buffer and s != current:
                    runs.append(("".join(buffer), current))
                    buffer = []
                current = s
                buffer.append(ch)
        if buffer:
            runs.append(("".join(buffer), current))
        return runs

    def authors(self) -> dict[str, int]:
        """Visible character counts per author."""
        counts: dict[str, int] = {}
        author = self._author
        for chunk in self._chunks:
            for oid in chunk.oids:
                who = author[oid]
                counts[who] = counts.get(who, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Self-check (tests, debugging)
    # ------------------------------------------------------------------

    def check(self) -> list[str]:
        """Validate the structural invariants; empty list = healthy."""
        problems: list[str] = []
        seen: dict[Oid, _Chunk] = {}
        total = 0
        for at, chunk in enumerate(self._chunks):
            if not chunk.oids:
                problems.append(f"chunk {at} is empty")
            if len(chunk.oids) > 2 * self.CHUNK:
                problems.append(f"chunk {at} overflows: {len(chunk.oids)}")
            if len(chunk.oids) != len(chunk.chars):
                problems.append(f"chunk {at}: oids/chars not parallel")
            if chunk.joined is not None and chunk.joined != "".join(chunk.chars):
                problems.append(f"chunk {at}: stale cached text")
            for oid in chunk.oids:
                if oid in seen:
                    problems.append(f"{oid} appears in two chunks")
                seen[oid] = chunk
            total += len(chunk.oids)
        if total != self._len:
            problems.append(f"length {self._len} != chunk total {total}")
        if seen.keys() != self._where.keys():
            problems.append("oid->chunk map out of sync with chunks")
        else:
            for oid, chunk in seen.items():
                if self._where[oid] is not chunk:
                    problems.append(f"{oid} mapped to the wrong chunk")
                    break
        for payload, label in ((self._style, "style"),
                               (self._author, "author")):
            if payload.keys() != self._where.keys():
                problems.append(f"{label} payload out of sync")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ChunkedOrderCache(len={self._len}, "
                f"chunks={len(self._chunks)})")


class FlatOrderCache:
    """The original flat-list cache: O(n) splices, O(n) index scans.

    Kept as the measured baseline for the large-document cache
    benchmarks; presents the same interface as
    :class:`ChunkedOrderCache` (including the locality hint the seed
    implementation used for sequential typing).
    """

    def __init__(self, rows: Iterable[dict] = ()) -> None:
        self._order: list[Oid] = []
        self._chars: dict[Oid, str] = {}
        self._style: dict[Oid, Oid | None] = {}
        self._author: dict[Oid, str] = {}
        self._hint = 0
        self.rebuild(rows)

    def rebuild(self, rows: Iterable[dict]) -> None:
        self._order = []
        self._chars = {}
        self._style = {}
        self._author = {}
        self._hint = 0
        for row in rows:
            oid = row["char"]
            self._order.append(oid)
            self._chars[oid] = row["ch"]
            self._style[oid] = row["style"]
            self._author[oid] = row["author"]

    def insert(self, index: int, oid: Oid, ch: str, style: Oid | None,
               author: str) -> None:
        if not 0 <= index <= len(self._order):
            raise IndexError(f"insert index {index} outside "
                             f"0..{len(self._order)}")
        self._order.insert(index, oid)
        self._chars[oid] = ch
        self._style[oid] = style
        self._author[oid] = author
        self._hint = index

    def remove(self, oid: Oid) -> int:
        index = self.index_of(oid)
        del self._order[index]
        del self._chars[oid]
        del self._style[oid]
        del self._author[oid]
        self._hint = index
        return index

    def set_style(self, oid: Oid, style: Oid | None) -> bool:
        if oid not in self._chars:
            return False
        self._style[oid] = style
        return True

    def index_of(self, oid: Oid) -> int:
        if oid not in self._chars:
            raise KeyError(oid)
        order = self._order
        hint = self._hint
        for probe in (hint - 1, hint, hint + 1):
            if 0 <= probe < len(order) and order[probe] == oid:
                return probe
        return order.index(oid)

    def oid_at(self, index: int) -> Oid:
        if not 0 <= index < len(self._order):
            raise IndexError(f"index {index} outside document of "
                             f"length {len(self._order)}")
        return self._order[index]

    def oid_slice(self, start: int, stop: int) -> list[Oid]:
        return self._order[max(0, start):stop]

    def last_oid(self) -> Oid | None:
        return self._order[-1] if self._order else None

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._chars

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Oid]:
        return iter(self._order)

    def oids(self) -> list[Oid]:
        return list(self._order)

    def char_of(self, oid: Oid) -> str:
        return self._chars[oid]

    def style_of(self, oid: Oid) -> Oid | None:
        return self._style[oid]

    def author_of(self, oid: Oid) -> str:
        return self._author[oid]

    def text(self) -> str:
        chars = self._chars
        return "".join(chars[oid] for oid in self._order)

    def styled_runs(self) -> list[tuple[str, Oid | None]]:
        runs: list[tuple[str, Oid | None]] = []
        current: Oid | None = None
        buffer: list[str] = []
        for oid in self._order:
            s = self._style[oid]
            if buffer and s != current:
                runs.append(("".join(buffer), current))
                buffer = []
            current = s
            buffer.append(self._chars[oid])
        if buffer:
            runs.append(("".join(buffer), current))
        return runs

    def authors(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for oid in self._order:
            who = self._author[oid]
            counts[who] = counts.get(who, 0) + 1
        return counts

    def check(self) -> list[str]:
        problems: list[str] = []
        if set(self._order) != self._chars.keys():
            problems.append("order list out of sync with payload")
        for payload, label in ((self._style, "style"),
                               (self._author, "author")):
            if payload.keys() != self._chars.keys():
                problems.append(f"{label} payload out of sync")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlatOrderCache(len={len(self._order)})"


#: Cache kinds selectable when opening a handle (benchmarks use "flat").
CACHE_KINDS = {
    "chunked": ChunkedOrderCache,
    "flat": FlatOrderCache,
}


def make_order_cache(kind: str, rows: Iterable[dict] = ()):
    """Build an order cache by kind name (``"chunked"`` | ``"flat"``)."""
    try:
        cls = CACHE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown order-cache kind {kind!r}; "
            f"expected one of {sorted(CACHE_KINDS)}"
        ) from None
    return cls(rows)
